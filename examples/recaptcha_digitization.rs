//! Digitizing a "scanned book" with reCAPTCHA.
//!
//! Generates a synthetic scanned corpus, lets OCR take its shot, routes
//! every OCR-failed word through two-word CAPTCHA challenges answered by
//! simulated humans (with some bot traffic), and reports the finished
//! transcription quality — the Science'08 story the DAC'09 paper retells.
//!
//! ```text
//! cargo run --release --example recaptcha_digitization
//! ```

use human_computation::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1908);

    // A 10k-word book at typical scan quality.
    let corpus = ScannedCorpus::generate(10_000, 0.0, 0.05, &mut rng);
    println!(
        "corpus: {} words, mean scan distortion {:.3}",
        corpus.len(),
        corpus.mean_distortion()
    );

    let service = ReCaptcha::new(
        corpus,
        OcrEngine::commercial(),
        ReCaptchaConfig::default(),
        &mut rng,
    );
    println!(
        "OCR pre-pass: {} words solved by agreeing OCR passes, {} need humans",
        service.ocr_solved_count(),
        service.pending_count()
    );

    let mut pipeline = DigitizationPipeline::new(
        service,
        HumanReader::typical(),
        0.10, // 10% of traffic is OCR bots trying to sneak through
        OcrEngine::advanced_attacker(),
    );

    let mut answered = 0u64;
    for batch in [2_000u64, 8_000, 30_000, 100_000] {
        answered += pipeline.run(batch - answered.min(batch), &mut rng);
        let p = pipeline.progress();
        println!(
            "after {:>6} answers: resolved {:5.1}%  digitized {:5.1}%  accuracy {:5.2}%  control pass {:4.1}%",
            p.answers,
            p.resolved_fraction * 100.0,
            p.digitized_fraction * 100.0,
            p.digitized_accuracy * 100.0,
            p.control_pass_rate * 100.0
        );
        if pipeline.service().pending_count() == 0 {
            println!("book fully resolved!");
            break;
        }
    }

    let (correct, resolved) = pipeline.service().resolved_accuracy();
    println!(
        "\nfinal transcription: {resolved} words resolved, {:.2}% correct (paper: ≥99% with human agreement)",
        correct as f64 / resolved.max(1) as f64 * 100.0
    );
}
