//! Play the ESP Game yourself, in the terminal, against a replay bot.
//!
//! Simulated honest players pre-record sessions on a small image world;
//! then *you* are paired against those recordings, exactly like the
//! deployed game's single-player fallback. You see the image's "view"
//! (a few weak hints drawn from its tag cloud — you cannot see the
//! ground truth), type labels, and score when you agree with what the
//! recorded human typed. Promoted labels become taboo for later players.
//!
//! ```text
//! cargo run --release --example play_esp_cli
//! ```
//!
//! Type a label and press enter; `pass` to pass, `quit` to stop.

use human_computation::prelude::*;
use rand::SeedableRng;
use std::io::{BufRead, Write};

const ROUNDS: usize = 5;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(777);
    let mut cfg = WorldConfig::small();
    cfg.vocabulary = 60; // small vocabulary so hints are guessable
    cfg.zipf_exponent = 0.8;
    let world = EspWorld::generate(&cfg, &mut rng);
    let mut platform = Platform::new(PlatformConfig {
        gold_injection_rate: 0.0,
        ..PlatformConfig::default()
    })
    .expect("valid config");
    world.register_tasks(&mut platform);

    // Seed recordings with a few simulated sessions.
    let mut population = PopulationBuilder::new(4)
        .mix(ArchetypeMix::all_honest())
        .build(&mut rng);
    for _ in 0..4 {
        platform.register_player();
    }
    for s in 0..6u64 {
        play_esp_session(
            &mut platform,
            &world,
            &mut population,
            SessionParams::pair(
                PlayerId::new((s % 2) * 2),
                PlayerId::new((s % 2) * 2 + 1),
                SessionId::new(s),
                SimTime::from_secs(s * 1_000),
            ),
            &mut rng,
        );
    }
    let you = platform.register_player();

    println!("== ESP Game — you vs a recorded partner ==");
    println!("Agree with the recorded human on any label to score.");
    println!("Commands: 'pass', 'quit'.\n");

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let mut score = 0u32;
    let mut now = SimTime::from_secs(100_000);
    let mut streak = 0u32;

    for round_no in 1..=ROUNDS {
        let Some(task) = platform.next_task_for(&[you], &mut rng) else {
            println!("no tasks left!");
            break;
        };
        if !platform.replay().has_recording(task) {
            platform.record_served(task, &[you]);
            continue; // only play recorded images in the CLI
        }
        platform.record_served(task, &[you]);
        let taboo = platform.taboo_for(task);
        let truth = world.truth_for_task(task).expect("registered task");
        let recording = platform
            .replay()
            .sample(task, &mut rng)
            .cloned()
            .expect("checked recording exists");

        // The "image": show a blurred view — two true tags at scrambled
        // letter order plus the taboo list (as the real UI does).
        println!("--- round {round_no}/{ROUNDS} · {task} ---");
        let hints: Vec<String> = truth
            .labels()
            .iter()
            .take(3)
            .map(|l| scramble(l.as_str()))
            .collect();
        println!("you see (scrambled tags): {}", hints.join("  "));
        if !taboo.is_empty() {
            let list: Vec<&str> = taboo.iter().map(|l| l.as_str()).collect();
            println!("taboo words: {}", list.join(", "));
        }

        let mut round = OutputAgreementRound::new(task, taboo, SimDuration::from_secs(150));
        // Feed the recorded partner's guesses upfront (they "type" them
        // at their recorded delays; for the CLI we submit them all).
        for (delay, label) in &recording.events {
            round.submit(Seat::Right, Answer::Text(label.clone()), now + *delay);
        }

        let mut matched = false;
        loop {
            print!("your label> ");
            std::io::stdout().flush().ok();
            let Some(Ok(line)) = lines.next() else {
                println!("(end of input)");
                return summary(score, &platform, &world);
            };
            let input = line.trim();
            if input.eq_ignore_ascii_case("quit") {
                return summary(score, &platform, &world);
            }
            if input.eq_ignore_ascii_case("pass") {
                println!("passed.");
                break;
            }
            now += SimDuration::from_secs(3);
            match round.submit(Seat::Left, Answer::text(input), now) {
                SubmitOutcome::Matched(Some(label)) => {
                    let pts = platform.score_rule().round_score(true, 10.0, streak);
                    score += pts;
                    streak += 1;
                    matched = true;
                    println!("MATCH on {:?}! +{pts} points", label.as_str());
                    let _ = platform.ingest_agreement(task, label, you, recording.recorded_player);
                    break;
                }
                SubmitOutcome::TabooViolation => println!("that word is taboo!"),
                SubmitOutcome::RoundOver => {
                    println!("round over.");
                    break;
                }
                _ => println!("no match yet — partner is thinking of something else…"),
            }
        }
        if !matched {
            streak = 0;
        }
        now += SimDuration::from_secs(60);
        println!();
    }
    summary(score, &platform, &world);
}

fn summary(score: u32, platform: &Platform, world: &EspWorld) {
    let (correct, total) = world.verified_precision(platform);
    println!("\n== game over: {score} points ==");
    println!("the platform now holds {total} verified labels ({correct} verifiably true)");
}

/// Scrambles interior letters, keeping first/last — a "blurred image".
fn scramble(word: &str) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() <= 3 {
        return word.to_string();
    }
    let mut middle: Vec<char> = chars[1..chars.len() - 1].to_vec();
    middle.reverse();
    let mut out = String::new();
    out.push(chars[0]);
    out.extend(middle);
    out.push(chars[chars.len() - 1]);
    out
}
