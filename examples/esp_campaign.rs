//! A full ESP Game deployment: arrivals, random matching, replay-bot
//! fallback, engagement-driven return visits — the paper's flagship
//! system running for a simulated day.
//!
//! ```text
//! cargo run --release --example esp_campaign
//! ```

use human_computation::prelude::*;

fn main() {
    let mut config = EspCampaignConfig::small();
    config.players = 120;
    config.world.stimuli = 1_500;
    config.horizon = SimTime::from_secs(24 * 3600); // one simulated day
    config.platform.agreement_threshold = 1;

    println!(
        "running a 24h ESP campaign: {} players, {} images...",
        config.players, config.world.stimuli
    );
    let mut campaign = EspCampaign::new(config, 2009);
    let report = campaign.run();

    println!("\n-- campaign report --");
    println!("live sessions:    {}", report.live_sessions);
    println!(
        "replay sessions:  {} ({:.1}% of pairs)",
        report.replay_sessions,
        report.matchmaker.replay_share() * 100.0
    );
    println!("mean pairing wait: {:.1}s", report.mean_wait_secs);
    println!(
        "verified labels:  {} (precision {:.1}%)",
        report.precision.1,
        report.precision_rate() * 100.0
    );
    println!("metrics:          {}", report.metrics);

    // The retention machinery the paper credits for ALP: leaderboard.
    println!("\n-- top 5 players --");
    let board = campaign.platform().scoreboard().leaderboard(5);
    for (rank, (player, points)) in board.entries().iter().enumerate() {
        let score = campaign
            .platform()
            .scoreboard()
            .score(*player)
            .expect("listed player scored");
        println!(
            "  #{} {player}: {points} points, level {}, best streak {}",
            rank + 1,
            score.level(),
            score.best_streak
        );
    }

    // Coverage of the image world.
    let tasks = campaign.platform().tasks();
    let labeled = tasks.iter().filter(|t| t.verified_outputs > 0).count();
    println!(
        "\nworld coverage: {labeled}/{} images have at least one verified label",
        tasks.len()
    );
}
