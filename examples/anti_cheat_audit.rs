//! Auditing a poisoned crowd.
//!
//! Seeds the population with colluders running the "always type X"
//! attack, runs ESP sessions with the full defense stack (k-agreement,
//! gold-answer testing, entropy/pair-share detection), and prints the
//! audit: how much poison got through, who got caught, and what it cost
//! honest throughput.
//!
//! ```text
//! cargo run --release --example anti_cheat_audit
//! ```

use human_computation::core::anticheat::CheatDetector;
use human_computation::prelude::*;
use rand::SeedableRng;

const ATTACK: &str = "poison";
const PLAYERS: usize = 30;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31337);
    let mut world_cfg = WorldConfig::standard();
    world_cfg.stimuli = 400;
    let mut world = EspWorld::generate(&world_cfg, &mut rng);

    let mut platform = Platform::new(PlatformConfig {
        agreement_threshold: 2,
        gold_injection_rate: 0.2,
        gold_min_accuracy: 0.5,
        gold_min_evidence: 3,
        ..PlatformConfig::default()
    })
    .expect("valid config");
    world.register_tasks(&mut platform);
    world.register_gold_tasks(&mut platform, &world_cfg, 25, &mut rng);
    platform.set_cheat_detector(CheatDetector::new(0.5, 0.8, 15));

    // 25% of the crowd colludes on a fixed label.
    let mut population = PopulationBuilder::new(PLAYERS)
        .mix(ArchetypeMix::with_colluders(0.75, 0.25, ATTACK))
        .build(&mut rng);
    for _ in 0..PLAYERS {
        platform.register_player();
    }
    let colluders: Vec<PlayerId> = population
        .players()
        .iter()
        .filter(|p| p.is_adversarial())
        .map(|p| p.id)
        .collect();
    println!(
        "crowd: {} players, {} colluders on label {ATTACK:?}",
        PLAYERS,
        colluders.len()
    );

    for s in 0..200u64 {
        let a = PlayerId::new((2 * s) % PLAYERS as u64);
        let mut b = PlayerId::new((2 * s + 1 + s / PLAYERS as u64) % PLAYERS as u64);
        if a == b {
            b = PlayerId::new((b.raw() + 1) % PLAYERS as u64);
        }
        play_esp_session(
            &mut platform,
            &world,
            &mut population,
            SessionParams::pair(a, b, SessionId::new(s), SimTime::from_secs(s * 1_000)),
            &mut rng,
        );
    }

    let attack = Label::new(ATTACK);
    let verified = platform.verified_labels();
    let poisoned = verified.iter().filter(|v| v.label == attack).count();
    let (correct, total) = world.verified_precision(&platform);
    println!("\n-- audit --");
    println!("verified labels:        {total}");
    println!("poisoned labels:        {poisoned}");
    println!(
        "precision vs truth:     {:.1}%",
        correct as f64 / total.max(1) as f64 * 100.0
    );
    println!("agreements rejected:    {}", platform.rejected_agreements());

    println!("\n-- detector verdicts --");
    let flagged = platform.cheat_detector().suspicious_players();
    let caught = colluders.iter().filter(|c| flagged.contains(c)).count();
    let false_alarms = flagged.iter().filter(|f| !colluders.contains(f)).count();
    println!(
        "flagged {} players: {caught}/{} true colluders, {false_alarms} false alarms",
        flagged.len(),
        colluders.len()
    );
    for p in &flagged {
        let a = platform.cheat_detector().assess(*p);
        println!(
            "  {p}: pair-share {:?}, answer entropy {:?} bits{}",
            a.max_pair_share.map(|x| format!("{x:.2}")),
            a.answer_entropy.map(|x| format!("{x:.2}")),
            if colluders.contains(p) {
                "  [colluder]"
            } else {
                "  [honest!]"
            }
        );
    }

    println!("\n-- gold-task trust gate --");
    for c in &colluders {
        let trusted = platform.gold().is_trusted(*c);
        let record = platform.gold().record(*c);
        println!("  {c}: trusted={trusted} gold record {record:?}");
    }
}
