//! Compare GWAPs head-to-head under identical deployment conditions.
//!
//! Runs the ESP Game (with its replay-bot fallback), TagATune and
//! Verbosity through the same arrival/engagement regime using the
//! generic [`Campaign`] runner, and prints the paper's three metrics
//! side by side — the DAC'09 comparison table, live.
//!
//! ```text
//! cargo run --release --example gwap_comparison
//! ```

use hc_sim::RngFactory;
use human_computation::prelude::*;

fn main() {
    let seed = 1492;
    println!("running three campaigns under identical traffic...\n");

    // ---- ESP (specialized campaign with replay bots) ----
    let mut esp_cfg = EspCampaignConfig::small();
    esp_cfg.players = 60;
    esp_cfg.world.stimuli = 2_000;
    esp_cfg.horizon = SimTime::from_secs(8 * 3600);
    let mut esp = EspCampaign::new(esp_cfg, seed);
    let esp_report = esp.run();

    // ---- TagATune / Verbosity (generic campaign runner) ----
    let mut generic_cfg = CampaignConfig::small();
    generic_cfg.players = 60;
    generic_cfg.horizon = SimTime::from_secs(8 * 3600);

    let factory = RngFactory::new(seed);
    let mut world_rng = factory.stream("worlds");
    let mut world_cfg = WorldConfig::standard();
    world_cfg.stimuli = 2_000;

    let tagatune = Campaign::new(
        TagATuneDriver::generate(&world_cfg, 0.5, &mut world_rng),
        generic_cfg.clone(),
        seed,
    )
    .run();
    let verbosity = Campaign::new(
        VerbosityDriver::generate(&world_cfg, &mut world_rng),
        generic_cfg,
        seed,
    )
    .run();

    println!(
        "{:<11} {:>9} {:>10} {:>9} {:>11} {:>10}",
        "game", "sessions", "verified", "thr/hh", "ALP(min)", "E[contrib]"
    );
    println!("{}", "-".repeat(65));
    let print_row = |name: &str, sessions: u64, verified: usize, m: &GwapMetrics| {
        println!(
            "{:<11} {:>9} {:>10} {:>9.1} {:>11.1} {:>10.1}",
            name,
            sessions,
            verified,
            m.throughput_per_human_hour,
            m.alp_hours * 60.0,
            m.expected_contribution
        );
    };
    print_row(
        "esp",
        esp_report.live_sessions + esp_report.replay_sessions,
        esp_report.precision.1,
        &esp_report.metrics,
    );
    print_row(
        "tagatune",
        tagatune.sessions,
        tagatune.verified,
        &tagatune.metrics,
    );
    print_row(
        "verbosity",
        verbosity.sessions,
        verbosity.verified,
        &verbosity.metrics,
    );

    println!(
        "\nesp extras: replay share {:.1}%, label precision {:.1}%",
        esp_report.matchmaker.replay_share() * 100.0,
        esp_report.precision_rate() * 100.0
    );
    println!(
        "mean pairing waits: esp {:.1}s, tagatune {:.1}s, verbosity {:.1}s",
        esp_report.mean_wait_secs, tagatune.mean_wait_secs, verbosity.mean_wait_secs
    );
    println!("\n(the ALP column reflects the campaign's *realized* play per player within the horizon, not lifetime ALP — see exp_t1 for the lifetime metric)");
}
