//! Quickstart: one ESP Game session, end to end.
//!
//! Builds a tiny synthetic image world, seats two simulated honest
//! players, plays one output-agreement session through the full
//! verification pipeline, and prints what the crowd just taught the
//! platform.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use human_computation::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // 1. A world of 50 synthetic images, each with known true labels.
    let world = EspWorld::generate(&WorldConfig::small(), &mut rng);

    // 2. A platform with default ESP-style verification (agreement
    //    promotes labels; promoted labels become taboo).
    let mut platform = Platform::new(PlatformConfig::default()).expect("valid default config");
    world.register_tasks(&mut platform);

    // 3. Two honest simulated players.
    let mut population = PopulationBuilder::new(2)
        .mix(ArchetypeMix::all_honest())
        .build(&mut rng);
    let a = platform.register_player();
    let b = platform.register_player();

    // 4. Play one session.
    let transcript = play_esp_session(
        &mut platform,
        &world,
        &mut population,
        SessionParams::pair(a, b, SessionId::new(0), SimTime::ZERO),
        &mut rng,
    );

    println!("session {} between {a} and {b}", transcript.id);
    println!(
        "  rounds: {}  matched: {}  duration: {}",
        transcript.rounds(),
        transcript.matched_count(),
        transcript.duration(),
    );
    println!(
        "  points: left {} / right {}",
        transcript.total_points[0], transcript.total_points[1]
    );

    println!("\nverified labels ({}):", platform.verified_labels().len());
    for v in platform.verified_labels() {
        let truth = if world.is_correct(v.task, &v.label) {
            "correct"
        } else {
            "WRONG"
        };
        println!("  {}  ->  {:20}  [{truth}]", v.task, v.label.as_str());
    }

    let m = platform.metrics();
    println!("\nGWAP metrics so far: {m}");
}
