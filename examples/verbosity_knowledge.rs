//! Harvesting commonsense facts with Verbosity.
//!
//! Runs inversion-problem sessions where narrators describe secret words
//! and guessers reconstruct them; every hint that enabled a correct guess
//! becomes a `(secret, fact)` pair — the commonsense knowledge base the
//! deployed Verbosity built.
//!
//! ```text
//! cargo run --release --example verbosity_knowledge
//! ```

use human_computation::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1979);
    let mut cfg = WorldConfig::standard();
    cfg.stimuli = 500;
    let world = VerbosityWorld::generate(&cfg, &mut rng);

    let mut platform = Platform::new(PlatformConfig {
        gold_injection_rate: 0.0,
        ..PlatformConfig::default()
    })
    .expect("valid config");
    world.register_tasks(&mut platform);

    const PLAYERS: usize = 20;
    let mut population = PopulationBuilder::new(PLAYERS)
        .mix(ArchetypeMix::realistic())
        .skill_range(0.7, 0.95)
        .build(&mut rng);
    for _ in 0..PLAYERS {
        platform.register_player();
    }

    // Alternate narrator/guesser roles across sessions, as the deployed
    // game alternated within a session.
    let mut matched = 0usize;
    let mut rounds = 0usize;
    for s in 0..60u64 {
        let a = PlayerId::new((2 * s) % PLAYERS as u64);
        let mut b = PlayerId::new((2 * s + 1 + s / PLAYERS as u64) % PLAYERS as u64);
        if a == b {
            b = PlayerId::new((b.raw() + 1) % PLAYERS as u64);
        }
        let (narrator, guesser) = if s % 2 == 0 { (a, b) } else { (b, a) };
        let t = play_verbosity_session(
            &mut platform,
            &world,
            &mut population,
            narrator,
            guesser,
            SessionId::new(s),
            SimTime::from_secs(s * 1_000),
            &mut rng,
        );
        matched += t.matched_count();
        rounds += t.rounds();
    }

    println!(
        "played {rounds} rounds; guessers recovered the secret in {matched} ({:.1}%)",
        matched as f64 / rounds.max(1) as f64 * 100.0
    );

    let facts = platform.verified_labels();
    let correct = facts
        .iter()
        .filter(|v| world.is_true_fact(v.task, &v.label))
        .count();
    println!(
        "knowledge base: {} facts collected, {:.1}% verifiably true",
        facts.len(),
        correct as f64 / facts.len().max(1) as f64 * 100.0
    );

    println!("\nsample facts (typed, via the game's sentence templates):");
    for v in facts.iter().take(10) {
        let secret = world.secret_for_task(v.task).expect("registered task");
        match human_computation::games::verbosity::parse_fact(&v.label) {
            Some((relation, object)) => println!(
                "  {secret} —{}→ {object}   ({})",
                relation.token(),
                relation.template()
            ),
            None => println!("  {secret} -> \"{}\" (free-form)", v.label.as_str()),
        }
    }

    // Relation mix of the harvested knowledge base.
    let mut by_relation = std::collections::HashMap::new();
    for v in facts {
        if let Some((r, _)) = human_computation::games::verbosity::parse_fact(&v.label) {
            *by_relation.entry(r.token()).or_insert(0usize) += 1;
        }
    }
    println!("\nfacts per template: {by_relation:?}");

    println!("\nGWAP metrics: {}", platform.metrics());
}
