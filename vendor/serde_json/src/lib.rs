//! Offline stand-in for `serde_json`, built over the vendored serde's
//! [`Value`] tree: compact rendering via `Display`, plus a standard
//! recursive-descent JSON parser for `from_str`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::value::{Number, Value};
use serde::{de::DeserializeOwned, Serialize};

/// Errors from serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.serialize_value().to_string())
}

/// Serializes `value` to JSON indented with two spaces.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render_pretty(&value.serialize_value(), 0, &mut out);
    Ok(out)
}

fn render_pretty(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&pad);
                render_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&pad);
                out.push_str(&Value::String(key.clone()).to_string());
                out.push_str(": ");
                render_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Converts `value` into a [`Value`] tree.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    Ok(T::deserialize_value(&value)?)
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on a shape mismatch.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    Ok(T::deserialize_value(&value)?)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}`, found `{}` at byte {}",
                b as char,
                got as char,
                self.pos - 1
            )));
        }
        Ok(())
    }

    fn eat_keyword(&mut self, word: &str) -> Result<()> {
        for &b in word.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b']' => return Ok(Value::Array(items)),
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b'}' => return Ok(Value::Object(fields)),
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let cp = self.hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                    }
                    other => {
                        return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                    }
                },
                other if other < 0x20 => return Err(Error::new("raw control character in string")),
                _ => unreachable!("fast path consumed plain bytes"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            cp = cp * 16 + digit;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number bytes"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "\"hi\""] {
            let v = parse_value(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn containers_round_trip() {
        let text = r#"{"a":[1,2,3],"b":{"c":null},"d":"x\ny"}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn big_u64_precision_is_preserved() {
        let x = u64::MAX - 3;
        let v = parse_value(&x.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(x));
    }

    #[test]
    fn floats_stay_floats() {
        let v = parse_value("1.0").unwrap();
        assert_eq!(v.to_string(), "1.0");
        assert_eq!(v.as_f64(), Some(1.0));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse_value(r#""\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{1F600}"));
    }

    #[test]
    fn malformed_input_errors() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("\"\\q\"").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![(1u64, true), (2, false)];
        let json = to_string(&xs).unwrap();
        let back: Vec<(u64, bool)> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }
}
