//! Offline stand-in for the `serde` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! self-contained serialization framework exposing the subset of serde's
//! surface the workspace uses: the [`Serialize`] / [`Deserialize`] traits,
//! `serde::de::DeserializeOwned`, and `#[derive(Serialize, Deserialize)]`
//! (re-exported from the vendored `serde_derive` when the `derive` feature
//! is on).
//!
//! Instead of serde's visitor-based streaming model, this implementation
//! serializes through an owned JSON-like [`Value`] tree. The vendored
//! `serde_json` renders and parses that tree, so
//! `serde_json::to_string` / `from_str` round-trips behave as expected.
//! Maps serialize as arrays of `[key, value]` pairs, which sidesteps
//! JSON's string-only object keys for typed map keys.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn serialize_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
///
/// The lifetime parameter exists for signature compatibility with real
/// serde (`for<'de> Deserialize<'de>` bounds); this implementation always
/// deserializes from an owned tree.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize_value(value: &Value) -> Result<Self, DeError>;
}

/// Deserialization-side items, mirroring `serde::de`.
pub mod de {
    /// A type deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}

    pub use crate::DeError;
}

/// Serialization-side items, mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

/// Why a [`Deserialize`](crate::Deserialize) call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a human-readable message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Convenience constructor: expected one shape, found another.
    #[must_use]
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError::new(format!("expected {what}, found {}", found.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Implementations for primitives and std collections.
// ---------------------------------------------------------------------------

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_u64(u64::from(*self)))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", value))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_ser_de_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_u64(*self as u64))
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        let raw = value
            .as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", value))?;
        usize::try_from(raw).map_err(|_| DeError::new("usize out of range"))
    }
}

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_i64(i64::from(*self)))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| DeError::expected("integer", value))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_ser_de_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_i64(*self as i64))
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        let raw = value
            .as_i64()
            .ok_or_else(|| DeError::expected("integer", value))?;
        isize::try_from(raw).map_err(|_| DeError::new("isize out of range"))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        #[allow(clippy::cast_possible_truncation)]
        value
            .as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) if s.chars().count() == 1 => {
                s.chars().next().ok_or_else(|| DeError::new("empty char"))
            }
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + std::fmt::Debug, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == N => {
                let parsed: Result<Vec<T>, DeError> =
                    items.iter().map(T::deserialize_value).collect();
                parsed?
                    .try_into()
                    .map_err(|_| DeError::new("array length mismatch"))
            }
            other => Err(DeError::expected("fixed-size array", other)),
        }
    }
}

macro_rules! impl_ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            {
                                let item = it
                                    .next()
                                    .ok_or_else(|| DeError::new("tuple too short"))?;
                                $name::deserialize_value(item)?
                            },
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::new("tuple too long"));
                        }
                        Ok(out)
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )*};
}

impl_ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

fn serialize_map<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Array(
        entries
            .map(|(k, v)| Value::Array(vec![k.serialize_value(), v.serialize_value()]))
            .collect(),
    )
}

fn deserialize_map_entries<'de, K: Deserialize<'de>, V: Deserialize<'de>>(
    value: &Value,
) -> Result<Vec<(K, V)>, DeError> {
    match value {
        Value::Array(items) => items
            .iter()
            .map(|pair| match pair {
                Value::Array(kv) if kv.len() == 2 => {
                    Ok((K::deserialize_value(&kv[0])?, V::deserialize_value(&kv[1])?))
                }
                other => Err(DeError::expected("[key, value] pair", other)),
            })
            .collect(),
        other => Err(DeError::expected("map as array of pairs", other)),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<'de, K, V, S> Deserialize<'de> for std::collections::HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Ok(deserialize_map_entries::<K, V>(value)?
            .into_iter()
            .collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Ok(deserialize_map_entries::<K, V>(value)?
            .into_iter()
            .collect())
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<'de, T, S> Deserialize<'de> for std::collections::HashSet<T, S>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T> Serialize for std::marker::PhantomData<T> {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}

impl<'de, T> Deserialize<'de> for std::marker::PhantomData<T> {
    fn deserialize_value(_: &Value) -> Result<Self, DeError> {
        Ok(std::marker::PhantomData)
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

/// Support machinery for the `serde_derive` macros. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Looks up and deserializes a named struct field.
    pub fn get_field<T: for<'de> Deserialize<'de>>(
        fields: &[(String, Value)],
        name: &str,
        type_name: &str,
    ) -> Result<T, DeError> {
        let found = fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::new(format!("missing field `{name}` in {type_name}")))?;
        T::deserialize_value(found)
            .map_err(|e| DeError::new(format!("field `{name}` of {type_name}: {e}")))
    }

    /// Unwraps an object value, for struct deserialization.
    pub fn expect_object<'v>(
        value: &'v Value,
        type_name: &str,
    ) -> Result<&'v [(String, Value)], DeError> {
        match value {
            Value::Object(fields) => Ok(fields),
            other => Err(DeError::new(format!(
                "expected object for {type_name}, found {}",
                other.kind()
            ))),
        }
    }

    /// Unwraps an array value of an exact length, for tuple shapes.
    pub fn expect_array<'v>(
        value: &'v Value,
        len: usize,
        type_name: &str,
    ) -> Result<&'v [Value], DeError> {
        match value {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(DeError::new(format!(
                "expected {len} elements for {type_name}, found {}",
                items.len()
            ))),
            other => Err(DeError::new(format!(
                "expected array for {type_name}, found {}",
                other.kind()
            ))),
        }
    }
}
