//! The owned value tree all (de)serialization flows through.

/// A JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integer or float; see [`Number`]).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Stored as a field list to preserve insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving 64-bit integer precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// Wraps a `u64`.
    #[must_use]
    pub fn from_u64(x: u64) -> Self {
        Number::PosInt(x)
    }

    /// Wraps an `i64`, preferring the non-negative representation.
    #[must_use]
    pub fn from_i64(x: i64) -> Self {
        if x >= 0 {
            Number::PosInt(x as u64)
        } else {
            Number::NegInt(x)
        }
    }

    /// Wraps an `f64`.
    #[must_use]
    pub fn from_f64(x: f64) -> Self {
        Number::Float(x)
    }
}

impl Value {
    /// A short name for the value's shape, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The value as a `u64`, if it is a non-negative integer (or an
    /// integral float, as produced by JSON text like `1.0`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(x)) => Some(*x),
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(x)) => i64::try_from(*x).ok(),
            Value::Number(Number::NegInt(x)) => Some(*x),
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                #[allow(clippy::cast_possible_truncation)]
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(x)) => Some(*x as f64),
            Value::Number(Number::NegInt(x)) => Some(*x as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's items, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields, if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field by name, if this is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

fn write_escaped(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Number::PosInt(x) => write!(f, "{x}"),
            Number::NegInt(x) => write!(f, "{x}"),
            // `{:?}` prints the shortest text that round-trips the f64
            // (e.g. `1.0`, not `1`), keeping floats floats across a parse.
            Number::Float(x) if x.is_finite() => write!(f, "{x:?}"),
            // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
            Number::Float(_) => write!(f, "null"),
        }
    }
}

impl std::fmt::Display for Value {
    /// Renders compact JSON.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}
