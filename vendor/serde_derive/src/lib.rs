//! `#[derive(Serialize, Deserialize)]` for the vendored `serde`.
//!
//! The build container has no crates.io access, so `syn`/`quote` are
//! unavailable; this macro hand-parses the derive input token stream.
//! It supports the shapes the workspace uses:
//!
//! * structs with named fields (including generics and `#[serde(skip)]`),
//! * tuple structs (newtype and longer),
//! * unit structs,
//! * enums with unit, newtype, tuple, and struct variants.
//!
//! Generated code targets the vendored serde's value-tree model:
//! `Serialize::serialize_value(&self) -> Value` and
//! `Deserialize::deserialize_value(&Value) -> Result<Self, DeError>`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    skip: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(Vec<String>),
    Named(Vec<Field>),
}

/// The parsed derive input.
struct Input {
    name: String,
    /// Generic parameter names, e.g. `["T"]` for `Foo<T>`.
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<String>),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kw = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let generics = parse_generics(&tokens, &mut i);

    let kind = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(parse_tuple_types(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("enum without a body"),
        },
        other => panic!("derive target must be a struct or enum, found `{other}`"),
    };

    Input {
        name,
        generics,
        kind,
    }
}

/// Advances past any `#[...]` attribute groups, returning whether one of
/// them was `#[serde(skip)]`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            skip |= attr_is_serde_skip(g.stream());
            *i += 2;
        } else {
            break;
        }
    }
    skip
}

fn attr_is_serde_skip(attr: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `<A, B, ...>` generic parameter lists. Bounds and defaults are
/// tolerated and stripped; only the parameter names are kept.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    let Some(TokenTree::Punct(p)) = tokens.get(*i) else {
        return params;
    };
    if p.as_char() != '<' {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut expecting_param = true;
    let mut in_bound = false;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    return params;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                expecting_param = true;
                in_bound = false;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => in_bound = true,
            TokenTree::Ident(id) if depth == 1 && expecting_param && !in_bound => {
                params.push(id.to_string());
                expecting_param = false;
            }
            _ => {}
        }
        *i += 1;
    }
    panic!("unterminated generic parameter list");
}

/// Parses `name: Type, ...` named-field lists.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // The generated impls never need the type text (the value model
        // dispatches through trait methods), but the tokens must still be
        // consumed to find the next field boundary.
        collect_type(&tokens, &mut i);
        fields.push(Field { name, skip });
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    fields
}

/// Collects a type's tokens up to a top-level `,` (generics-depth aware).
fn collect_type(tokens: &[TokenTree], i: &mut usize) -> String {
    let mut depth = 0usize;
    let mut parts: Vec<String> = Vec::new();
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {}
        }
        parts.push(tok.to_string());
        *i += 1;
    }
    parts.join(" ")
}

/// Parses the comma-separated types of a tuple struct / tuple variant,
/// tolerating per-element attributes and visibility.
fn parse_tuple_types(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut types = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let ty = collect_type(&tokens, &mut i);
        if !ty.is_empty() {
            types.push(ty);
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    types
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(parse_tuple_types(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip an explicit discriminant (`= expr`) if present, then the comma.
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<...> Trait for Name<...>` header pieces: (impl generics, type).
fn impl_header(input: &Input, bound: &str, extra_lifetime: Option<&str>) -> (String, String) {
    let mut impl_params: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        impl_params.push(lt.to_string());
    }
    for p in &input.generics {
        impl_params.push(format!("{p}: {bound}"));
    }
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let ty = if input.generics.is_empty() {
        input.name.clone()
    } else {
        format!("{}<{}>", input.name, input.generics.join(", "))
    };
    (impl_generics, ty)
}

fn gen_serialize(input: &Input) -> String {
    let (impl_generics, ty) = impl_header(input, "serde::Serialize", None);
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{0}\"), \
                     serde::Serialize::serialize_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}serde::Value::Object(__fields)"
            )
        }
        Kind::TupleStruct(types) if types.len() == 1 => {
            "serde::Serialize::serialize_value(&self.0)".to_string()
        }
        Kind::TupleStruct(types) => {
            let items: Vec<String> = (0..types.len())
                .map(|i| format!("serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::String(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantShape::Tuple(types) if types.len() == 1 => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vn}\"), \
                         serde::Serialize::serialize_value(__f0))]),\n"
                    )),
                    VariantShape::Tuple(types) => {
                        let binds: Vec<String> =
                            (0..types.len()).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             serde::Value::Array(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     serde::Serialize::serialize_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             serde::Value::Object(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic, clippy::nursery)]\n\
         impl{impl_generics} serde::Serialize for {ty} {{\n\
             fn serialize_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (impl_generics, ty) = impl_header(input, "for<'__x> serde::Deserialize<'__x>", Some("'de"));
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: serde::__private::get_field(__obj, \"{0}\", \"{name}\")?,\n",
                        f.name
                    ));
                }
            }
            format!(
                "let __obj = serde::__private::expect_object(__value, \"{name}\")?;\n\
                 ::core::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Kind::TupleStruct(types) if types.len() == 1 => format!(
            "::core::result::Result::Ok({name}(serde::Deserialize::deserialize_value(__value)?))"
        ),
        Kind::TupleStruct(types) => {
            let n = types.len();
            let items: Vec<String> = (0..n)
                .map(|i| format!("serde::Deserialize::deserialize_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = serde::__private::expect_array(__value, {n}, \"{name}\")?;\n\
                 ::core::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Kind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic, clippy::nursery)]\n\
         impl{impl_generics} serde::Deserialize<'de> for {ty} {{\n\
             fn deserialize_value(__value: &serde::Value) \
              -> ::core::result::Result<Self, serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| {
            format!(
                "\"{0}\" => ::core::result::Result::Ok({name}::{0}),\n",
                v.name
            )
        })
        .collect();
    let mut payload_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            VariantShape::Unit => {}
            VariantShape::Tuple(types) if types.len() == 1 => payload_arms.push_str(&format!(
                "\"{vn}\" => ::core::result::Result::Ok(\
                 {name}::{vn}(serde::Deserialize::deserialize_value(__inner)?)),\n"
            )),
            VariantShape::Tuple(types) => {
                let n = types.len();
                let items: Vec<String> = (0..n)
                    .map(|i| format!("serde::Deserialize::deserialize_value(&__items[{i}])?"))
                    .collect();
                payload_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let __items = serde::__private::expect_array(__inner, {n}, \"{name}::{vn}\")?;\n\
                     ::core::result::Result::Ok({name}::{vn}({}))\n}}\n",
                    items.join(", ")
                ));
            }
            VariantShape::Named(fields) => {
                let mut inits = String::new();
                for f in fields {
                    if f.skip {
                        inits.push_str(&format!(
                            "{}: ::core::default::Default::default(),\n",
                            f.name
                        ));
                    } else {
                        inits.push_str(&format!(
                            "{0}: serde::__private::get_field(__obj, \"{0}\", \"{name}::{vn}\")?,\n",
                            f.name
                        ));
                    }
                }
                payload_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let __obj = serde::__private::expect_object(__inner, \"{name}::{vn}\")?;\n\
                     ::core::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}}\n"
                ));
            }
        }
    }

    let mut body = String::new();
    if !unit_arms.is_empty() {
        body.push_str(&format!(
            "if let serde::Value::String(__s) = __value {{\n\
             return match __s.as_str() {{\n{}__other => \
             ::core::result::Result::Err(serde::DeError::new(::std::format!(\
             \"unknown variant `{{}}` of {name}\", __other))),\n}};\n}}\n",
            unit_arms.join("")
        ));
    }
    if !payload_arms.is_empty() {
        body.push_str(&format!(
            "if let serde::Value::Object(__fields) = __value {{\n\
             if __fields.len() == 1 {{\n\
             let (__key, __inner) = &__fields[0];\n\
             return match __key.as_str() {{\n{payload_arms}__other => \
             ::core::result::Result::Err(serde::DeError::new(::std::format!(\
             \"unknown variant `{{}}` of {name}\", __other))),\n}};\n}}\n}}\n"
        ));
    }
    body.push_str(&format!(
        "::core::result::Result::Err(serde::DeError::expected(\"{name} variant\", __value))"
    ));
    body
}
