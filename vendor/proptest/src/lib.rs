//! Offline stand-in for `proptest`: a deterministic strategy subset
//! (ranges, regex-lite strings, tuples, `collection::vec`, `option::of`,
//! `any::<T>()`, `Just`) plus the `proptest!`/`prop_assert*` macros.
//!
//! No shrinking: a failing case panics with the case index so it can be
//! replayed (generation is a pure function of test name + case index).

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic per-case RNG
// ---------------------------------------------------------------------------

/// SplitMix64-based generator; the stream is a pure function of the test
/// name and case index, so every run explores the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the RNG for one test case.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng {
            state: h ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        // Warm up so nearby case indices decorrelate.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is ~2^-64 * n — irrelevant for test generation.
        self.next_u64() % n
    }

    fn below_u128(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        if let Ok(small) = u64::try_from(n) {
            u128::from(self.below(small))
        } else {
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % n
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and primitive strategies
// ---------------------------------------------------------------------------

/// A generator of test values, driven by [`TestRng`].
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;
    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let x = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if x >= self.end { self.start } else { x }
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// `any::<T>()`
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Bounded span keeps downstream arithmetic finite.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------------

/// Element-count bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

/// `prop::collection` — sized containers of an element strategy.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vector of values from `elem`, length within `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `prop::option` — optional values.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`; `None` roughly one time in five.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Optional value from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-lite string strategy
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    Dot,
    Class(Vec<(char, char)>),
    Group(Vec<(Node, Quant)>),
}

#[derive(Debug, Clone, Copy)]
struct Quant {
    min: u32,
    max: u32,
}

const ONCE: Quant = Quant { min: 1, max: 1 };
/// Cap for unbounded quantifiers (`*`, `+`, `{m,}`).
const UNBOUNDED_CAP: u32 = 8;

fn parse_pattern(pattern: &str) -> Vec<(Node, Quant)> {
    let mut chars = pattern.chars().peekable();
    let seq = parse_seq(&mut chars, pattern);
    assert!(
        chars.next().is_none(),
        "unbalanced `)` in pattern `{pattern}`"
    );
    seq
}

fn parse_seq(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<(Node, Quant)> {
    let mut seq = Vec::new();
    while let Some(&c) = chars.peek() {
        if c == ')' {
            break;
        }
        chars.next();
        let node = match c {
            '(' => {
                let inner = parse_seq(chars, pattern);
                assert_eq!(
                    chars.next(),
                    Some(')'),
                    "unclosed group in pattern `{pattern}`"
                );
                Node::Group(inner)
            }
            '[' => Node::Class(parse_class(chars, pattern)),
            '.' => Node::Dot,
            '\\' => Node::Lit(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern `{pattern}`")),
            ),
            '|' | '^' | '$' => panic!("unsupported regex feature `{c}` in `{pattern}`"),
            other => Node::Lit(other),
        };
        let quant = parse_quant(chars, pattern);
        seq.push((node, quant));
    }
    seq
}

fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"));
        match c {
            ']' => break,
            '^' if ranges.is_empty() => {
                panic!("negated classes unsupported in `{pattern}`")
            }
            lo => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    let hi = chars
                        .next()
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"));
                    assert!(lo <= hi, "inverted class range in `{pattern}`");
                    ranges.push((lo, hi));
                } else {
                    ranges.push((lo, lo));
                }
            }
        }
    }
    assert!(!ranges.is_empty(), "empty class in pattern `{pattern}`");
    ranges
}

fn parse_quant(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Quant {
    match chars.peek() {
        Some('?') => {
            chars.next();
            Quant { min: 0, max: 1 }
        }
        Some('*') => {
            chars.next();
            Quant {
                min: 0,
                max: UNBOUNDED_CAP,
            }
        }
        Some('+') => {
            chars.next();
            Quant {
                min: 1,
                max: UNBOUNDED_CAP,
            }
        }
        Some('{') => {
            chars.next();
            let mut min = 0u32;
            let mut saw_digit = false;
            while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                chars.next();
                min = min * 10 + d;
                saw_digit = true;
            }
            assert!(saw_digit, "malformed `{{}}` quantifier in `{pattern}`");
            let max = match chars.next() {
                Some('}') => min,
                Some(',') => {
                    let mut max = 0u32;
                    let mut saw_max = false;
                    while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                        chars.next();
                        max = max * 10 + d;
                        saw_max = true;
                    }
                    assert_eq!(
                        chars.next(),
                        Some('}'),
                        "malformed `{{}}` quantifier in `{pattern}`"
                    );
                    if saw_max {
                        max
                    } else {
                        min + UNBOUNDED_CAP
                    }
                }
                _ => panic!("malformed `{{}}` quantifier in `{pattern}`"),
            };
            assert!(min <= max, "inverted `{{}}` quantifier in `{pattern}`");
            Quant { min, max }
        }
        _ => ONCE,
    }
}

/// Characters `.` draws from beyond printable ASCII, exercising multi-byte
/// and non-Latin input the way real proptest's `any::<char>()` would.
const DOT_EXTRAS: &[char] = &['\t', 'À', 'ß', 'Ω', 'я', '中', '\u{1F600}'];

fn generate_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Dot => {
            if rng.below(8) == 0 {
                out.push(DOT_EXTRAS[rng.below(DOT_EXTRAS.len() as u64) as usize]);
            } else {
                let code = 0x20 + rng.below(0x7f - 0x20) as u32;
                out.push(char::from_u32(code).unwrap_or(' '));
            }
        }
        Node::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| u64::from(hi as u32 - lo as u32 + 1))
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let size = u64::from(hi as u32 - lo as u32 + 1);
                if pick < size {
                    out.push(char::from_u32(lo as u32 + pick as u32).unwrap_or(lo));
                    return;
                }
                pick -= size;
            }
            unreachable!("pick < total by construction");
        }
        Node::Group(seq) => generate_seq(seq, rng, out),
    }
}

fn generate_seq(seq: &[(Node, Quant)], rng: &mut TestRng, out: &mut String) {
    for (node, quant) in seq {
        let count = quant.min + rng.below(u64::from(quant.max - quant.min) + 1) as u32;
        for _ in 0..count {
            generate_node(node, rng, out);
        }
    }
}

impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let seq = parse_pattern(self);
        let mut out = String::new();
        generate_seq(&seq, rng, &mut out);
        out
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// How a generated case ended, when not a success.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded, not counted.
    Reject,
    /// `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[doc(hidden)]
pub fn __run_property(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut successes = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(20);
    while successes < config.cases {
        assert!(
            attempts < max_attempts,
            "{name}: gave up after {attempts} attempts ({successes} successes); \
             prop_assume! rejects too much"
        );
        let mut rng = TestRng::for_case(name, attempts);
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "{name}: property failed at case #{}: {message}",
                    attempts - 1
                )
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-style function running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __name = concat!(module_path!(), "::", stringify!($name));
            $crate::__run_property(__name, &__config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                {
                    $body
                }
                ::std::result::Result::Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Discards the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything a property-test file needs: macros, `any`, `Strategy`,
/// the config type, and the `prop` combinator namespace.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace mirror so `prop::collection::vec` / `prop::option::of` work.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("vendor::proptest::tests", 0)
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let x = (3u64..17).generate(&mut r);
            assert!((3..17).contains(&x));
            let y = (-5i32..5).generate(&mut r);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let x = (-1.5f64..2.5).generate(&mut r);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn regex_classes_and_quantifiers() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z]{3,8}".generate(&mut r);
            assert!((3..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn regex_groups_and_optional() {
        let mut r = rng();
        let mut saw_space = false;
        let mut saw_bare = false;
        for _ in 0..200 {
            let s = "[a-z]{1,10}( [a-z]{1,6})?".generate(&mut r);
            if s.contains(' ') {
                saw_space = true;
                let (head, tail) = s.split_once(' ').expect("space present");
                assert!(head.chars().all(|c| c.is_ascii_lowercase()));
                assert!((1..=6).contains(&tail.chars().count()));
            } else {
                saw_bare = true;
            }
        }
        assert!(saw_space && saw_bare, "optional group should vary");
    }

    #[test]
    fn dot_respects_bounds() {
        let mut r = rng();
        for _ in 0..100 {
            let s = ".{0,40}".generate(&mut r);
            assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn vec_and_option_combinators() {
        let mut r = rng();
        let v = prop::collection::vec(0u32..10, 2..5).generate(&mut r);
        assert!((2..5).contains(&v.len()));
        let mut nones = 0;
        for _ in 0..200 {
            if prop::option::of(0usize..4).generate(&mut r).is_none() {
                nones += 1;
            }
        }
        assert!(nones > 0 && nones < 200);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::for_case("same", 7);
        let mut b = TestRng::for_case("same", 7);
        let s1 = "[a-z]{1,8}".generate(&mut a);
        let s2 = "[a-z]{1,8}".generate(&mut b);
        assert_eq!(s1, s2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn self_hosted_property(a in 0u64..100, flip in any::<bool>()) {
            prop_assume!(a != 99);
            prop_assert!(a < 100);
            if flip {
                prop_assert_eq!(a + 1, 1 + a);
            }
        }
    }
}
