//! Offline stand-in for `crossbeam-deque`: the `Injector` / `Worker` /
//! `Stealer` work-stealing triad, implemented safely over
//! `Mutex<VecDeque>` (no lock-free magic, same API shape and semantics).
//!
//! * a [`Worker`] owns a local FIFO queue: `push` to the back, `pop`
//!   from the front;
//! * its [`Stealer`] handles steal single items from the *back* (the
//!   classic steal-from-the-opposite-end discipline, which minimizes
//!   contention with the owner);
//! * an [`Injector`] is a shared global FIFO every thread may push to
//!   and steal from.
//!
//! All three are cheap to clone where the real crate allows it and every
//! steal returns a [`Steal`] verdict, so call sites written against
//! crossbeam-deque port over unchanged.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks a queue, recovering from a poisoned mutex: a panicked peer
/// cannot corrupt a `VecDeque` of owned items, so its contents stay
/// usable.
fn lock<T>(m: &Mutex<VecDeque<T>>) -> MutexGuard<'_, VecDeque<T>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Outcome of a steal attempt, mirroring `crossbeam_deque::Steal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One item was stolen.
    Success(T),
    /// The operation lost a race and may be retried. The mutex-based
    /// stand-in never loses races, but callers written for the lock-free
    /// original must still handle it.
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen item, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Whether the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

/// A shared global FIFO queue all threads may push to and steal from.
#[derive(Debug)]
pub struct Injector<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Clone for Injector<T> {
    fn clone(&self) -> Self {
        Injector {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    #[must_use]
    pub fn new() -> Self {
        Injector {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes an item onto the back of the global queue.
    pub fn push(&self, item: T) {
        lock(&self.queue).push_back(item);
    }

    /// Steals one item from the front of the global queue.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Whether the queue is currently empty (racy, advisory only).
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of queued items (racy, advisory only).
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }
}

/// A thread-local FIFO work queue whose back end other threads may
/// steal from through a [`Stealer`].
#[derive(Debug)]
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates an empty FIFO worker queue.
    #[must_use]
    pub fn new_fifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes an item onto the back of the local queue.
    pub fn push(&self, item: T) {
        lock(&self.queue).push_back(item);
    }

    /// Pops an item from the front of the local queue (FIFO order).
    pub fn pop(&self) -> Option<T> {
        lock(&self.queue).pop_front()
    }

    /// Creates a stealer handle sharing this queue.
    #[must_use]
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Whether the local queue is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }
}

/// A handle for stealing from another thread's [`Worker`] queue.
#[derive(Debug)]
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals one item from the back of the owning worker's queue.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_back() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Whether the observed queue is empty (racy, advisory only).
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal().success(), Some(1));
        assert_eq!(inj.steal().success(), Some(2));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn worker_pops_fifo_and_stealer_takes_from_the_back() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal().success(), Some(3));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn cross_thread_stealing_drains_everything() {
        let inj = Injector::new();
        for i in 0..100 {
            inj.push(i);
        }
        let total = std::sync::atomic::AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            for _ in 0..4 {
                let inj = &inj;
                let total = &total;
                scope.spawn(move |_| {
                    while let Steal::Success(_) = inj.steal() {
                        total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        })
        .expect("scope");
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 100);
        assert!(inj.is_empty());
    }
}
