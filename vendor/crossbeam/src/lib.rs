//! Offline stand-in for `crossbeam`: the `thread::scope` and
//! work-stealing `deque` APIs the workspace uses, implemented over
//! `std::thread::scope` and `Mutex<VecDeque>` (safe, no dependencies).
//! The crossbeam-style closure argument (`|scope| ...`, `spawn(|_| ...)`)
//! is preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deque;

/// Scoped threads mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked child thread.
    pub type ThreadResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle for spawning threads that may borrow from the caller's stack.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        ///
        /// # Errors
        ///
        /// Returns the boxed panic payload if the thread panicked.
        pub fn join(self) -> ThreadResult<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope again so it could spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope handle; all threads spawned in the scope are
    /// joined before this returns.
    ///
    /// # Errors
    ///
    /// Mirrors crossbeam's signature. Unlike crossbeam, an unjoined
    /// panicking child propagates its panic through `std::thread::scope`
    /// instead of surfacing here, so in practice this returns `Ok`.
    pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_can_borrow_and_fill_slots() {
        let mut slots = vec![0u64; 4];
        crate::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, slot) in slots.iter_mut().enumerate() {
                handles.push(scope.spawn(move |_| {
                    *slot = (i as u64 + 1) * 10;
                }));
            }
            for h in handles {
                h.join().expect("child panicked");
            }
        })
        .expect("scope");
        assert_eq!(slots, vec![10, 20, 30, 40]);
    }

    #[test]
    fn join_reports_child_panics() {
        crate::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .expect("scope");
    }
}
