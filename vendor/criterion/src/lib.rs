//! Offline stand-in for `criterion`: same macro and builder surface
//! (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`/`bench_with_input`, `Bencher::iter`), backed by a
//! plain wall-clock timer instead of statistical sampling.
//!
//! Under `cargo test` (no `--bench` flag) every routine runs exactly once
//! as a smoke test; under `cargo bench` each routine is timed adaptively
//! and a `ns/iter` line is printed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-target measurement budget in bench mode.
const BENCH_BUDGET: Duration = Duration::from_millis(20);

/// Entry point object handed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    bench_mode: bool,
    benches_run: u32,
}

impl Criterion {
    /// Builds a harness from the process arguments; cargo passes
    /// `--bench` when invoked via `cargo bench` and `--test` via
    /// `cargo test`.
    #[must_use]
    pub fn from_args() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            bench_mode,
            benches_run: 0,
        }
    }

    /// Registers and immediately runs one benchmark routine.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, |b| routine(b));
        self
    }

    /// Opens a named group; the group is purely a label prefix here.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }

    /// Prints a closing line in bench mode.
    pub fn final_summary(&self) {
        if self.bench_mode {
            println!("criterion-lite: {} benchmarks measured", self.benches_run);
        }
    }

    fn run_one(&mut self, name: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        if self.bench_mode {
            // Grow the iteration count until the routine fills the budget.
            loop {
                routine(&mut bencher);
                if bencher.elapsed >= BENCH_BUDGET || bencher.iterations >= u64::MAX / 2 {
                    break;
                }
                bencher.iterations *= 2;
            }
            let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iterations.max(1));
            println!(
                "bench {name}: {per_iter} ns/iter ({} iters)",
                bencher.iterations
            );
        } else {
            // Test mode: one pass proves the routine doesn't panic.
            routine(&mut bencher);
        }
        self.benches_run += 1;
    }
}

/// A labelled sub-collection of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a routine parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        self.parent.run_one(&label, |b| routine(b, input));
        self
    }

    /// Runs an unparameterised routine inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.parent.run_one(&label, |b| routine(b));
        self
    }

    /// Ends the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus a parameter rendered into the label.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Label from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this pass's iteration count.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions under one group function, mirroring the
/// real macro's `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_routine_once() {
        let mut c = Criterion {
            bench_mode: false,
            benches_run: 0,
        };
        let mut calls = 0;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
        assert_eq!(c.benches_run, 1);
    }

    #[test]
    fn groups_prefix_labels_and_run() {
        let mut c = Criterion {
            bench_mode: false,
            benches_run: 0,
        };
        let mut group = c.benchmark_group("g");
        let mut hits = 0;
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &n| {
            b.iter(|| hits += n);
        });
        group.finish();
        assert_eq!(hits, 3);
    }
}
