//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors an API-compatible subset of `rand 0.8` (the parts
//! the workspace actually uses): [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], [`distributions::Standard`], and
//! [`distributions::Distribution`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic, portable, and statistically strong enough
//! for every simulation and test in this workspace. It does **not**
//! reproduce the upstream ChaCha12 output stream; the workspace never
//! depends on upstream byte sequences, only on same-seed reproducibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{DistIter, Distribution, Standard};

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a random value of type `T` via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Returns a uniformly distributed value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard.sample(self);
        u < p
    }

    /// Converts this RNG into an iterator of samples from `dist`.
    fn sample_iter<T, D>(self, dist: D) -> DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        dist.sample_iter(self)
    }

    /// Samples a single value from `dist`.
    fn sample<T, D: Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// output streams.
    fn seed_from_u64(state: u64) -> Self;
}

pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&y));
            let z = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn sample_iter_draws_from_standard() {
        let r = StdRng::seed_from_u64(17);
        let xs: Vec<u64> = r.sample_iter(Standard).take(4).collect();
        let ys: Vec<u64> = StdRng::seed_from_u64(17)
            .sample_iter(Standard)
            .take(4)
            .collect();
        assert_eq!(xs, ys);
    }
}
