//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
/// seeded through SplitMix64. Deterministic and portable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(mut seed: u64) -> Self {
        // SplitMix64 seed expansion, as recommended by the xoshiro authors.
        let mut s = [0u64; 4];
        for slot in &mut s {
            seed = splitmix64(seed);
            *slot = seed;
        }
        // A xoshiro state of all zeros is a fixed point; the expansion
        // above cannot produce it for any input, but keep the guard local
        // and explicit.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng::from_state(state)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Alias kept for API compatibility; same generator as [`StdRng`].
pub type SmallRng = StdRng;
