//! Sequence helpers (`choose`, `shuffle`) as in `rand::seq`.

use crate::{Rng, RngCore};

/// Extension methods on slices for random selection and shuffling.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns a uniformly random element, or `None` for an empty slice.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
