//! Distributions over random sources.

use crate::RngCore;

/// A distribution that can produce values of type `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;

    /// Converts `rng` into an iterator of samples.
    fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
    where
        R: RngCore,
        Self: Sized,
    {
        DistIter {
            dist: self,
            rng,
            _marker: core::marker::PhantomData,
        }
    }
}

/// Iterator over samples from a distribution (see
/// [`Distribution::sample_iter`]).
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    dist: D,
    rng: R,
    _marker: core::marker::PhantomData<fn() -> T>,
}

impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.dist.sample(&mut self.rng))
    }
}

/// The "natural" distribution for a type: uniform over all values for
/// integers and `bool`, uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform range sampling (the machinery behind `Rng::gen_range`).
pub mod uniform {
    use crate::RngCore;
    use core::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Samples uniformly from `[lo, hi)`; `hi` is exclusive.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        /// Samples uniformly from `[lo, hi]`; `hi` is inclusive.
        fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }

    /// Range shapes accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "gen_range: empty inclusive range");
            T::sample_closed(rng, lo, hi)
        }
    }

    /// Draws a uniform value in `[0, span)` by widening multiplication
    /// (Lemire's method without the rejection step; bias is at most
    /// `span / 2^64`, far below anything the workspace's statistical
    /// tests can resolve).
    fn mul_shift(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
        ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    let span = (hi as i128 - lo as i128) as u64;
                    let off = mul_shift(rng, span);
                    ((lo as i128) + off as i128) as $t
                }
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u128::from(u64::MAX) {
                        // Full-width range: every u64 value is valid.
                        return rng.next_u64() as $t;
                    }
                    let off = mul_shift(rng, span as u64);
                    ((lo as i128) + off as i128) as $t
                }
            }
        )*};
    }

    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    let unit = (rng.next_u64() >> 11) as $t
                        * (1.0 / (1u64 << 53) as $t);
                    lo + unit * (hi - lo)
                }
                fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    Self::sample_half_open(rng, lo, hi)
                }
            }
        )*};
    }

    impl_uniform_float!(f32, f64);
}
