//! Serde round-trips for every serializable public type that experiments
//! persist or print as JSON — configs, records, metrics. A type that
//! can't survive `to_json → from_json` silently corrupts saved results.

use human_computation::prelude::*;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn ids_and_labels_round_trip() {
    let p = PlayerId::new(42);
    assert_eq!(roundtrip(&p), p);
    let t = TaskId::new(7);
    assert_eq!(roundtrip(&t), t);
    let l = Label::new("Hot Dogs!");
    assert_eq!(roundtrip(&l), l);
    assert_eq!(roundtrip(&l).as_str(), "hot dog");
}

#[test]
fn answers_round_trip() {
    for a in [
        Answer::text("dog"),
        Answer::verdict(true),
        Answer::Region(Region::new(1, 2, 3, 4)),
        Answer::Choice(9),
        Answer::Pass,
    ] {
        assert_eq!(roundtrip(&a), a);
    }
}

#[test]
fn sim_time_types_round_trip() {
    let t = SimTime::from_secs_f64(1.234567);
    assert_eq!(roundtrip(&t), t);
    let d = SimDuration::from_millis(987);
    assert_eq!(roundtrip(&d), d);
}

#[test]
fn configs_round_trip() {
    let pc = PlatformConfig::default();
    let back = roundtrip(&pc);
    assert_eq!(back, pc);

    let sc = SessionConfig::default();
    assert_eq!(roundtrip(&sc), sc);

    let mc = MatchmakerConfig::default();
    assert_eq!(roundtrip(&mc), mc);

    let rule = ScoreRule::default();
    assert_eq!(roundtrip(&rule), rule);
}

#[test]
fn records_round_trip() {
    let record = RoundRecord {
        template: TemplateKind::InputAgreement,
        task: TaskId::new(3),
        matched: true,
        candidate_outputs: 2,
        duration: SimDuration::from_secs(12),
        points: [130, 130],
    };
    assert_eq!(roundtrip(&record), record);

    let transcript = SessionTranscript {
        id: SessionId::new(1),
        players: [PlayerId::new(1), PlayerId::new(2)],
        started: SimTime::ZERO,
        ended: SimTime::from_secs(100),
        records: vec![record],
        total_points: [130, 130],
    };
    assert_eq!(roundtrip(&transcript), transcript);
}

#[test]
fn verified_labels_and_metrics_round_trip() {
    let v = VerifiedLabel {
        task: TaskId::new(1),
        label: Label::new("sky"),
        promoted_by: (PlayerId::new(1), PlayerId::new(2)),
        at: SimTime::from_secs(55),
    };
    assert_eq!(roundtrip(&v), v);

    let mut ledger = ContributionLedger::new();
    ledger.record_play(PlayerId::new(1), SimDuration::from_hours(1));
    ledger.record_outputs(10);
    let m = ledger.metrics();
    let back = roundtrip(&m);
    assert_eq!(back, m);
}

#[test]
fn captcha_types_round_trip() {
    let cfg = ReCaptchaConfig::default();
    let back: ReCaptchaConfig = roundtrip(&cfg);
    assert_eq!(back, cfg);

    let c = Captcha::new(vec!["alpha".into(), "beta".into()], 0.7, 1);
    let back: Captcha = roundtrip(&c);
    assert_eq!(back, c);
    assert_eq!(
        back.check(&["alpha".into(), "beta".into()]),
        CaptchaOutcome::Pass
    );
}

#[test]
fn crowd_models_round_trip() {
    let b = Behavior::Noisy { error_rate: 0.25 };
    assert_eq!(roundtrip(&b), b);
    let b = Behavior::spammer([Label::new("x"), Label::new("y")]);
    assert_eq!(roundtrip(&b), b);

    // JSON float text can differ from the original by one ULP; compare
    // within tolerance.
    let e = EngagementModel::esp_calibrated();
    let back = roundtrip(&e);
    assert!((back.session_mu - e.session_mu).abs() < 1e-12);
    assert!((back.session_sigma - e.session_sigma).abs() < 1e-12);
    assert!((back.churn_rate - e.churn_rate).abs() < 1e-12);

    let r = ResponseTimeModel::fast();
    assert_eq!(roundtrip(&r), r);

    let d = SkillDynamics::default();
    let back = roundtrip(&d);
    assert_eq!(back, d);
}

#[test]
fn deserialized_behaviour_still_behaves() {
    use rand::SeedableRng;
    // A behaviour that crossed a serialization boundary must keep its
    // internal state semantics (spammer cursor resumes cycling).
    let mut original = Behavior::spammer([Label::new("a"), Label::new("b")]);
    let truth = LabelDistribution::uniform(vec![Label::new("z")]).unwrap();
    let vocab = Vocabulary::new(10, 1.0);
    let taboo = TabooList::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let _ = original.next_answer(&truth, &vocab, &taboo, &mut rng); // cursor -> 1
    let mut restored: Behavior = roundtrip(&original);
    assert_eq!(
        restored.next_answer(&truth, &vocab, &taboo, &mut rng),
        Answer::Text(Label::new("b")),
        "cursor state survives serialization"
    );
}
