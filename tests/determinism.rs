//! Reproducibility: every simulation in the workspace is a pure function
//! of its seed. These tests pin that property across crate boundaries —
//! the foundation every number in EXPERIMENTS.md rests on.

use human_computation::prelude::*;
use rand::SeedableRng;

#[test]
fn esp_campaigns_are_bit_identical_per_seed() {
    let run = |seed: u64| {
        let mut config = EspCampaignConfig::small();
        config.players = 24;
        config.horizon = SimTime::from_secs(3_600);
        let mut c = EspCampaign::new(config, seed);
        let r = c.run();
        (
            r.metrics.total_outputs,
            r.live_sessions,
            r.replay_sessions,
            r.precision,
            r.matchmaker.live_pairs,
        )
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6), "different seeds should diverge");
}

/// The regression locked in by the BTreeMap conversion in `hc-core`:
/// label-store snapshots of two same-seed runs must be *byte*-identical,
/// not merely equal as multisets. Iterating a `HashMap` anywhere on the
/// serving or verification path would scramble insertion order between
/// processes and break this.
#[test]
fn same_seed_runs_emit_byte_identical_label_snapshots() {
    let snapshot = |seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut cfg = WorldConfig::small();
        cfg.stimuli = 120;
        let world = EspWorld::generate(&cfg, &mut rng);
        let mut platform = Platform::new(PlatformConfig::default()).expect("valid config");
        world.register_tasks(&mut platform);
        let mut pop = PopulationBuilder::new(8)
            .mix(ArchetypeMix::realistic())
            .build(&mut rng);
        for _ in 0..8 {
            platform.register_player();
        }
        for s in 0..60u64 {
            let a = PlayerId::new(s % 8);
            let b = PlayerId::new((s + 1 + s / 8) % 8);
            let b = if a == b {
                PlayerId::new((b.raw() + 1) % 8)
            } else {
                b
            };
            play_esp_session(
                &mut platform,
                &world,
                &mut pop,
                SessionParams::pair(a, b, SessionId::new(s), SimTime::from_secs(s * 500)),
                &mut rng,
            );
        }
        serde_json::to_string(platform.verified_labels()).expect("serializable labels")
    };
    let a = snapshot(17);
    let b = snapshot(17);
    assert!(!a.is_empty() && a != "[]", "campaign produced no labels");
    assert_eq!(a, b, "same-seed label snapshots differ byte-for-byte");
}

#[test]
fn recaptcha_pipelines_are_deterministic() {
    let run = |seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let corpus = ScannedCorpus::generate(500, 0.0, 0.1, &mut rng);
        let service = ReCaptcha::new(
            corpus,
            OcrEngine::commercial(),
            ReCaptchaConfig::default(),
            &mut rng,
        );
        let mut pipeline = DigitizationPipeline::new(
            service,
            HumanReader::typical(),
            0.2,
            OcrEngine::commercial(),
        );
        pipeline.run(5_000, &mut rng);
        let p = pipeline.progress();
        (
            p.answers,
            p.digitized_fraction.to_bits(),
            p.digitized_accuracy.to_bits(),
        )
    };
    assert_eq!(run(9), run(9));
}

#[test]
fn worlds_and_populations_are_deterministic() {
    let mk_world = |seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        EspWorld::generate(&WorldConfig::small(), &mut rng)
    };
    let a = mk_world(3);
    let b = mk_world(3);
    for t in 0..a.len() {
        let ta = a.truth_for_task(TaskId::new(t as u64)).unwrap();
        let tb = b.truth_for_task(TaskId::new(t as u64)).unwrap();
        assert_eq!(ta.labels(), tb.labels());
    }

    let mk_pop = |seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        PopulationBuilder::new(50).build(&mut rng)
    };
    assert_eq!(mk_pop(4).players(), mk_pop(4).players());
}

#[test]
fn rng_factory_streams_are_stable_across_calls() {
    use rand::Rng;
    let f = RngFactory::new(1234);
    let first: Vec<u64> = (0..4)
        .map(|i| f.indexed_stream("worker", i).gen::<u64>())
        .collect();
    let second: Vec<u64> = (0..4)
        .map(|i| f.indexed_stream("worker", i).gen::<u64>())
        .collect();
    assert_eq!(first, second);
    // All four streams distinct.
    let mut sorted = first.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 4);
}

#[test]
fn aggregation_is_deterministic_given_the_matrix() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let world = SyntheticCrowd::new(100, 3, 15, 0.7)
        .with_adversarial_share(0.2)
        .generate(5, &mut rng);
    let a = DawidSkene::default().aggregate(&world.matrix);
    let b = DawidSkene::default().aggregate(&world.matrix);
    assert_eq!(a, b);
}
