//! Property-based tests over the workspace's core invariants.

use human_computation::core::text::{fuzzy_agree, levenshtein, normalize_label, similarity};
use human_computation::prelude::*;
use proptest::prelude::*;

proptest! {
    // ---------- text ----------

    #[test]
    fn normalization_is_idempotent(s in ".{0,40}") {
        let once = normalize_label(&s);
        prop_assert_eq!(normalize_label(&once), once);
    }

    #[test]
    fn normalized_labels_are_lowercase_single_spaced(s in ".{0,40}") {
        let n = normalize_label(&s);
        prop_assert!(!n.contains("  "));
        prop_assert!(!n.starts_with(' ') && !n.ends_with(' '));
        // Only alphanumerics and single spaces survive, with no ASCII
        // uppercase (exotic caseless scripts are allowed through).
        prop_assert!(n.chars().all(|c| c.is_alphanumeric() || c == ' '));
        prop_assert!(!n.chars().any(|c| c.is_ascii_uppercase()));
    }

    #[test]
    fn levenshtein_is_a_metric(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        // identity
        prop_assert_eq!(levenshtein(&a, &a), 0);
        // symmetry
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // triangle inequality
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // bounded by longer length
        prop_assert!(levenshtein(&a, &b) <= a.len().max(b.len()));
    }

    #[test]
    fn similarity_is_bounded(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        let s = similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn fuzzy_agree_is_monotone_in_tolerance(a in "[a-z]{1,10}", b in "[a-z]{1,10}", k in 0usize..4) {
        if fuzzy_agree(&a, &b, k) {
            prop_assert!(fuzzy_agree(&a, &b, k + 1));
        }
    }

    // ---------- sim kernel ----------

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = hc_queue(&times);
        let mut last = None;
        while let Some((t, _)) = q.pop() {
            if let Some(prev) = last {
                prop_assert!(t >= prev);
            }
            last = Some(t);
        }
    }

    #[test]
    fn sim_time_arithmetic_never_underflows(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let ta = SimTime::from_ticks(a);
        let tb = SimTime::from_ticks(b);
        let d = ta - tb;
        prop_assert_eq!(d.ticks(), a.saturating_sub(b));
    }

    #[test]
    fn online_stats_match_two_pass(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut s = OnlineStats::new();
        for &v in &values {
            s.push(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert_eq!(s.count(), values.len() as u64);
    }

    // ---------- verification ----------

    #[test]
    fn agreement_promotion_is_monotone_in_support(
        threshold in 1u32..6,
        pairs in prop::collection::vec((0u64..50, 50u64..100), 1..40),
    ) {
        let mut tracker = AgreementTracker::new(threshold);
        let task = TaskId::new(1);
        let label = Label::new("x");
        let mut promoted_at = None;
        for (i, (a, b)) in pairs.iter().enumerate() {
            let newly = tracker.record(task, label.clone(), PlayerId::new(*a), PlayerId::new(*b));
            if newly {
                prop_assert!(promoted_at.is_none(), "promoted twice");
                promoted_at = Some(i);
                prop_assert!(tracker.support(task, &label) >= threshold);
            }
        }
        // Once promoted, stays promoted.
        if promoted_at.is_some() {
            prop_assert!(tracker.is_promoted(task, &label));
        } else {
            prop_assert!(tracker.support(task, &label) < threshold);
        }
    }

    #[test]
    fn taboo_list_contains_what_was_inserted(words in prop::collection::vec("[a-z]{1,8}", 0..20)) {
        let mut list = TabooList::new();
        for w in &words {
            list.insert(Label::new(w));
        }
        for w in &words {
            prop_assert!(list.contains(&Label::new(w)));
            prop_assert!(list.contains(&Label::new(&w.to_uppercase())));
        }
    }

    // ---------- scoring ----------

    #[test]
    fn round_scores_are_bounded_and_participation_paid(
        matched in any::<bool>(),
        secs in 0.0f64..400.0,
        streak in 0u32..1000,
    ) {
        let rule = ScoreRule::default();
        let pts = rule.round_score(matched, secs, streak);
        prop_assert!(pts >= rule.round_points);
        let max = rule.round_points + rule.match_points + rule.max_streak_bonus + rule.fast_bonus;
        prop_assert!(pts <= max);
        if !matched {
            prop_assert_eq!(pts, rule.round_points);
        }
    }

    // ---------- output-agreement round ----------

    #[test]
    fn rounds_terminate_exactly_once(
        guesses in prop::collection::vec(("[a-z]{1,6}", any::<bool>()), 1..30),
    ) {
        let mut round = OutputAgreementRound::new(
            TaskId::new(1),
            TabooList::default(),
            SimDuration::from_secs(1_000),
        );
        let mut terminal_seen = false;
        for (i, (word, left)) in guesses.iter().enumerate() {
            let seat = if *left { Seat::Left } else { Seat::Right };
            let at = SimTime::from_secs(i as u64);
            let outcome = round.submit(seat, Answer::text(word), at);
            if terminal_seen {
                prop_assert_eq!(outcome, SubmitOutcome::RoundOver);
            } else if outcome.is_terminal() {
                terminal_seen = true;
                prop_assert!(round.is_over());
            }
        }
        // finish() is always safe and consistent with the match state.
        let result = round.finish(SimTime::from_secs(2_000));
        prop_assert_eq!(result.is_match(), result.agreed_label.is_some());
    }

    #[test]
    fn matched_label_was_guessed_by_both_seats(
        left in prop::collection::vec("[a-d]{1,2}", 1..8),
        right in prop::collection::vec("[a-d]{1,2}", 1..8),
    ) {
        let mut round = OutputAgreementRound::new(
            TaskId::new(1),
            TabooList::default(),
            SimDuration::from_secs(1_000),
        );
        let mut t = 0u64;
        for w in &left {
            round.submit(Seat::Left, Answer::text(w), SimTime::from_secs(t));
            t += 1;
        }
        for w in &right {
            round.submit(Seat::Right, Answer::text(w), SimTime::from_secs(t));
            t += 1;
        }
        let result = round.finish(SimTime::from_secs(t));
        if let Some(agreed) = &result.agreed_label {
            let norm_left: Vec<String> = left.iter().map(|w| normalize_label(w)).collect();
            let norm_right: Vec<String> = right.iter().map(|w| normalize_label(w)).collect();
            prop_assert!(norm_left.contains(&agreed.as_str().to_string()));
            prop_assert!(norm_right.contains(&agreed.as_str().to_string()));
        }
    }

    // ---------- metrics ----------

    #[test]
    fn contribution_identity_holds(
        plays in prop::collection::vec((0u64..100, 1u64..10_000), 1..30),
        outputs in 0u64..100_000,
    ) {
        let mut ledger = ContributionLedger::new();
        for (player, secs) in &plays {
            ledger.record_play(PlayerId::new(*player), SimDuration::from_secs(*secs));
        }
        ledger.record_outputs(outputs);
        let m = ledger.metrics();
        prop_assert!(
            (m.expected_contribution - m.throughput_per_human_hour * m.alp_hours).abs()
                < 1e-9 * (1.0 + m.expected_contribution.abs())
        );
        prop_assert!(m.alp_hours >= 0.0);
        prop_assert!(m.throughput_per_human_hour >= 0.0);
    }

    // ---------- region geometry ----------

    #[test]
    fn iou_is_symmetric_and_bounded(
        ax in 0u32..500, ay in 0u32..500, aw in 1u32..200, ah in 1u32..200,
        bx in 0u32..500, by in 0u32..500, bw in 1u32..200, bh in 1u32..200,
    ) {
        let a = Region::new(ax, ay, aw, ah);
        let b = Region::new(bx, by, bw, bh);
        let iou = a.iou(&b);
        prop_assert!((0.0..=1.0).contains(&iou));
        prop_assert!((iou - b.iou(&a)).abs() < 1e-12);
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-12);
        // Intersection area never exceeds either operand's area.
        if let Some(i) = a.intersect(&b) {
            prop_assert!(i.area() <= a.area());
            prop_assert!(i.area() <= b.area());
        }
    }
}

/// Helper: builds an event queue from raw tick times.
fn hc_queue(times: &[u64]) -> EventQueue<usize> {
    let mut q = EventQueue::new();
    for (i, &t) in times.iter().enumerate() {
        q.push(SimTime::from_ticks(t), i);
    }
    q
}
