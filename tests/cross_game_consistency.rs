//! Cross-game consistency: all five games drive the same platform
//! pipeline and the same metrics accounting, so invariants that hold for
//! one template must hold for all.

use human_computation::prelude::*;
use rand::SeedableRng;

const PLAYERS: usize = 10;

fn pair(s: u64) -> (PlayerId, PlayerId) {
    let a = PlayerId::new((2 * s) % PLAYERS as u64);
    let mut b = PlayerId::new((2 * s + 1 + s / PLAYERS as u64) % PLAYERS as u64);
    if a == b {
        b = PlayerId::new((b.raw() + 1) % PLAYERS as u64);
    }
    (a, b)
}

fn fresh(seed: u64) -> (Platform, Population, rand::rngs::StdRng) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut platform = Platform::new(PlatformConfig {
        gold_injection_rate: 0.0,
        ..PlatformConfig::default()
    })
    .expect("valid config");
    let pop = PopulationBuilder::new(PLAYERS)
        .mix(ArchetypeMix::all_honest())
        .skill_range(0.85, 0.95)
        .build(&mut rng);
    for _ in 0..PLAYERS {
        platform.register_player();
    }
    (platform, pop, rng)
}

/// Invariants every game session must maintain.
fn check_transcript(t: &SessionTranscript, platform: &Platform) {
    assert!(t.rounds() <= platform.config().session.max_rounds as usize);
    assert!(t.ended >= t.started);
    assert_eq!(t.total_points.len(), 2);
    for r in &t.records {
        assert!(r.duration <= platform.config().session.round_time_limit);
        if !r.matched {
            // Participation-only points on unmatched rounds.
            assert_eq!(r.points[0], platform.score_rule().round_points);
        }
    }
}

#[test]
fn esp_sessions_respect_shared_invariants() {
    let (mut platform, mut pop, mut rng) = fresh(1);
    let world = EspWorld::generate(&WorldConfig::small(), &mut rng);
    // Register AFTER platform exists but worlds must come first for id
    // mapping — rebuild the platform to keep the mapping contract.
    let mut platform2 = Platform::new(*platform.config()).unwrap();
    world.register_tasks(&mut platform2);
    for _ in 0..PLAYERS {
        platform2.register_player();
    }
    platform = platform2;
    for s in 0..5 {
        let (a, b) = pair(s);
        let t = play_esp_session(
            &mut platform,
            &world,
            &mut pop,
            SessionParams::pair(a, b, SessionId::new(s), SimTime::from_secs(s * 1_000)),
            &mut rng,
        );
        check_transcript(&t, &platform);
    }
    assert_eq!(platform.metrics().player_count as usize, PLAYERS.min(10));
}

#[test]
fn tagatune_sessions_respect_shared_invariants() {
    let (mut platform, mut pop, mut rng) = fresh(2);
    let world = TagATuneWorld::generate(&WorldConfig::small(), &mut rng);
    world.register_tasks(&mut platform);
    for s in 0..5 {
        let (a, b) = pair(s);
        let t = play_tagatune_session(
            &mut platform,
            &world,
            &mut pop,
            a,
            b,
            SessionId::new(s),
            SimTime::from_secs(s * 1_000),
            0.5,
            &mut rng,
        );
        check_transcript(&t, &platform);
    }
}

#[test]
fn verbosity_sessions_respect_shared_invariants() {
    let (mut platform, mut pop, mut rng) = fresh(3);
    let world = VerbosityWorld::generate(&WorldConfig::small(), &mut rng);
    world.register_tasks(&mut platform);
    for s in 0..5 {
        let (a, b) = pair(s);
        let t = play_verbosity_session(
            &mut platform,
            &world,
            &mut pop,
            a,
            b,
            SessionId::new(s),
            SimTime::from_secs(s * 1_000),
            &mut rng,
        );
        check_transcript(&t, &platform);
    }
}

#[test]
fn peekaboom_sessions_respect_shared_invariants() {
    let (mut platform, mut pop, mut rng) = fresh(4);
    let world = PeekaboomWorld::generate(&WorldConfig::small(), &mut rng);
    world.register_tasks(&mut platform);
    for s in 0..5 {
        let (a, b) = pair(s);
        let (t, out) = play_peekaboom_session(
            &mut platform,
            &world,
            &mut pop,
            a,
            b,
            SessionId::new(s),
            SimTime::from_secs(s * 1_000),
            &mut rng,
        );
        check_transcript(&t, &platform);
        for (_, region, iou) in &out.locations {
            assert!(region.area() > 0);
            assert!((0.0..=1.0).contains(iou));
        }
    }
}

#[test]
fn matchin_sessions_respect_shared_invariants() {
    let (mut platform, mut pop, mut rng) = fresh(5);
    let mut cfg = WorldConfig::small();
    cfg.stimuli = 40;
    let world = MatchinWorld::generate(&cfg, &mut rng);
    let mut ranking = BradleyTerryRanking::new(world.len());
    for s in 0..5 {
        let (a, b) = pair(s);
        let t = play_matchin_session(
            &mut platform,
            &world,
            &mut pop,
            a,
            b,
            SessionId::new(s),
            SimTime::from_secs(s * 1_000),
            &mut ranking,
            &mut rng,
        );
        check_transcript(&t, &platform);
    }
    assert!(ranking.comparisons() > 0.0);
}

#[test]
fn ledger_time_accounting_is_consistent_across_games() {
    // Play one session of each game on one platform family and verify the
    // ledger counts two player-sides of wall time per session.
    let (mut platform, mut pop, mut rng) = fresh(6);
    let world = TagATuneWorld::generate(&WorldConfig::small(), &mut rng);
    world.register_tasks(&mut platform);
    let (a, b) = pair(0);
    let t = play_tagatune_session(
        &mut platform,
        &world,
        &mut pop,
        a,
        b,
        SessionId::new(0),
        SimTime::ZERO,
        0.5,
        &mut rng,
    );
    let expected_hours = t.duration().as_hours_f64() * 2.0;
    assert!(
        (platform.metrics().total_human_hours - expected_hours).abs() < 1e-9,
        "ledger hours {} vs session duration × 2 = {}",
        platform.metrics().total_human_hours,
        expected_hours
    );
}
