//! Edge-case and failure-injection tests: degenerate configurations must
//! degrade gracefully, never panic or hang.

use human_computation::prelude::*;
use rand::SeedableRng;

#[test]
fn campaign_with_zero_horizon_does_nothing() {
    let mut config = EspCampaignConfig::small();
    config.horizon = SimTime::ZERO;
    let mut campaign = EspCampaign::new(config, 1);
    let report = campaign.run();
    assert_eq!(report.live_sessions, 0);
    assert_eq!(report.metrics.total_outputs, 0);
}

#[test]
fn campaign_with_one_player_only_meets_replay_bots() {
    let mut config = EspCampaignConfig::small();
    config.players = 1;
    config.horizon = SimTime::from_secs(1800);
    let mut campaign = EspCampaign::new(config, 2);
    let report = campaign.run();
    assert_eq!(report.live_sessions, 0, "nobody to pair with");
    // With no recordings either, replay sessions still run (seeding mode)
    // but cannot verify anything against a prior human.
    assert_eq!(report.precision.1, 0);
}

#[test]
fn session_with_exhausted_task_queue_ends_cleanly() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut cfg = WorldConfig::small();
    cfg.stimuli = 1; // one image only
    let world = EspWorld::generate(&cfg, &mut rng);
    let mut platform = Platform::new(PlatformConfig {
        gold_injection_rate: 0.0,
        ..PlatformConfig::default()
    })
    .unwrap();
    world.register_tasks(&mut platform);
    let mut pop = PopulationBuilder::new(2)
        .mix(ArchetypeMix::all_honest())
        .build(&mut rng);
    platform.register_player();
    platform.register_player();
    let t = play_esp_session(
        &mut platform,
        &world,
        &mut pop,
        SessionParams::pair(
            PlayerId::new(0),
            PlayerId::new(1),
            SessionId::new(0),
            SimTime::ZERO,
        ),
        &mut rng,
    );
    assert_eq!(t.rounds(), 1, "one task, one round, clean stop");
}

#[test]
fn tiny_session_budgets_are_respected() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let world = EspWorld::generate(&WorldConfig::small(), &mut rng);
    let mut platform = Platform::new(PlatformConfig {
        gold_injection_rate: 0.0,
        session: SessionConfig {
            max_rounds: 1,
            session_time_limit: SimDuration::from_secs(5),
            round_time_limit: SimDuration::from_secs(5),
            ..SessionConfig::default()
        },
        ..PlatformConfig::default()
    })
    .unwrap();
    world.register_tasks(&mut platform);
    let mut pop = PopulationBuilder::new(2)
        .mix(ArchetypeMix::all_honest())
        .build(&mut rng);
    platform.register_player();
    platform.register_player();
    let t = play_esp_session(
        &mut platform,
        &world,
        &mut pop,
        SessionParams::pair(
            PlayerId::new(0),
            PlayerId::new(1),
            SessionId::new(0),
            SimTime::ZERO,
        ),
        &mut rng,
    );
    assert!(t.rounds() <= 1);
}

#[test]
fn completion_threshold_drains_the_world() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut cfg = WorldConfig::small();
    cfg.stimuli = 10;
    let world = EspWorld::generate(&cfg, &mut rng);
    let mut platform = Platform::new(PlatformConfig {
        gold_injection_rate: 0.0,
        task_completion_threshold: 1,
        ..PlatformConfig::default()
    })
    .unwrap();
    world.register_tasks(&mut platform);
    let mut pop = PopulationBuilder::new(2)
        .mix(ArchetypeMix::all_honest())
        .build(&mut rng);
    platform.register_player();
    platform.register_player();
    for s in 0..20u64 {
        play_esp_session(
            &mut platform,
            &world,
            &mut pop,
            SessionParams::pair(
                PlayerId::new(0),
                PlayerId::new(1),
                SessionId::new(s),
                SimTime::from_secs(s * 1_000),
            ),
            &mut rng,
        );
        if platform.tasks().completed_count() == 10 {
            break;
        }
    }
    assert_eq!(platform.tasks().completed_count(), 10, "world should drain");
    // Once drained, sessions end immediately with zero rounds.
    let t = play_esp_session(
        &mut platform,
        &world,
        &mut pop,
        SessionParams::pair(
            PlayerId::new(0),
            PlayerId::new(1),
            SessionId::new(999),
            SimTime::from_secs(10_000_000),
        ),
        &mut rng,
    );
    assert_eq!(t.rounds(), 0);
}

#[test]
fn empty_recaptcha_corpus_is_a_noop_service() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let corpus = ScannedCorpus::generate(0, 0.0, 1.0, &mut rng);
    let mut service = ReCaptcha::new(
        corpus,
        OcrEngine::commercial(),
        ReCaptchaConfig::default(),
        &mut rng,
    );
    assert!(service.issue(&mut rng).is_none());
    let mut pipeline = DigitizationPipeline::new(
        service,
        HumanReader::typical(),
        0.0,
        OcrEngine::commercial(),
    );
    assert_eq!(pipeline.run(1_000, &mut rng), 0);
}

#[test]
fn all_spammer_crowd_verifies_almost_nothing_true() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let world = EspWorld::generate(&WorldConfig::small(), &mut rng);
    let mut platform = Platform::new(PlatformConfig {
        gold_injection_rate: 0.0,
        ..PlatformConfig::default()
    })
    .unwrap();
    world.register_tasks(&mut platform);
    let mix = ArchetypeMix::custom().with(
        Behavior::spammer([Label::new("spam1"), Label::new("spam2")]),
        1.0,
    );
    let mut pop = PopulationBuilder::new(2).mix(mix).build(&mut rng);
    platform.register_player();
    platform.register_player();
    play_esp_session(
        &mut platform,
        &world,
        &mut pop,
        SessionParams::pair(
            PlayerId::new(0),
            PlayerId::new(1),
            SessionId::new(0),
            SimTime::ZERO,
        ),
        &mut rng,
    );
    // Spammers agree with each other constantly — but never truthfully.
    let (correct, total) = world.verified_precision(&platform);
    assert_eq!(correct, 0, "spam labels are never true ({total} verified)");
}

#[test]
fn matchin_with_one_image_cannot_form_pairs() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let mut cfg = WorldConfig::small();
    cfg.stimuli = 1;
    let world = MatchinWorld::generate(&cfg, &mut rng);
    let mut platform = Platform::new(PlatformConfig::default()).unwrap();
    let mut pop = PopulationBuilder::new(2)
        .mix(ArchetypeMix::all_honest())
        .build(&mut rng);
    platform.register_player();
    platform.register_player();
    let mut ranking = BradleyTerryRanking::new(1);
    let t = play_matchin_session(
        &mut platform,
        &world,
        &mut pop,
        PlayerId::new(0),
        PlayerId::new(1),
        SessionId::new(0),
        SimTime::ZERO,
        &mut ranking,
        &mut rng,
    );
    assert_eq!(t.rounds(), 0, "needs >= 2 images");
    assert_eq!(ranking.comparisons(), 0.0);
}

#[test]
fn generic_campaign_with_zero_players_is_empty() {
    use human_computation::games::{Campaign, CampaignConfig, TagATuneDriver};
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let driver = TagATuneDriver::generate(&WorldConfig::small(), 0.5, &mut rng);
    let mut config = CampaignConfig::small();
    config.players = 0;
    let report = Campaign::new(driver, config, 9).run();
    assert_eq!(report.sessions, 0);
    assert_eq!(report.verified, 0);
}
