//! End-to-end reCAPTCHA tests: the paper's headline numbers as executable
//! assertions — ≥99% word accuracy with human agreement, OCR clearly
//! worse alone, bots filtered by the control word.

use human_computation::prelude::*;
use rand::SeedableRng;

fn book_corpus(n: usize, rng: &mut rand::rngs::StdRng) -> ScannedCorpus {
    // Book-scan quality: OCR reads most of it, fails on a material tail.
    ScannedCorpus::generate(n, 0.0, 0.05, rng)
}

#[test]
fn human_agreement_reaches_paper_accuracy() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let corpus = book_corpus(2_000, &mut rng);
    let service = ReCaptcha::new(
        corpus,
        OcrEngine::commercial(),
        ReCaptchaConfig::default(), // promote at 2.5 votes
        &mut rng,
    );
    let mut pipeline = DigitizationPipeline::new(
        service,
        HumanReader::typical(),
        0.0,
        OcrEngine::commercial(),
    );
    pipeline.run(100_000, &mut rng);
    let p = pipeline.progress();
    assert!(
        p.digitized_fraction > 0.3,
        "too few digitized: {}",
        p.digitized_fraction
    );
    assert!(
        p.digitized_accuracy >= 0.99,
        "human-digitized accuracy below the paper's 99% claim: {:.4}",
        p.digitized_accuracy
    );
}

#[test]
fn ocr_alone_is_clearly_worse_than_the_human_loop() {
    use human_computation::core::text::normalize_label;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let corpus = book_corpus(2_000, &mut rng);
    let ocr = OcrEngine::commercial();
    let ocr_correct = corpus
        .iter()
        .filter(|w| {
            normalize_label(&ocr.read(&w.truth, w.distortion, &mut rng))
                == normalize_label(&w.truth)
        })
        .count();
    let ocr_acc = ocr_correct as f64 / corpus.len() as f64;
    // Paper: standalone OCR ~80-84% on scanned books.
    assert!(
        (0.6..0.95).contains(&ocr_acc),
        "ocr accuracy {ocr_acc:.3} out of band"
    );

    let service = ReCaptcha::new(
        corpus,
        OcrEngine::commercial(),
        ReCaptchaConfig::default(),
        &mut rng,
    );
    let mut pipeline = DigitizationPipeline::new(
        service,
        HumanReader::typical(),
        0.0,
        OcrEngine::commercial(),
    );
    pipeline.run(100_000, &mut rng);
    let acc_with_humans = pipeline.progress().resolved_accuracy;
    assert!(
        acc_with_humans > ocr_acc,
        "human loop {acc_with_humans:.3} must beat OCR {ocr_acc:.3}"
    );
}

#[test]
fn bot_traffic_cannot_poison_the_transcription() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let corpus = book_corpus(800, &mut rng);
    let service = ReCaptcha::new(
        corpus,
        OcrEngine::commercial(),
        ReCaptchaConfig::default(),
        &mut rng,
    );
    // Half the traffic is an advanced OCR attacker.
    let mut pipeline = DigitizationPipeline::new(
        service,
        HumanReader::typical(),
        0.5,
        OcrEngine::advanced_attacker(),
    );
    pipeline.run(60_000, &mut rng);
    let p = pipeline.progress();
    assert!(
        p.digitized_accuracy >= 0.98,
        "bot traffic degraded accuracy to {:.4}",
        p.digitized_accuracy
    );
}

#[test]
fn higher_thresholds_cost_answers_but_not_accuracy() {
    let mut results = Vec::new();
    for votes in [1.0f64, 2.5, 4.0] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let corpus = book_corpus(1_000, &mut rng);
        let service = ReCaptcha::new(
            corpus,
            OcrEngine::commercial(),
            ReCaptchaConfig {
                promote_votes: votes,
                ..ReCaptchaConfig::default()
            },
            &mut rng,
        );
        let mut pipeline = DigitizationPipeline::new(
            service,
            HumanReader::typical(),
            0.0,
            OcrEngine::commercial(),
        );
        pipeline.run(60_000, &mut rng);
        let p = pipeline.progress();
        results.push((votes, p.answers, p.digitized_accuracy));
    }
    // Accuracy at 2.5 votes >= accuracy at 1 vote.
    assert!(results[1].2 >= results[0].2 - 1e-9, "{results:?}");
    // More votes require more answers to resolve the same corpus.
    assert!(results[2].1 >= results[1].1, "{results:?}");
}

#[test]
fn challenges_render_at_captcha_grade_distortion() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let corpus = book_corpus(200, &mut rng);
    let mut service = ReCaptcha::new(
        corpus,
        OcrEngine::commercial(),
        ReCaptchaConfig::default(),
        &mut rng,
    );
    for _ in 0..20 {
        let Some(ch) = service.issue(&mut rng) else {
            break;
        };
        // Even though the scans are clean, the rendered challenge is not —
        // otherwise bots would read the control straight off.
        assert!(ch.control_distortion >= 0.5, "control rendered too clean");
        assert!(ch.unknown_distortion >= ch.control_distortion - 1e-12);
    }
}
