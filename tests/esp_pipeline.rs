//! End-to-end ESP pipeline tests spanning hc-core, hc-crowd and hc-games:
//! verified-label quality, gold gating, replay verification, and the
//! taboo mechanism's coverage effect.

use human_computation::prelude::*;
use rand::SeedableRng;

const PLAYERS: usize = 20;

fn run_sessions(
    platform: &mut Platform,
    world: &EspWorld,
    pop: &mut Population,
    sessions: u64,
    rng: &mut rand::rngs::StdRng,
) {
    for s in 0..sessions {
        // Rotate every id through the left seat and sweep the partner
        // offset so all circular pairings occur; a fixed even/odd split
        // here would make some player subsets (e.g. colluders landing on
        // odd ids only) unable to ever meet each other.
        let a = PlayerId::new(s % PLAYERS as u64);
        let mut b = PlayerId::new((s + 1 + s / PLAYERS as u64) % PLAYERS as u64);
        if a == b {
            b = PlayerId::new((b.raw() + 1) % PLAYERS as u64);
        }
        play_esp_session(
            platform,
            world,
            pop,
            SessionParams::pair(a, b, SessionId::new(s), SimTime::from_secs(s * 1_000)),
            rng,
        );
    }
}

fn setup(
    mix: ArchetypeMix,
    config: PlatformConfig,
    seed: u64,
) -> (Platform, EspWorld, Population, rand::rngs::StdRng) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cfg = WorldConfig::standard();
    cfg.stimuli = 250;
    let world = EspWorld::generate(&cfg, &mut rng);
    let mut platform = Platform::new(config).expect("valid config");
    world.register_tasks(&mut platform);
    let pop = PopulationBuilder::new(PLAYERS).mix(mix).build(&mut rng);
    for _ in 0..PLAYERS {
        platform.register_player();
    }
    (platform, world, pop, rng)
}

#[test]
fn mixed_crowd_labels_exceed_paper_precision_claim() {
    let (mut platform, world, mut pop, mut rng) = setup(
        ArchetypeMix::realistic(),
        PlatformConfig {
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        },
        1,
    );
    run_sessions(&mut platform, &world, &mut pop, 80, &mut rng);
    let (correct, total) = world.verified_precision(&platform);
    assert!(total > 100, "campaign too small: {total} labels");
    let precision = correct as f64 / total as f64;
    // The paper reports >= 85% of ESP labels judged useful; the agreement
    // mechanism on a mixed crowd should clear that bar comfortably.
    assert!(precision >= 0.85, "precision {precision:.3}");
}

#[test]
fn higher_agreement_threshold_never_lowers_precision() {
    let mut results = Vec::new();
    for k in [1u32, 2, 3] {
        let (mut platform, world, mut pop, mut rng) = setup(
            ArchetypeMix::custom()
                .with(Behavior::Honest, 0.5)
                .with(Behavior::Noisy { error_rate: 0.4 }, 0.5),
            PlatformConfig {
                agreement_threshold: k,
                gold_injection_rate: 0.0,
                ..PlatformConfig::default()
            },
            7,
        );
        run_sessions(&mut platform, &world, &mut pop, 120, &mut rng);
        let (correct, total) = world.verified_precision(&platform);
        results.push((k, correct as f64 / total.max(1) as f64, total));
    }
    // Precision at k=3 must not fall below k=1 (small tolerance for the
    // shrinking sample).
    assert!(
        results[2].1 >= results[0].1 - 0.03,
        "precision not monotone-ish: {results:?}"
    );
    // Volume must shrink with k.
    assert!(
        results[0].2 > results[2].2,
        "k=3 should verify fewer: {results:?}"
    );
}

#[test]
fn gold_tasks_quarantine_bad_players() {
    let world_cfg = {
        let mut c = WorldConfig::standard();
        c.stimuli = 250;
        c
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let mut world = EspWorld::generate(&world_cfg, &mut rng);
    let mut platform = Platform::new(PlatformConfig {
        agreement_threshold: 1,
        gold_injection_rate: 0.3,
        gold_min_accuracy: 0.5,
        gold_min_evidence: 3,
        ..PlatformConfig::default()
    })
    .expect("valid config");
    world.register_tasks(&mut platform);
    world.register_gold_tasks(&mut platform, &world_cfg, 20, &mut rng);
    let mut pop = PopulationBuilder::new(PLAYERS)
        .mix(ArchetypeMix::with_colluders(0.7, 0.3, "zap"))
        .build(&mut rng);
    for _ in 0..PLAYERS {
        platform.register_player();
    }
    run_sessions(&mut platform, &world, &mut pop, 150, &mut rng);

    // Every colluder with enough gold exposure must be distrusted.
    let mut distrusted = 0;
    let mut exposed = 0;
    for p in pop.players().iter().filter(|p| p.is_adversarial()) {
        if let Some(r) = platform.gold().record(p.id) {
            if r.total() >= 3 {
                exposed += 1;
                if !platform.gold().is_trusted(p.id) {
                    distrusted += 1;
                }
            }
        }
    }
    assert!(exposed > 0, "no colluder ever saw a gold task");
    assert_eq!(distrusted, exposed, "exposed colluders must be distrusted");
    // Poison can only land during the cold-start window before colluders
    // accumulate `gold_min_evidence` exposures; after that the gate holds,
    // so the total poisoned share must stay marginal.
    let poison = Label::new("zap");
    let poisoned = platform
        .verified_labels()
        .iter()
        .filter(|v| v.label == poison)
        .count();
    let total = platform.verified_labels().len().max(1);
    // With 30% colluders and no gate at all, roughly 9% of pairings are
    // colluder-colluder and every one poisons; the gate must hold the
    // realized share well below that.
    assert!(
        (poisoned as f64) / (total as f64) < 0.06,
        "poison share too high: {poisoned}/{total}"
    );
    assert!(
        platform.rejected_agreements() > 0,
        "gate never rejected a distrusted agreement"
    );
}

#[test]
fn taboo_mechanism_deepens_coverage() {
    let run = |taboo: bool| {
        let (mut platform, world, mut pop, mut rng) = setup(
            ArchetypeMix::all_honest(),
            PlatformConfig {
                taboo_words_enabled: taboo,
                gold_injection_rate: 0.0,
                ..PlatformConfig::default()
            },
            21,
        );
        run_sessions(&mut platform, &world, &mut pop, 100, &mut rng);
        // Mean distinct verified labels per labeled task.
        let mut per_task: std::collections::HashMap<TaskId, std::collections::HashSet<&Label>> =
            std::collections::HashMap::new();
        for v in platform.verified_labels() {
            per_task.entry(v.task).or_default().insert(&v.label);
        }
        let total_distinct: usize = per_task.values().map(|s| s.len()).sum();
        (total_distinct, per_task.len())
    };
    let (with_taboo, _) = run(true);
    let (without_taboo, _) = run(false);
    assert!(
        with_taboo > without_taboo,
        "taboo should deepen distinct coverage: {with_taboo} vs {without_taboo}"
    );
}

#[test]
fn replay_fallback_preserves_label_quality() {
    let (mut platform, world, mut pop, mut rng) = setup(
        ArchetypeMix::all_honest(),
        PlatformConfig {
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        },
        33,
    );
    // Seed recordings with live sessions.
    run_sessions(&mut platform, &world, &mut pop, 30, &mut rng);
    let live_labels = platform.verified_labels().len();
    // Lone players verify against recordings.
    for s in 0..30u64 {
        let p = PlayerId::new(s % PLAYERS as u64);
        play_esp_replay_session(
            &mut platform,
            &world,
            &mut pop,
            SessionParams::solo(
                p,
                SessionId::new(1_000 + s),
                SimTime::from_secs(100_000 + s * 1_000),
            ),
            &mut rng,
        );
    }
    let (correct, total) = world.verified_precision(&platform);
    assert!(
        total > live_labels,
        "replay sessions should add verified labels ({total} vs {live_labels})"
    );
    assert!(
        correct as f64 / total as f64 > 0.9,
        "replay-verified precision degraded: {correct}/{total}"
    );
}
