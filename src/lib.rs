//! # human-computation
//!
//! A Games-With-A-Purpose (GWAP) human-computation platform in Rust — a
//! from-scratch reproduction of the systems surveyed by the invited paper
//! *"Human Computation"* (DAC 2009): the three GWAP templates
//! (output-agreement / input-agreement / inversion-problem), the deployed
//! games built on them (ESP Game, TagATune, Verbosity, Peekaboom,
//! Matchin), CAPTCHA and the book-digitizing reCAPTCHA protocol, the
//! verification and anti-cheat mechanisms, and the paper's GWAP metrics
//! (throughput, ALP, expected contribution) — all driven by a
//! deterministic simulated crowd.
//!
//! This facade crate re-exports the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `hc-core` | templates, sessions, scoring, verification, anti-cheat, metrics, platform |
//! | [`crowd`] | `hc-crowd` | simulated players: behaviours, skill, engagement (ALP), latency |
//! | [`games`] | `hc-games` | ESP, TagATune, Verbosity, Peekaboom, Matchin + synthetic worlds |
//! | [`captcha`] | `hc-captcha` | CAPTCHA, OCR attacker, human reader, reCAPTCHA digitization |
//! | [`aggregate`] | `hc-aggregate` | majority/weighted voting, agreement threshold, Dawid–Skene EM |
//! | [`serve`] | `hc-serve` | task-lifecycle service: request/response state machine + socket front |
//! | [`sim`] | `hc-sim` | DES kernel: virtual time, event queue, RNG streams, distributions, stats |
//! | [`obs`] | `hc-obs` | sim-time tracing: recording scopes, spans/events, metrics, trace sinks |
//!
//! ## Quickstart
//!
//! ```
//! use human_computation::prelude::*;
//! use rand::SeedableRng;
//!
//! // Build an image world and a platform with 2-agreement verification.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let world = EspWorld::generate(&WorldConfig::small(), &mut rng);
//! let mut platform = Platform::new(PlatformConfig::default()).unwrap();
//! world.register_tasks(&mut platform);
//!
//! // Seat two simulated honest players and play one ESP session.
//! let mut population = PopulationBuilder::new(2)
//!     .mix(ArchetypeMix::all_honest())
//!     .build(&mut rng);
//! platform.register_player();
//! platform.register_player();
//! let transcript = play_esp_session(
//!     &mut platform, &world, &mut population,
//!     SessionParams::pair(
//!         PlayerId::new(0), PlayerId::new(1),
//!         SessionId::new(0), SimTime::ZERO,
//!     ),
//!     &mut rng,
//! );
//! println!(
//!     "{} rounds, {} verified labels",
//!     transcript.rounds(),
//!     platform.verified_labels().len(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core platform: templates, sessions, verification, metrics.
pub mod core {
    pub use hc_core::*;
}

/// The simulated crowd substrate.
pub mod crowd {
    pub use hc_crowd::*;
}

/// The concrete games and their worlds.
pub mod games {
    pub use hc_games::*;
}

/// CAPTCHA and reCAPTCHA.
pub mod captcha {
    pub use hc_captcha::*;
}

/// Label-aggregation baselines.
pub mod aggregate {
    pub use hc_aggregate::*;
}

/// The task-lifecycle service: a deterministic request/response state
/// machine over the platform, plus the TCP line-JSON front shim.
pub mod serve {
    pub use hc_serve::*;
}

/// The discrete-event simulation kernel.
pub mod sim {
    pub use hc_sim::*;
}

/// Deterministic sim-time observability: recording scopes, spans,
/// events, the metrics registry, and the JSONL / Chrome trace sinks.
pub mod obs {
    pub use hc_obs::*;
}

/// One-stop imports for examples and downstream applications.
pub mod prelude {
    pub use hc_aggregate::prelude::*;
    pub use hc_captcha::{
        Captcha, CaptchaOutcome, DigitizationPipeline, HumanReader, OcrEngine, ReCaptcha,
        ReCaptchaConfig, ScannedCorpus,
    };
    pub use hc_core::prelude::*;
    pub use hc_crowd::{
        ArchetypeMix, Behavior, EngagementModel, LabelDistribution, PlayerProfile, Population,
        PopulationBuilder, ResponseTimeModel, SkillDynamics, SkillState, Vocabulary,
    };
    pub use hc_games::{
        esp::{play_esp_replay_session, play_esp_session},
        matchin::play_matchin_session,
        params::SessionParams,
        peekaboom::play_peekaboom_session,
        squigl::play_squigl_session,
        tagatune::play_tagatune_session,
        verbosity::play_verbosity_session,
        BradleyTerryRanking, Campaign, CampaignConfig, CampaignReport, EspCampaign,
        EspCampaignConfig, EspCampaignReport, EspWorld, MatchinWorld, PeekaboomWorld,
        SessionDriver, SquiglWorld, TagATuneDriver, TagATuneWorld, VerbosityDriver, VerbosityWorld,
        WorldConfig,
    };
    pub use hc_sim::prelude::*;
}
