//! [`DetSet`]: a deterministic insertion-ordered hash set.
//!
//! A thin wrapper over [`DetMap<T, ()>`] with the same determinism
//! contract: seed-free hashing, insertion-order iteration, and
//! [`iter_sorted`](DetSet::iter_sorted) for serialization boundaries.

use crate::map::DetMap;
use serde::{DeError, Deserialize, Serialize, Value};
use std::borrow::Borrow;
use std::hash::Hash;

/// A deterministic hash set with insertion-order iteration.
///
/// # Examples
///
/// ```
/// use hc_collect::DetSet;
///
/// let mut s = DetSet::new();
/// assert!(s.insert("dog"));
/// assert!(!s.insert("dog"));
/// assert!(s.contains("dog"));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Clone)]
pub struct DetSet<T> {
    map: DetMap<T, ()>,
}

impl<T> Default for DetSet<T> {
    fn default() -> Self {
        DetSet { map: DetMap::new() }
    }
}

impl<T> DetSet<T> {
    /// An empty set (no allocation until the first insert).
    #[must_use]
    pub fn new() -> Self {
        DetSet::default()
    }

    /// An empty set pre-sized for `capacity` elements.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        DetSet {
            map: DetMap::with_capacity(capacity),
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Removes every element, keeping allocations.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterates elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.map.keys()
    }

    /// Iterates elements in **sorted order** — the serialization
    /// boundary, matching what the same data in a `BTreeSet` yields.
    pub fn iter_sorted(&self) -> impl Iterator<Item = &T>
    where
        T: Ord,
    {
        let mut refs: Vec<&T> = self.map.keys().collect();
        refs.sort();
        refs.into_iter()
    }
}

impl<T: Hash + Eq> DetSet<T> {
    /// Adds an element; `true` when it was not already present.
    pub fn insert(&mut self, value: T) -> bool {
        self.map.insert(value, ()).is_none()
    }

    /// `true` when `value` is present.
    #[must_use]
    pub fn contains<Q>(&self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.contains_key(value)
    }

    /// Removes an element; `true` when it was present. Surviving
    /// elements keep their relative insertion order.
    pub fn remove<Q>(&mut self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.remove(value).is_some()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for DetSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Order-insensitive equality: same elements, any insertion history.
impl<T: Hash + Eq> PartialEq for DetSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}

impl<T: Hash + Eq> Eq for DetSet<T> {}

impl<T: Hash + Eq> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut set = DetSet::with_capacity(iter.size_hint().0);
        for value in iter {
            set.insert(value);
        }
        set
    }
}

impl<T: Hash + Eq> Extend<T> for DetSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for value in iter {
            self.insert(value);
        }
    }
}

fn first<T>(entry: &(T, ())) -> &T {
    &entry.0
}

impl<'a, T> IntoIterator for &'a DetSet<T> {
    type Item = &'a T;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (T, ())>, fn(&'a (T, ())) -> &'a T>;

    fn into_iter(self) -> Self::IntoIter {
        self.map
            .raw_entries()
            .iter()
            .map(first as fn(&'a (T, ())) -> &'a T)
    }
}

impl<T> IntoIterator for DetSet<T> {
    type Item = T;
    type IntoIter = std::iter::Map<std::vec::IntoIter<(T, ())>, fn((T, ())) -> T>;

    fn into_iter(self) -> Self::IntoIter {
        fn take_key<T>(entry: (T, ())) -> T {
            entry.0
        }
        self.map.into_iter().map(take_key as fn((T, ())) -> T)
    }
}

/// Serializes in **sorted order** — byte-identical to the same data held
/// in a `BTreeSet` (a plain array of elements).
impl<T: Serialize + Hash + Eq + Ord> Serialize for DetSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter_sorted().map(Serialize::serialize_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Hash + Eq> Deserialize<'de> for DetSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => {
                let mut set = DetSet::with_capacity(items.len());
                for item in items {
                    set.insert(T::deserialize_value(item)?);
                }
                Ok(set)
            }
            other => Err(DeError::expected("array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = DetSet::new();
        assert!(s.insert(3u64));
        assert!(s.insert(1));
        assert!(!s.insert(3));
        assert!(s.contains(&3));
        assert!(s.remove(&3));
        assert!(!s.remove(&3));
        assert!(!s.contains(&3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_orders() {
        let mut s = DetSet::new();
        for w in ["c", "a", "b"] {
            s.insert(w);
        }
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), ["c", "a", "b"]);
        assert_eq!(
            s.iter_sorted().copied().collect::<Vec<_>>(),
            ["a", "b", "c"]
        );
    }

    #[test]
    fn equality_ignores_order() {
        let a: DetSet<u64> = [1, 2, 3].into_iter().collect();
        let b: DetSet<u64> = [3, 2, 1].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn serializes_like_a_btreeset() {
        use std::collections::BTreeSet;
        let det: DetSet<String> = ["b", "a"].into_iter().map(String::from).collect();
        let btree: BTreeSet<String> = ["b", "a"].into_iter().map(String::from).collect();
        assert_eq!(det.serialize_value(), btree.serialize_value());
        let back: DetSet<String> =
            Deserialize::deserialize_value(&det.serialize_value()).expect("round-trip");
        assert_eq!(back, det);
    }

    #[test]
    fn borrowed_lookups_work() {
        let mut s: DetSet<String> = DetSet::new();
        s.insert("hello".to_string());
        assert!(s.contains("hello"));
        assert!(s.remove("hello"));
    }
}
