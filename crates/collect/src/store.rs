//! Dense, id-indexed stores for per-player state.
//!
//! The platform's per-player paths (last partners, scoreboards, cheat
//! evidence, shard-resident profiles) are keyed by small dense `u64`
//! ids handed out by an allocator — a `BTreeMap` pays pointer-chasing
//! and rebalancing for a key space that is really just `0..n`.
//! [`PlayerStore`] is the struct-of-arrays replacement: a dense
//! `Vec<Option<T>>` slot per id with **iteration in id order**, which
//! is exactly a `BTreeMap`'s key order — so swapping one for the other
//! never changes an iteration-dependent byte.
//!
//! For sharded engines the store can be *strided*: shard `s` of `K`
//! owns ids `id % K == s`, and [`PlayerStore::strided`] maps those ids
//! onto dense local slots (`(id - s) / K`) so each shard stays compact
//! no matter how many shards exist.
//!
//! [`SliceArena`] complements it for per-player variable-length plans
//! (session sitting lists): one backing `Vec` with [`Span`] handles,
//! instead of one heap allocation per player.

/// A dense map from `u64` ids to values, iterated in id order.
///
/// # Examples
///
/// ```
/// use hc_collect::PlayerStore;
///
/// let mut store = PlayerStore::new();
/// store.insert(2, "b");
/// store.insert(0, "a");
/// assert_eq!(store.get(2), Some(&"b"));
/// let ids: Vec<u64> = store.iter().map(|(id, _)| id).collect();
/// assert_eq!(ids, vec![0, 2]); // id order, like a BTreeMap
/// assert_eq!(store.take(0), Some("a"));
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlayerStore<T> {
    slots: Vec<Option<T>>,
    len: usize,
    stride: u64,
    phase: u64,
}

impl<T> Default for PlayerStore<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PlayerStore<T> {
    /// An empty store over the full id space (stride 1).
    #[must_use]
    pub fn new() -> Self {
        Self::strided(1, 0)
    }

    /// An empty store owning only ids with `id % stride == phase` —
    /// the shard-resident layout. Slots stay dense: id maps to slot
    /// `(id - phase) / stride`.
    ///
    /// # Panics
    ///
    /// Panics when `stride` is zero or `phase >= stride`.
    #[must_use]
    pub fn strided(stride: u64, phase: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(phase < stride, "phase must be < stride");
        PlayerStore {
            slots: Vec::new(),
            len: 0,
            stride,
            phase,
        }
    }

    /// An empty full-range store pre-allocated for ids `0..capacity`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut s = Self::new();
        s.slots.reserve(capacity);
        s
    }

    /// `true` when this store's stride/phase owns `id`.
    #[must_use]
    pub fn owns(&self, id: u64) -> bool {
        id % self.stride == self.phase
    }

    /// Dense slot index for `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not owned by this store's stride/phase.
    fn slot_of(&self, id: u64) -> usize {
        assert!(
            self.owns(id),
            "id {id} not owned by store (stride {}, phase {})",
            self.stride,
            self.phase
        );
        // hc-analyze: allow(P1): documented # Panics contract; ids are dense player indices far below usize::MAX
        usize::try_from((id - self.phase) / self.stride).expect("id fits in usize")
    }

    /// Id stored at dense slot `slot`.
    fn id_of(&self, slot: usize) -> u64 {
        slot as u64 * self.stride + self.phase
    }

    /// Inserts `value` under `id`, returning any previous value.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not owned by this store's stride/phase.
    pub fn insert(&mut self, id: u64, value: T) -> Option<T> {
        let slot = self.slot_of(id);
        if slot >= self.slots.len() {
            self.slots.resize_with(slot + 1, || None);
        }
        let old = self.slots[slot].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// The value under `id`, if present.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<&T> {
        if !self.owns(id) {
            return None;
        }
        self.slots.get(self.slot_of(id)).and_then(Option::as_ref)
    }

    /// Mutable access to the value under `id`, if present.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        if !self.owns(id) {
            return None;
        }
        let slot = self.slot_of(id);
        self.slots.get_mut(slot).and_then(Option::as_mut)
    }

    /// Mutable access to the value under `id`, inserting `make()` first
    /// when absent — the `entry(id).or_insert_with(make)` of this store.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not owned by this store's stride/phase.
    pub fn get_or_insert_with<F: FnOnce() -> T>(&mut self, id: u64, make: F) -> &mut T {
        let slot = self.slot_of(id);
        if slot >= self.slots.len() {
            self.slots.resize_with(slot + 1, || None);
        }
        let entry = &mut self.slots[slot];
        if entry.is_none() {
            self.len += 1;
        }
        entry.get_or_insert_with(make)
    }

    /// Mutable access to two *distinct* ids at once (e.g. both seats of
    /// a session). Returns `None` when either id is absent or the ids
    /// are equal.
    pub fn get_pair_mut(&mut self, a: u64, b: u64) -> Option<(&mut T, &mut T)> {
        if a == b || !self.owns(a) || !self.owns(b) {
            return None;
        }
        let (sa, sb) = (self.slot_of(a), self.slot_of(b));
        if sa.max(sb) >= self.slots.len() {
            return None;
        }
        let (lo, hi) = (sa.min(sb), sa.max(sb));
        let (head, tail) = self.slots.split_at_mut(hi);
        let (x, y) = (head[lo].as_mut()?, tail[0].as_mut()?);
        Some(if sa < sb { (x, y) } else { (y, x) })
    }

    /// Removes and returns the value under `id` (ownership handoff).
    pub fn take(&mut self, id: u64) -> Option<T> {
        if !self.owns(id) {
            return None;
        }
        let slot = self.slot_of(id);
        let old = self.slots.get_mut(slot).and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// `true` when a value is stored under `id`.
    #[must_use]
    pub fn contains(&self, id: u64) -> bool {
        self.get(id).is_some()
    }

    /// Number of stored values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates `(id, &value)` in increasing id order — the same order
    /// a `BTreeMap<u64, T>` would yield.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(slot, v)| v.as_ref().map(|v| (self.id_of(slot), v)))
    }

    /// Iterates `(id, &mut value)` in increasing id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut T)> {
        let (stride, phase) = (self.stride, self.phase);
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(move |(slot, v)| v.as_mut().map(|v| (slot as u64 * stride + phase, v)))
    }

    /// Iterates stored ids in increasing order.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(id, _)| id)
    }
}

impl<T> FromIterator<(u64, T)> for PlayerStore<T> {
    fn from_iter<I: IntoIterator<Item = (u64, T)>>(iter: I) -> Self {
        let mut store = PlayerStore::new();
        for (id, v) in iter {
            store.insert(id, v);
        }
        store
    }
}

/// A handle into a [`SliceArena`]: `start..start + len` of the backing
/// storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    start: u32,
    len: u32,
}

impl Span {
    /// Number of items the span covers.
    #[must_use]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// `true` when the span covers nothing.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// Arena of immutable variable-length slices: one backing `Vec` plus
/// cheap [`Span`] handles, replacing per-entry `Vec` allocations.
///
/// # Examples
///
/// ```
/// use hc_collect::SliceArena;
///
/// let mut arena = SliceArena::new();
/// let a = arena.alloc([1, 2, 3]);
/// let b = arena.alloc([9]);
/// assert_eq!(arena.get(a), &[1, 2, 3]);
/// assert_eq!(arena.get(b), &[9]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SliceArena<T> {
    items: Vec<T>,
}

impl<T> SliceArena<T> {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        SliceArena { items: Vec::new() }
    }

    /// An empty arena pre-allocated for `capacity` total items.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        SliceArena {
            items: Vec::with_capacity(capacity),
        }
    }

    /// Appends the items of `iter` and returns their [`Span`].
    ///
    /// # Panics
    ///
    /// Panics when the arena would exceed `u32::MAX` items.
    pub fn alloc<I: IntoIterator<Item = T>>(&mut self, iter: I) -> Span {
        let start = u32::try_from(self.items.len()).expect("arena start fits in u32"); // hc-analyze: allow(P1): documented # Panics contract; spans index with u32 by design
        self.items.extend(iter);
        let end = u32::try_from(self.items.len()).expect("arena length fits in u32"); // hc-analyze: allow(P1): documented # Panics contract; spans index with u32 by design
        Span {
            start,
            len: end - start,
        }
    }

    /// The slice behind `span`.
    ///
    /// # Panics
    ///
    /// Panics when `span` does not belong to this arena.
    #[must_use]
    pub fn get(&self, span: Span) -> &[T] {
        &self.items[span.start as usize..(span.start + span.len) as usize] // hc-analyze: allow(P1): documented # Panics contract; a Span is only minted by alloc() on this arena
    }

    /// Total items across all spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no span has been allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_take_roundtrip() {
        let mut s = PlayerStore::new();
        assert_eq!(s.insert(3, "x"), None);
        assert_eq!(s.insert(3, "y"), Some("x"));
        assert_eq!(s.get(3), Some(&"y"));
        assert_eq!(s.take(3), Some("y"));
        assert_eq!(s.take(3), None);
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_matches_btreemap_key_order() {
        let ids = [9u64, 0, 4, 7, 2];
        let mut store = PlayerStore::new();
        let mut map = BTreeMap::new();
        for (i, id) in ids.iter().enumerate() {
            store.insert(*id, i);
            map.insert(*id, i);
        }
        let from_store: Vec<(u64, usize)> = store.iter().map(|(id, v)| (id, *v)).collect();
        let from_map: Vec<(u64, usize)> = map.iter().map(|(id, v)| (*id, *v)).collect();
        assert_eq!(from_store, from_map);
    }

    #[test]
    fn strided_store_owns_its_residue_class() {
        let mut s: PlayerStore<u64> = PlayerStore::strided(4, 1);
        for id in [1u64, 5, 9, 13] {
            s.insert(id, id * 10);
        }
        assert!(!s.owns(2));
        assert_eq!(s.get(2), None);
        assert_eq!(s.get(5), Some(&50));
        let ids: Vec<u64> = s.ids().collect();
        assert_eq!(ids, vec![1, 5, 9, 13]);
        // Dense: 4 ids use exactly 4 slots.
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn pair_access_is_order_correct() {
        let mut s = PlayerStore::new();
        s.insert(1, "one");
        s.insert(6, "six");
        let (a, b) = s.get_pair_mut(6, 1).expect("both present");
        assert_eq!((*a, *b), ("six", "one"));
        assert!(s.get_pair_mut(1, 1).is_none());
        assert!(s.get_pair_mut(1, 3).is_none());
    }

    #[test]
    fn from_iterator_collects() {
        let s: PlayerStore<i32> = [(2u64, 20), (0, 0)].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(2), Some(&20));
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn inserting_an_unowned_id_panics() {
        let mut s: PlayerStore<()> = PlayerStore::strided(2, 0);
        s.insert(3, ());
    }

    #[test]
    fn arena_spans_do_not_alias() {
        let mut arena = SliceArena::new();
        let empty = arena.alloc(std::iter::empty());
        let a = arena.alloc(0..5);
        let b = arena.alloc(10..12);
        assert!(empty.is_empty());
        assert_eq!(arena.get(a), &[0, 1, 2, 3, 4]);
        assert_eq!(arena.get(b), &[10, 11]);
        assert_eq!(arena.len(), 7);
        assert_eq!(a.len(), 5);
    }
}
