//! String interning: map labels and metric names to dense [`Sym`]
//! symbols once, then compare and hash 4 bytes forever after.
//!
//! The hot paths emit the same few dozen strings millions of times
//! ("metrics.outputs", a vocabulary of labels, …). Keying registries by
//! `String` pays a full hash + clone per touch; keying by [`Sym`] pays
//! it once at first sight. Symbols are allocated densely in first-seen
//! order, so for a deterministic simulation the numbering itself is
//! deterministic — but like the maps, anything *serialized* from a
//! sym-keyed container must resolve and sort names at the boundary.

use crate::hash::hash_one;
use crate::map::{table_for, EMPTY, MIN_TABLE};

/// An interned string: a dense index into its [`Interner`], allocated in
/// first-seen order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The dense index (0 for the first string interned, 1 for the
    /// second, …).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A deterministic string interner.
///
/// # Examples
///
/// ```
/// use hc_collect::Interner;
///
/// let mut names = Interner::new();
/// let a = names.intern("metrics.outputs");
/// let b = names.intern("metrics.players");
/// assert_eq!(names.intern("metrics.outputs"), a);
/// assert_ne!(a, b);
/// assert_eq!(names.resolve(a), "metrics.outputs");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<String>,
    table: Vec<usize>,
    mask: usize,
}

impl Interner {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Self {
        Interner::default()
    }

    /// An empty interner pre-sized for `capacity` distinct strings.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        if capacity == 0 {
            return Interner::default();
        }
        let table_len = table_for(capacity);
        Interner {
            strings: Vec::with_capacity(capacity),
            table: vec![EMPTY; table_len],
            mask: table_len - 1,
        }
    }

    /// Number of distinct strings interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// `true` when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    fn grow_for_one_more(&mut self) {
        let needed = self.strings.len() + 1;
        if self.table.is_empty() {
            self.table = vec![EMPTY; MIN_TABLE.max(table_for(needed))];
            self.mask = self.table.len() - 1;
            self.reindex();
        } else if needed * 4 > self.table.len() * 3 {
            self.table = vec![EMPTY; self.table.len() * 2];
            self.mask = self.table.len() - 1;
            self.reindex();
        }
    }

    fn reindex(&mut self) {
        for (index, s) in self.strings.iter().enumerate() {
            let mut slot = (hash_one(s.as_str()) as usize) & self.mask;
            while self.table[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.table[slot] = index;
        }
    }

    /// Interns `name`, allocating a new [`Sym`] on first sight and
    /// returning the existing one after — stable for the life of the
    /// interner.
    pub fn intern(&mut self, name: &str) -> Sym {
        self.grow_for_one_more();
        let mask = self.mask;
        let mut slot = (hash_one(name) as usize) & mask;
        loop {
            let index = self.table[slot];
            if index == EMPTY {
                let id = self.strings.len();
                self.table[slot] = id;
                self.strings.push(name.to_string());
                return Sym(id as u32);
            }
            if self.strings[index] == name {
                return Sym(index as u32);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The symbol for `name` if it has been interned, without interning.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.mask;
        let mut slot = (hash_one(name) as usize) & mask;
        loop {
            let index = self.table[slot];
            if index == EMPTY {
                return None;
            }
            if self.strings[index] == name {
                return Some(Sym(index as u32));
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The string behind a symbol. Returns `""` for a [`Sym`] minted by
    /// a *different* interner with a higher index — symbols are only
    /// meaningful to the interner that created them.
    #[must_use]
    pub fn resolve(&self, sym: Sym) -> &str {
        self.strings.get(sym.index()).map_or("", String::as_str)
    }

    /// Iterates `(symbol, string)` pairs in first-seen (= index) order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let words = ["dog", "cat", "metrics.play_us", ""];
        let syms: Vec<Sym> = words.iter().map(|w| i.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            assert_eq!(i.resolve(*s), *w);
            assert_eq!(i.lookup(w), Some(*s));
        }
        assert_eq!(i.lookup("never-seen"), None);
    }

    #[test]
    fn growth_keeps_symbols_stable() {
        let mut i = Interner::new();
        let first = i.intern("first");
        for n in 0..1000 {
            i.intern(&format!("word-{n}"));
        }
        assert_eq!(i.intern("first"), first);
        assert_eq!(i.resolve(first), "first");
        assert_eq!(i.len(), 1001);
    }

    #[test]
    fn foreign_syms_resolve_to_empty() {
        let mut a = Interner::new();
        let sym = a.intern("only-in-a");
        let b = Interner::new();
        assert_eq!(b.resolve(sym), "");
    }

    #[test]
    fn iter_is_first_seen_ordered() {
        let mut i = Interner::new();
        i.intern("z");
        i.intern("a");
        let order: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(order, ["z", "a"]);
    }
}
