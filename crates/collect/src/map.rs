//! [`DetMap`]: a deterministic open-addressing hash map with
//! insertion-order iteration.
//!
//! Layout follows the indexed-map idea: entries live densely in a `Vec`
//! (so iteration is a linear scan in insertion order) and a separate
//! power-of-two probe table stores indices into that `Vec`. Probing is
//! linear with the seed-free [`FxHasher`](crate::FxHasher) mixer, so the
//! same sequence of operations always produces the same layout — there
//! is no per-process entropy anywhere.
//!
//! Removal uses backward-shift deletion (no tombstones) and preserves
//! insertion order of the surviving entries, matching what a
//! re-insertion replay would produce.

use crate::hash::hash_one;
use serde::{DeError, Deserialize, Serialize, Value};
use std::borrow::Borrow;
use std::hash::Hash;

/// Sentinel for an unoccupied probe-table slot.
pub(crate) const EMPTY: usize = usize::MAX;

/// Smallest allocated probe table.
pub(crate) const MIN_TABLE: usize = 8;

/// Picks a probe-table size that holds `n` entries under the 3/4 load
/// ceiling without regrowing.
pub(crate) fn table_for(n: usize) -> usize {
    (n.saturating_mul(4) / 3 + 1)
        .next_power_of_two()
        .max(MIN_TABLE)
}

enum Slot {
    /// The key is present: its probe slot and entry index.
    Present { slot: usize, index: usize },
    /// The key is absent; this is the slot it would occupy.
    Absent { slot: usize },
}

/// A deterministic hash map: O(1) seed-free hashing, insertion-order
/// iteration, [`iter_sorted`](DetMap::iter_sorted) for serialization
/// boundaries.
///
/// # Examples
///
/// ```
/// use hc_collect::DetMap;
///
/// let mut m = DetMap::new();
/// m.insert("b", 2);
/// m.insert("a", 1);
/// // Iteration follows insertion order...
/// assert_eq!(m.iter().map(|(k, _)| *k).collect::<Vec<_>>(), ["b", "a"]);
/// // ...and the sorted view matches what a BTreeMap would yield.
/// assert_eq!(m.iter_sorted().map(|(k, _)| *k).collect::<Vec<_>>(), ["a", "b"]);
/// ```
#[derive(Clone)]
pub struct DetMap<K, V> {
    entries: Vec<(K, V)>,
    table: Vec<usize>,
    mask: usize,
}

impl<K, V> Default for DetMap<K, V> {
    fn default() -> Self {
        DetMap {
            entries: Vec::new(),
            table: Vec::new(),
            mask: 0,
        }
    }
}

impl<K, V> DetMap<K, V> {
    /// An empty map (no allocation until the first insert).
    #[must_use]
    pub fn new() -> Self {
        DetMap::default()
    }

    /// An empty map pre-sized to hold `capacity` entries without
    /// rehashing.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        if capacity == 0 {
            return DetMap::default();
        }
        let table_len = table_for(capacity);
        DetMap {
            entries: Vec::with_capacity(capacity),
            table: vec![EMPTY; table_len],
            mask: table_len - 1,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the map holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes every entry, keeping allocations.
    pub fn clear(&mut self) {
        self.entries.clear();
        for slot in &mut self.table {
            *slot = EMPTY;
        }
    }

    /// The dense entry slice, for sibling modules building concrete
    /// iterator types.
    pub(crate) fn raw_entries(&self) -> &[(K, V)] {
        &self.entries
    }

    /// Iterates `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Iterates values mutably in insertion order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut().map(|(_, v)| v)
    }

    /// Iterates `(key, value)` pairs in **sorted key order** — the
    /// serialization boundary: use this wherever bytes or float
    /// accumulation depend on visit order, and the output matches what
    /// the same data in a `BTreeMap` would produce.
    pub fn iter_sorted(&self) -> impl Iterator<Item = (&K, &V)>
    where
        K: Ord,
    {
        let mut refs: Vec<(&K, &V)> = self.entries.iter().map(|(k, v)| (k, v)).collect();
        refs.sort_by(|a, b| a.0.cmp(b.0));
        refs.into_iter()
    }
}

impl<K: Hash + Eq, V> DetMap<K, V> {
    fn find_slot<Q>(&self, key: &Q) -> Slot
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        debug_assert!(!self.table.is_empty());
        let mask = self.mask;
        let mut slot = (hash_one(key) as usize) & mask;
        loop {
            let index = self.table[slot];
            if index == EMPTY {
                return Slot::Absent { slot };
            }
            if self.entries[index].0.borrow() == key {
                return Slot::Present { slot, index };
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Grows (or first allocates) the probe table so one more entry
    /// stays under the 3/4 load ceiling — which also guarantees the
    /// probe loop always finds an empty slot.
    fn grow_for_one_more(&mut self) {
        let needed = self.entries.len() + 1;
        if self.table.is_empty() {
            self.rebuild_table(table_for(needed));
        } else if needed * 4 > self.table.len() * 3 {
            self.rebuild_table(self.table.len() * 2);
        }
    }

    fn rebuild_table(&mut self, table_len: usize) {
        self.table = vec![EMPTY; table_len];
        self.mask = table_len - 1;
        for (index, (key, _)) in self.entries.iter().enumerate() {
            let mut slot = (hash_one(key) as usize) & self.mask;
            while self.table[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.table[slot] = index;
        }
    }

    /// Inserts a key-value pair, returning the previous value if the key
    /// was present. A replaced key keeps its original insertion position.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.grow_for_one_more();
        match self.find_slot(&key) {
            Slot::Present { index, .. } => {
                Some(std::mem::replace(&mut self.entries[index].1, value))
            }
            Slot::Absent { slot } => {
                self.table[slot] = self.entries.len();
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Looks up a value.
    #[must_use]
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if self.table.is_empty() {
            return None;
        }
        match self.find_slot(key) {
            Slot::Present { index, .. } => self.entries.get(index).map(|(_, v)| v),
            Slot::Absent { .. } => None,
        }
    }

    /// Looks up a value mutably.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if self.table.is_empty() {
            return None;
        }
        match self.find_slot(key) {
            Slot::Present { index, .. } => self.entries.get_mut(index).map(|(_, v)| v),
            Slot::Absent { .. } => None,
        }
    }

    /// `true` when `key` is present.
    #[must_use]
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Removes a key, returning its value. Surviving entries keep their
    /// relative insertion order (shift-remove semantics), so iteration
    /// stays deterministic across an arbitrary insert/remove history.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if self.table.is_empty() {
            return None;
        }
        let (slot, index) = match self.find_slot(key) {
            Slot::Present { slot, index } => (slot, index),
            Slot::Absent { .. } => return None,
        };
        self.backshift(slot);
        let (_, value) = self.entries.remove(index);
        // Entries above the removed one shifted down by one; fix the
        // probe table to match.
        for entry_index in &mut self.table {
            if *entry_index != EMPTY && *entry_index > index {
                *entry_index -= 1;
            }
        }
        Some(value)
    }

    /// Backward-shift deletion for linear probing: walk the cluster
    /// after the freed slot and pull each entry back if its probe path
    /// crossed the hole, so later lookups never need tombstones.
    fn backshift(&mut self, mut free: usize) {
        let mask = self.mask;
        self.table[free] = EMPTY;
        let mut cursor = (free + 1) & mask;
        loop {
            let occupant = self.table[cursor];
            if occupant == EMPTY {
                break;
            }
            let home = (hash_one(&self.entries[occupant].0) as usize) & mask;
            let from_home = cursor.wrapping_sub(home) & mask;
            let from_free = cursor.wrapping_sub(free) & mask;
            if from_home >= from_free {
                self.table[free] = occupant;
                self.table[cursor] = EMPTY;
                free = cursor;
            }
            cursor = (cursor + 1) & mask;
        }
    }

    /// Gets the entry for in-place manipulation (`or_insert`,
    /// `and_modify`, …), mirroring the std `entry` API.
    pub fn entry(&mut self, key: K) -> Entry<'_, K, V> {
        self.grow_for_one_more();
        match self.find_slot(&key) {
            Slot::Present { index, .. } => Entry::Occupied(OccupiedEntry { map: self, index }),
            Slot::Absent { slot } => Entry::Vacant(VacantEntry {
                map: self,
                key,
                slot,
            }),
        }
    }
}

impl<K: std::fmt::Debug, V: std::fmt::Debug> std::fmt::Debug for DetMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// Order-insensitive equality: two maps are equal when they hold the
/// same key-value pairs, regardless of insertion history.
impl<K: Hash + Eq, V: PartialEq> PartialEq for DetMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl<K: Hash + Eq, V: Eq> Eq for DetMap<K, V> {}

impl<K: Hash + Eq, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut map = DetMap::with_capacity(iter.size_hint().0);
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K: Hash + Eq, V> Extend<(K, V)> for DetMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

fn split_pair<K, V>(entry: &(K, V)) -> (&K, &V) {
    (&entry.0, &entry.1)
}

impl<'a, K, V> IntoIterator for &'a DetMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (&'a K, &'a V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries
            .iter()
            .map(split_pair as fn(&'a (K, V)) -> (&'a K, &'a V))
    }
}

impl<K, V> IntoIterator for DetMap<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// Serializes in **sorted key order** — byte-identical to the same data
/// held in a `BTreeMap` (an array of `[key, value]` pairs).
impl<K: Serialize + Hash + Eq + Ord, V: Serialize> Serialize for DetMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Array(
            self.iter_sorted()
                .map(|(k, v)| Value::Array(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}

impl<'de, K, V> Deserialize<'de> for DetMap<K, V>
where
    K: Deserialize<'de> + Hash + Eq,
    V: Deserialize<'de>,
{
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => {
                let mut map = DetMap::with_capacity(items.len());
                for pair in items {
                    match pair {
                        Value::Array(kv) if kv.len() == 2 => {
                            map.insert(
                                K::deserialize_value(&kv[0])?,
                                V::deserialize_value(&kv[1])?,
                            );
                        }
                        other => return Err(DeError::expected("[key, value] pair", other)),
                    }
                }
                Ok(map)
            }
            other => Err(DeError::expected("map as array of pairs", other)),
        }
    }
}

/// A view into a single map slot, occupied or vacant.
#[derive(Debug)]
pub enum Entry<'a, K, V> {
    /// The key is present.
    Occupied(OccupiedEntry<'a, K, V>),
    /// The key is absent.
    Vacant(VacantEntry<'a, K, V>),
}

impl<'a, K: Hash + Eq, V> Entry<'a, K, V> {
    /// Inserts `default` if vacant; returns the value either way.
    pub fn or_insert(self, default: V) -> &'a mut V {
        self.or_insert_with(|| default)
    }

    /// Inserts `default()` if vacant; returns the value either way.
    pub fn or_insert_with<F: FnOnce() -> V>(self, default: F) -> &'a mut V {
        match self {
            Entry::Occupied(occupied) => occupied.into_mut(),
            Entry::Vacant(vacant) => vacant.insert(default()),
        }
    }

    /// Inserts `V::default()` if vacant; returns the value either way.
    pub fn or_default(self) -> &'a mut V
    where
        V: Default,
    {
        self.or_insert_with(V::default)
    }

    /// Mutates the value in place if occupied; no-op when vacant.
    #[must_use]
    pub fn and_modify<F: FnOnce(&mut V)>(self, f: F) -> Self {
        match self {
            Entry::Occupied(mut occupied) => {
                f(occupied.get_mut());
                Entry::Occupied(occupied)
            }
            vacant @ Entry::Vacant(_) => vacant,
        }
    }

    /// The entry's key.
    #[must_use]
    pub fn key(&self) -> &K {
        match self {
            Entry::Occupied(occupied) => occupied.key(),
            Entry::Vacant(vacant) => &vacant.key,
        }
    }
}

/// An occupied slot in a [`DetMap`].
#[derive(Debug)]
pub struct OccupiedEntry<'a, K, V> {
    map: &'a mut DetMap<K, V>,
    index: usize,
}

impl<'a, K, V> OccupiedEntry<'a, K, V> {
    /// The entry's key.
    #[must_use]
    pub fn key(&self) -> &K {
        &self.map.entries[self.index].0
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> &V {
        &self.map.entries[self.index].1
    }

    /// The current value, mutably.
    pub fn get_mut(&mut self) -> &mut V {
        &mut self.map.entries[self.index].1
    }

    /// Consumes the view, returning a long-lived mutable reference.
    #[must_use]
    pub fn into_mut(self) -> &'a mut V {
        &mut self.map.entries[self.index].1
    }

    /// Replaces the value, returning the old one.
    pub fn insert(&mut self, value: V) -> V {
        std::mem::replace(self.get_mut(), value)
    }
}

/// A vacant slot in a [`DetMap`].
#[derive(Debug)]
pub struct VacantEntry<'a, K, V> {
    map: &'a mut DetMap<K, V>,
    key: K,
    slot: usize,
}

impl<'a, K, V> VacantEntry<'a, K, V> {
    /// The key that would be inserted.
    #[must_use]
    pub fn key(&self) -> &K {
        &self.key
    }

    /// Inserts `value` under the entry's key.
    pub fn insert(self, value: V) -> &'a mut V {
        let index = self.map.entries.len();
        self.map.table[self.slot] = index;
        self.map.entries.push((self.key, value));
        &mut self.map.entries[index].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_replace() {
        let mut m = DetMap::new();
        assert_eq!(m.insert("a", 1), None);
        assert_eq!(m.insert("a", 2), Some(1));
        assert_eq!(m.get("a"), Some(&2));
        assert_eq!(m.get("b"), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let mut m = DetMap::new();
        for k in ["zebra", "apple", "mango"] {
            m.insert(k, ());
        }
        let keys: Vec<&str> = m.keys().copied().collect();
        assert_eq!(keys, ["zebra", "apple", "mango"]);
        let sorted: Vec<&str> = m.iter_sorted().map(|(k, _)| *k).collect();
        assert_eq!(sorted, ["apple", "mango", "zebra"]);
    }

    #[test]
    fn growth_preserves_contents_and_order() {
        let mut m = DetMap::new();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        let keys: Vec<u64> = m.keys().copied().collect();
        assert_eq!(keys, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn remove_preserves_survivor_order() {
        let mut m = DetMap::new();
        for i in 0..10u64 {
            m.insert(i, i);
        }
        assert_eq!(m.remove(&3), Some(3));
        assert_eq!(m.remove(&3), None);
        assert_eq!(m.remove(&7), Some(7));
        let keys: Vec<u64> = m.keys().copied().collect();
        assert_eq!(keys, [0, 1, 2, 4, 5, 6, 8, 9]);
        for k in keys {
            assert_eq!(m.get(&k), Some(&k));
        }
    }

    #[test]
    fn removal_keeps_probe_clusters_reachable() {
        // Dense u64 keys form long linear-probe clusters; deleting from
        // the middle must not orphan anything behind the hole.
        let mut m = DetMap::new();
        for i in 0..256u64 {
            m.insert(i, i);
        }
        for i in (0..256u64).step_by(2) {
            assert_eq!(m.remove(&i), Some(i));
        }
        for i in 0..256u64 {
            if i % 2 == 1 {
                assert_eq!(m.get(&i), Some(&i));
            } else {
                assert_eq!(m.get(&i), None);
            }
        }
    }

    #[test]
    fn entry_api_matches_std_semantics() {
        let mut m: DetMap<String, u64> = DetMap::new();
        *m.entry("x".to_string()).or_insert(0) += 5;
        *m.entry("x".to_string()).or_insert(0) += 7;
        assert_eq!(m.get("x"), Some(&12));
        m.entry("y".to_string())
            .and_modify(|v| *v += 1)
            .or_insert(100);
        assert_eq!(m.get("y"), Some(&100));
        m.entry("y".to_string())
            .and_modify(|v| *v += 1)
            .or_insert(100);
        assert_eq!(m.get("y"), Some(&101));
        let n: &mut u64 = m.entry("z".to_string()).or_default();
        assert_eq!(*n, 0);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = DetMap::new();
        a.insert(1u64, "one");
        a.insert(2, "two");
        let mut b = DetMap::new();
        b.insert(2u64, "two");
        b.insert(1, "one");
        assert_eq!(a, b);
        b.insert(3, "three");
        assert_ne!(a, b);
    }

    #[test]
    fn with_capacity_never_rehashes_under_the_cap() {
        let mut m = DetMap::with_capacity(100);
        let table_len = m.table.len();
        for i in 0..100u64 {
            m.insert(i, ());
        }
        assert_eq!(m.table.len(), table_len, "pre-sized table regrew");
    }

    #[test]
    fn serializes_like_a_btreemap() {
        use std::collections::BTreeMap;
        let mut det = DetMap::new();
        det.insert("b".to_string(), 2u64);
        det.insert("a".to_string(), 1u64);
        let mut btree = BTreeMap::new();
        btree.insert("b".to_string(), 2u64);
        btree.insert("a".to_string(), 1u64);
        assert_eq!(det.serialize_value(), btree.serialize_value());
        let back: DetMap<String, u64> =
            Deserialize::deserialize_value(&det.serialize_value()).expect("round-trip");
        assert_eq!(back, det);
    }

    #[test]
    fn clear_keeps_the_map_usable() {
        let mut m = DetMap::new();
        m.insert(1u64, 1);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&1), None);
        m.insert(2, 2);
        assert_eq!(m.get(&2), Some(&2));
    }
}
