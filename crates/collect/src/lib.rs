//! Deterministic hot-path collections.
//!
//! The platform bans `std::collections::HashMap`/`HashSet` (analyzer rule
//! D2): their `RandomState` hasher draws OS entropy at construction, so
//! iteration order — and therefore any serialized output or float
//! summation driven by it — varies run to run. The original fix was
//! `BTreeMap`/`BTreeSet` everywhere, which is deterministic but pays
//! O(log n) comparisons (string comparisons, for label keys) on every
//! lookup of the hottest paths: matchmaker rematch checks, ESP tag
//! agreement, reCAPTCHA vote tallies, the metrics registry.
//!
//! This crate restores O(1) hashing without reintroducing nondeterminism:
//!
//! * [`DetMap`] / [`DetSet`] — open-addressing hash map/set over a fixed
//!   FxHash-style mixer ([`FxHasher`]). No seed, no OS entropy: the same
//!   key set always produces the same table layout. Iteration follows
//!   **insertion order** (entries live in a dense `Vec`; the probe table
//!   only stores indices), which is deterministic for a deterministic
//!   simulation but *not* sorted — callers that serialize must either use
//!   [`DetMap::iter_sorted`] / [`DetSet::iter_sorted`] at the boundary or
//!   prove the container is never iterated.
//! * [`Interner`] / [`Sym`] — a string interner mapping labels and metric
//!   names to dense `u32` symbols, so repeated lookups hash 4 bytes
//!   instead of a whole string and equality is one integer compare.
//! * [`PlayerStore`] / [`SliceArena`] — dense id-indexed struct-of-arrays
//!   stores for per-player state, iterated in id order (a `BTreeMap`'s
//!   key order), with an optional `id % K` stride for sharded engines.
//!
//! # The sort-at-the-boundary rule
//!
//! Replacing a `BTreeMap` with a [`DetMap`] changes iteration order from
//! sorted to insertion order. That is only byte-identical to the old
//! behavior if (a) the map is never iterated (lookups/inserts only), or
//! (b) every iteration that feeds serialization or float accumulation
//! goes through `iter_sorted()`. The serde impls in this crate always
//! serialize in sorted key order, matching `BTreeMap`'s wire format
//! exactly.

pub mod hash;
pub mod intern;
pub mod map;
pub mod set;
pub mod store;

pub use hash::FxHasher;
pub use intern::{Interner, Sym};
pub use map::{DetMap, Entry, OccupiedEntry, VacantEntry};
pub use set::DetSet;
pub use store::{PlayerStore, SliceArena, Span};
