//! Seed-free FxHash-style mixing.
//!
//! The standard library's default hasher (`RandomState`) draws OS entropy
//! once per process, which rule D1/D2 bans: the same program would lay
//! out its tables differently on every run. [`FxHasher`] is the classic
//! rustc hash instead — a fixed multiply-rotate mixer with no seed at
//! all, so hash values (and therefore probe sequences) are a pure
//! function of the key bytes. It is not DoS-resistant, which is fine
//! here: keys come from the simulation itself, not from adversarial
//! network input.

use std::hash::{Hash, Hasher};

/// The Fx multiplier: a 64-bit constant derived from the golden ratio,
/// the same one rustc uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

const ROTATE: u32 = 5;

/// A deterministic, seed-free hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// A fresh hasher with the zero state.
    #[must_use]
    pub fn new() -> Self {
        FxHasher::default()
    }

    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        self.add_to_hash(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.add_to_hash(n as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.add_to_hash(n as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add_to_hash(n as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hashes one value with the deterministic mixer.
#[inline]
#[must_use]
pub fn hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_hash_identically() {
        assert_eq!(hash_one("throughput"), hash_one("throughput"));
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
    }

    #[test]
    fn different_inputs_usually_differ() {
        assert_ne!(hash_one("a"), hash_one("b"));
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        // Prefix padding must not collide with the padded remainder.
        assert_ne!(hash_one("abcdefgh"), hash_one("abcdefgh\0"));
    }

    #[test]
    fn hash_is_a_pure_function_of_bytes() {
        // The load-bearing property: no per-process seeding. A fixed
        // input must map to a fixed output, forever.
        let h = hash_one("metrics.outputs");
        for _ in 0..100 {
            assert_eq!(hash_one("metrics.outputs"), h);
        }
    }
}
