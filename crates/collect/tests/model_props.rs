//! Model-based property tests: [`DetMap`]/[`DetSet`] must agree with
//! `BTreeMap`/`BTreeSet` on every observable (get/contains/len/removal
//! result/sorted iteration) over arbitrary operation histories, the
//! interner must round-trip with stable symbols, and two identical runs
//! must produce identical iteration order (the determinism contract).

use hc_collect::{DetMap, DetSet, Interner, PlayerStore};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// One scripted operation: `(op, key, value)`. `op` selects
/// insert/remove/get; keys are drawn from a small domain so histories
/// revisit keys often (exercising replacement and re-insertion).
type Op = (u8, u16, u32);

fn apply_to_both(
    ops: &[Op],
    det: &mut DetMap<u16, u32>,
    model: &mut BTreeMap<u16, u32>,
) -> Result<(), TestCaseError> {
    for &(op, key, value) in ops {
        match op % 3 {
            0 => {
                prop_assert_eq!(det.insert(key, value), model.insert(key, value));
            }
            1 => {
                prop_assert_eq!(det.remove(&key), model.remove(&key));
            }
            _ => {
                prop_assert_eq!(det.get(&key), model.get(&key));
            }
        }
        prop_assert_eq!(det.len(), model.len());
    }
    Ok(())
}

proptest! {
    #[test]
    fn map_matches_btreemap_on_any_history(
        ops in vec((0u8..6, 0u16..48, 0u32..1000), 0..200),
    ) {
        let mut det: DetMap<u16, u32> = DetMap::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        apply_to_both(&ops, &mut det, &mut model)?;
        // Terminal state: every key agrees, and the sorted view is
        // exactly the BTreeMap's iteration.
        for key in 0u16..48 {
            prop_assert_eq!(det.get(&key), model.get(&key));
            prop_assert_eq!(det.contains_key(&key), model.contains_key(&key));
        }
        let det_sorted: Vec<(u16, u32)> = det.iter_sorted().map(|(k, v)| (*k, *v)).collect();
        let model_sorted: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(det_sorted, model_sorted);
    }

    #[test]
    fn set_matches_btreeset_on_any_history(
        ops in vec((0u8..6, 0u16..48), 0..200),
    ) {
        let mut det: DetSet<u16> = DetSet::new();
        let mut model: BTreeSet<u16> = BTreeSet::new();
        for &(op, key) in &ops {
            match op % 3 {
                0 => prop_assert_eq!(det.insert(key), model.insert(key)),
                1 => prop_assert_eq!(det.remove(&key), model.remove(&key)),
                _ => prop_assert_eq!(det.contains(&key), model.contains(&key)),
            }
            prop_assert_eq!(det.len(), model.len());
        }
        let det_sorted: Vec<u16> = det.iter_sorted().copied().collect();
        let model_sorted: Vec<u16> = model.iter().copied().collect();
        prop_assert_eq!(det_sorted, model_sorted);
    }

    #[test]
    fn map_serializes_byte_identically_to_btreemap(
        ops in vec((0u8..6, 0u16..32, 0u32..1000), 0..120),
    ) {
        let mut det: DetMap<u16, u32> = DetMap::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        apply_to_both(&ops, &mut det, &mut model)?;
        // The sort-at-the-boundary rule, end to end: identical bytes.
        prop_assert_eq!(
            serde_json::to_string(&det).expect("det serializes"),
            serde_json::to_string(&model).expect("model serializes")
        );
    }

    #[test]
    fn interner_round_trips_with_stable_syms(
        words in vec(vec(0u8..26, 0..8), 1..60),
    ) {
        let words: Vec<String> = words
            .into_iter()
            .map(|cs| cs.into_iter().map(|c| char::from(b'a' + c)).collect())
            .collect();
        let mut interner = Interner::new();
        let first_pass: Vec<_> = words.iter().map(|w| interner.intern(w)).collect();
        // Re-interning yields the same symbol; resolve round-trips.
        for (word, sym) in words.iter().zip(&first_pass) {
            prop_assert_eq!(interner.intern(word), *sym);
            prop_assert_eq!(interner.resolve(*sym), word.as_str());
            prop_assert_eq!(interner.lookup(word), Some(*sym));
        }
        // Symbols are dense indices in first-seen order.
        let mut seen = BTreeSet::new();
        let mut next_index = 0;
        for (word, sym) in words.iter().zip(&first_pass) {
            if seen.insert(word.clone()) {
                prop_assert_eq!(sym.index(), next_index);
                next_index += 1;
            }
        }
        prop_assert_eq!(interner.len(), seen.len());
    }

    #[test]
    fn identical_runs_iterate_identically(
        ops in vec((0u8..6, 0u16..48, 0u32..1000), 0..200),
    ) {
        // The cross-run determinism contract: replaying the same
        // operation history yields the same iteration order, element
        // for element — no per-process entropy anywhere.
        let build = || {
            let mut m: DetMap<u16, u32> = DetMap::new();
            for &(op, key, value) in &ops {
                match op % 3 {
                    0 => {
                        m.insert(key, value);
                    }
                    1 => {
                        m.remove(&key);
                    }
                    _ => {}
                }
            }
            m
        };
        let a = build();
        let b = build();
        let order_a: Vec<(u16, u32)> = a.iter().map(|(k, v)| (*k, *v)).collect();
        let order_b: Vec<(u16, u32)> = b.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(order_a, order_b);
    }

    #[test]
    fn player_store_matches_btreemap_on_any_history(
        ops in vec((0u8..10, 0u64..40, 0u32..1000), 0..200),
        stride in 1u64..5,
        phase_sel in 0u64..8,
    ) {
        // The data-oriented store must agree with a BTreeMap on every
        // observable, for every residue-class layout: ids live on the
        // arithmetic progression `phase + stride * k`, mirroring one
        // shard's slice of a player population.
        let phase = phase_sel % stride;
        let mut store: PlayerStore<u32> = PlayerStore::strided(stride, phase);
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for &(op, k, value) in &ops {
            let id = phase + stride * k;
            prop_assert!(store.owns(id));
            match op % 5 {
                0 => {
                    prop_assert_eq!(store.insert(id, value), model.insert(id, value));
                }
                1 => {
                    prop_assert_eq!(store.take(id), model.remove(&id));
                }
                2 => {
                    prop_assert_eq!(store.get(id), model.get(&id));
                    prop_assert_eq!(store.contains(id), model.contains_key(&id));
                }
                3 => {
                    let got = store.get_mut(id);
                    let want = model.get_mut(&id);
                    prop_assert_eq!(got.as_deref(), want.as_deref());
                    if let (Some(g), Some(w)) = (got, want) {
                        *g += 1;
                        *w += 1;
                    }
                }
                _ => {
                    let got = *store.get_or_insert_with(id, || value);
                    let want = *model.entry(id).or_insert(value);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(store.len(), model.len());
            prop_assert_eq!(store.is_empty(), model.is_empty());
        }
        // Terminal state: iteration is exactly the BTreeMap's id-ordered
        // view, and off-progression ids are never owned.
        let store_view: Vec<(u64, u32)> = store.iter().map(|(id, v)| (id, *v)).collect();
        let model_view: Vec<(u64, u32)> = model.iter().map(|(&id, &v)| (id, v)).collect();
        prop_assert_eq!(store_view, model_view);
        let store_ids: Vec<u64> = store.ids().collect();
        let model_ids: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(store_ids, model_ids);
        if stride > 1 {
            prop_assert!(!store.owns(phase + 1));
        }
    }
}
