//! Golden-file tests for the two sinks: the rendered bytes of a fixed
//! fixture trace are frozen under `tests/golden/`, so any accidental
//! format change shows up as a reviewable diff. Regenerate after an
//! *intentional* format change with
//!
//! ```text
//! cargo test -p hc-obs --test golden -- --ignored regenerate
//! ```

use std::path::PathBuf;

/// A fixture exercising every record kind, field type, span-tree
/// nesting, track names, the metrics registry, and the machine section.
fn fixture_trace() -> hc_obs::Trace {
    let ((), trace) = hc_obs::record_scope(0, || {
        hc_obs::name_track(0, "main");
        let root = hc_obs::enter("sim", "scenario", 0);
        hc_obs::span(
            "sim",
            "run",
            0,
            5_000,
            &[
                ("events", 12u64.into()),
                ("outcome", "drained".into()),
                ("queue_ok", true.into()),
                ("drift", (-3i64).into()),
                ("load", 0.25f64.into()),
            ],
        );
        hc_obs::span_on_track(
            2,
            "layout.shard",
            "window",
            0,
            2_500,
            &[("shard", 1u64.into())],
        );
        hc_obs::name_track(2, "shard-1");
        root.exit(5_000, &[("windows", 1u64.into())]);
        hc_obs::event(
            "core",
            "pair",
            1_500,
            &[("player", 3u64.into()), ("waited_us", 250_000u64.into())],
        );
        hc_obs::counter("core.sessions", 2_000, 1);
        hc_obs::counter("core.sessions", 4_000, 2);
        hc_obs::gauge("sim.queue_high_water", 4_500, 7.0);
        hc_obs::observe("core.pair_wait_secs", 4_800, 0.25);
        hc_obs::machine_stat("par.workers", 4.0);
        hc_obs::machine_stat("par.steals", 9.0);
    });
    trace
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

#[test]
fn jsonl_render_matches_golden() {
    let rendered = hc_obs::sink::jsonl::render(&fixture_trace());
    assert_eq!(
        rendered,
        include_str!("golden/trace.jsonl"),
        "JSONL format drifted; regenerate the golden file if intentional"
    );
}

#[test]
fn jsonl_golden_round_trips() {
    let parsed = hc_obs::sink::jsonl::parse(include_str!("golden/trace.jsonl"))
        .expect("golden trace parses");
    assert_eq!(parsed, fixture_trace());
}

#[test]
fn chrome_render_matches_golden() {
    let rendered = hc_obs::sink::chrome::render(&fixture_trace());
    assert_eq!(
        rendered,
        include_str!("golden/trace_chrome.json"),
        "Chrome export format drifted; regenerate the golden file if intentional"
    );
}

#[test]
fn chrome_export_has_valid_trace_event_shape() {
    let rendered = hc_obs::sink::chrome::render(&fixture_trace());
    let value: serde_json::Value = serde_json::from_str(&rendered).expect("valid JSON");
    let events = value
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut begins = 0i64;
    let mut ends = 0i64;
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(serde_json::Value::as_str)
            .expect("phase");
        assert!(
            matches!(ph, "B" | "E" | "i" | "C" | "M"),
            "unexpected phase `{ph}` in {ev}"
        );
        for key in ["pid", "tid"] {
            assert!(ev.get(key).is_some(), "missing `{key}` in {ev}");
        }
        match ph {
            "B" => {
                begins += 1;
                assert!(ev.get("name").is_some(), "begin event without name: {ev}");
                assert!(ev.get("ts").is_some(), "begin event without ts: {ev}");
            }
            "E" => {
                ends += 1;
                assert!(ev.get("ts").is_some(), "end event without ts: {ev}");
            }
            "i" => {
                assert_eq!(
                    ev.get("s").and_then(serde_json::Value::as_str),
                    Some("t"),
                    "instant event without thread scope: {ev}"
                );
            }
            "M" => {
                assert_eq!(
                    ev.get("name").and_then(serde_json::Value::as_str),
                    Some("thread_name"),
                    "unexpected metadata event: {ev}"
                );
            }
            _ => {}
        }
    }
    assert!(begins > 0, "no span begin events");
    assert_eq!(begins, ends, "unbalanced B/E pairs");
}

/// Not a test: rewrites the golden files from the current sink output.
/// Run explicitly (`-- --ignored regenerate`) after an intentional
/// format change, then review the diff.
#[test]
#[ignore = "regenerates the golden files; run explicitly after intentional format changes"]
fn regenerate() {
    let trace = fixture_trace();
    std::fs::create_dir_all(golden_path("")).expect("golden dir");
    std::fs::write(
        golden_path("trace.jsonl"),
        hc_obs::sink::jsonl::render(&trace),
    )
    .expect("write jsonl golden");
    std::fs::write(
        golden_path("trace_chrome.json"),
        hc_obs::sink::chrome::render(&trace),
    )
    .expect("write chrome golden");
}
