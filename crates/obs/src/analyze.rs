//! Trace analysis passes: span trees, critical path, flame folding,
//! sim-time timeseries and derived-metrics diffing.
//!
//! Everything here is a pure function of the record stream, so every
//! report is deterministic: byte-identical for the same seed at any
//! `--threads` value. Accumulators ([`DeriveAcc`], [`TimeSeriesAcc`])
//! consume records one at a time, so callers can fold a JSONL trace
//! line-by-line in bounded memory; [`SpanTree`] retains the span
//! records (only) because critical-path and flame analysis need random
//! access to the tree.
//!
//! ## The `layout.` prefix
//!
//! Records whose span target or metric name starts with [`LAYOUT_PREFIX`]
//! describe the *shard layout itself* (per-shard lanes, the skew gauge):
//! they are deterministic for a given `--shards` value but legitimately
//! differ across layouts. The derived-metrics summary excludes them, so
//! derived summaries — and the CI trace gate built on them — compare
//! byte-identical across shard layouts as well as thread counts. The
//! timeseries pass keeps them: plotting skew is its job.

use crate::record::{Record, RecordData};
use crate::sink::{f, obj, s, u};
use serde_json::Value;
use std::collections::BTreeMap;

/// Prefix marking layout-dependent span targets / metric names, which
/// the derived-metrics summary excludes (see module docs).
pub const LAYOUT_PREFIX: &str = "layout.";

fn is_layout(name: &str) -> bool {
    name.starts_with(LAYOUT_PREFIX)
}

// ---------------------------------------------------------------------------
// Span tree
// ---------------------------------------------------------------------------

/// One span lifted out of the record stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanInfo {
    /// Track the span was recorded on.
    pub track: u32,
    /// Span id (unique within its track; 0 on pre-tree traces).
    pub id: u64,
    /// Parent span id on the same track (0 = root).
    pub parent: u64,
    /// Emitting subsystem.
    pub target: String,
    /// Span name.
    pub name: String,
    /// Sim-time start.
    pub start_us: u64,
    /// Sim-time duration.
    pub dur_us: u64,
}

impl SpanInfo {
    /// Sim-time end.
    #[must_use]
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }

    /// `target/name` — the frame label used by flame and derived
    /// summaries.
    #[must_use]
    pub fn frame(&self) -> String {
        format!("{}/{}", self.target, self.name)
    }
}

/// The span forest of a trace: spans in emission order plus resolved
/// parent/child links (parents resolve within a track only).
#[derive(Debug, Default)]
pub struct SpanTree {
    /// All spans, in record order.
    pub spans: Vec<SpanInfo>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
}

impl SpanTree {
    /// Builds the tree from a record stream (non-span records are
    /// ignored).
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a Record>) -> SpanTree {
        let mut builder = TreeBuilder::default();
        for r in records {
            builder.add(r);
        }
        builder.finish()
    }

    /// Indices of parentless spans, ordered by start time then
    /// emission order.
    #[must_use]
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Child indices of span `i`, ordered by start time then emission
    /// order.
    #[must_use]
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Per-span self time: duration minus the union of child intervals
    /// (clipped to the span's own interval).
    #[must_use]
    pub fn self_times(&self) -> Vec<u64> {
        self.spans
            .iter()
            .enumerate()
            .map(|(i, span)| {
                let intervals: Vec<(u64, u64)> = self.children[i]
                    .iter()
                    .map(|&c| (self.spans[c].start_us, self.spans[c].end_us()))
                    .collect();
                span.dur_us
                    .saturating_sub(coverage(&intervals, span.start_us, span.end_us()))
            })
            .collect()
    }
}

/// Streaming builder for [`SpanTree`] — feed it records, then
/// [`TreeBuilder::finish`].
#[derive(Debug, Default)]
pub struct TreeBuilder {
    spans: Vec<SpanInfo>,
}

impl TreeBuilder {
    /// A builder with no spans.
    #[must_use]
    pub fn new() -> Self {
        TreeBuilder::default()
    }

    /// Folds one record in (non-span records are ignored).
    pub fn add(&mut self, r: &Record) {
        if let RecordData::Span {
            target,
            name,
            dur_us,
            id,
            parent,
            ..
        } = &r.data
        {
            self.spans.push(SpanInfo {
                track: r.track,
                id: *id,
                parent: *parent,
                target: target.clone(),
                name: name.clone(),
                start_us: r.t_us,
                dur_us: *dur_us,
            });
        }
    }

    /// Resolves parent links and returns the finished tree.
    #[must_use]
    pub fn finish(self) -> SpanTree {
        let spans = self.spans;
        let mut index_of: BTreeMap<(u32, u64), usize> = BTreeMap::new();
        for (i, span) in spans.iter().enumerate() {
            if span.id != 0 {
                index_of.insert((span.track, span.id), i);
            }
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, span) in spans.iter().enumerate() {
            match index_of.get(&(span.track, span.parent)) {
                Some(&p) if span.parent != 0 && p != i => children[p].push(i),
                _ => roots.push(i),
            }
        }
        roots.sort_by_key(|&i| (spans[i].start_us, i));
        for kids in &mut children {
            kids.sort_by_key(|&i| (spans[i].start_us, i));
        }
        SpanTree {
            spans,
            children,
            roots,
        }
    }
}

/// Total coverage of `[lo, hi]` by the union of `intervals`.
fn coverage(intervals: &[(u64, u64)], lo: u64, hi: u64) -> u64 {
    let mut clipped: Vec<(u64, u64)> = intervals
        .iter()
        .filter_map(|&(a, b)| {
            let (a, b) = (a.max(lo), b.min(hi));
            (a < b).then_some((a, b))
        })
        .collect();
    clipped.sort_unstable();
    let mut covered = 0;
    let mut cursor = lo;
    for (a, b) in clipped {
        let a = a.max(cursor);
        if b > a {
            covered += b - a;
            cursor = b;
        }
    }
    covered
}

// ---------------------------------------------------------------------------
// Critical path
// ---------------------------------------------------------------------------

/// One step on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CpStep {
    /// Index into [`SpanTree::spans`].
    pub span: usize,
    /// Depth below the chosen root (root = 0).
    pub depth: usize,
    /// Self time of this span.
    pub self_us: u64,
}

/// The longest sim-time chain through the span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Root-to-leaf steps.
    pub steps: Vec<CpStep>,
    /// The chosen root's duration — every step lies within it, so no
    /// chain through the tree is longer.
    pub total_us: u64,
}

/// Walks the longest chain: the longest root span, then at each node
/// the longest child (ties break to earliest start, then emission
/// order). Returns `None` on a span-free trace.
#[must_use]
pub fn critical_path(tree: &SpanTree) -> Option<CriticalPath> {
    let self_times = tree.self_times();
    let longest = |candidates: &[usize]| -> Option<usize> {
        candidates.iter().copied().max_by(|&a, &b| {
            let ka = (
                tree.spans[a].dur_us,
                std::cmp::Reverse(tree.spans[a].start_us),
            );
            let kb = (
                tree.spans[b].dur_us,
                std::cmp::Reverse(tree.spans[b].start_us),
            );
            ka.cmp(&kb).then(b.cmp(&a))
        })
    };
    let root = longest(tree.roots())?;
    let total_us = tree.spans[root].dur_us;
    let mut steps = Vec::new();
    let mut node = root;
    let mut depth = 0;
    loop {
        steps.push(CpStep {
            span: node,
            depth,
            self_us: self_times[node],
        });
        match longest(tree.children(node)) {
            Some(next) => {
                node = next;
                depth += 1;
            }
            None => break,
        }
    }
    Some(CriticalPath { steps, total_us })
}

/// Per-target self-time attribution along the critical path, largest
/// first (ties break by name).
#[must_use]
pub fn critical_path_attribution(tree: &SpanTree, cp: &CriticalPath) -> Vec<(String, u64)> {
    let mut by_target: BTreeMap<&str, u64> = BTreeMap::new();
    for step in &cp.steps {
        *by_target
            .entry(tree.spans[step.span].target.as_str())
            .or_insert(0) += step.self_us;
    }
    let mut out: Vec<(String, u64)> = by_target
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// The critical-path steps with the largest self times, rank order
/// (ties break to the shallower step).
fn hottest_steps(cp: &CriticalPath, top: usize) -> Vec<&CpStep> {
    let mut steps: Vec<&CpStep> = cp.steps.iter().collect();
    steps.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.depth.cmp(&b.depth)));
    steps.truncate(top);
    steps
}

fn render_attribution(tree: &SpanTree, cp: &CriticalPath, out: &mut String) {
    out.push_str("attribution by target:\n");
    for (target, self_us) in critical_path_attribution(tree, cp) {
        let share = if cp.total_us == 0 {
            0.0
        } else {
            self_us as f64 / cp.total_us as f64 * 100.0
        };
        out.push_str(&format!(
            "{:<24} {:>14} us {:>6.1}%\n",
            target, self_us, share
        ));
    }
}

/// Renders the critical path as a fixed-width text report.
#[must_use]
pub fn render_critical_path(tree: &SpanTree) -> String {
    let mut out = String::new();
    let Some(cp) = critical_path(tree) else {
        out.push_str("critical path: no spans in trace\n");
        return out;
    };
    out.push_str(&format!(
        "critical path: {} us across {} spans\n",
        cp.total_us,
        cp.steps.len()
    ));
    out.push_str(&format!(
        "{:<6} {:<36} {:>14} {:>14} {:>14}\n",
        "depth", "span", "start_us", "dur_us", "self_us"
    ));
    for step in &cp.steps {
        let span = &tree.spans[step.span];
        out.push_str(&format!(
            "{:<6} {:<36} {:>14} {:>14} {:>14}\n",
            step.depth,
            span.frame(),
            span.start_us,
            span.dur_us,
            step.self_us
        ));
    }
    render_attribution(tree, &cp, &mut out);
    out
}

/// Like [`render_critical_path`], but lists only the `top` hottest
/// steps by self time (with their share of the path total) — the
/// skimmable view of paths thousands of windows deep.
#[must_use]
pub fn render_critical_path_top(tree: &SpanTree, top: usize) -> String {
    let mut out = String::new();
    let Some(cp) = critical_path(tree) else {
        out.push_str("critical path: no spans in trace\n");
        return out;
    };
    let hottest = hottest_steps(&cp, top);
    out.push_str(&format!(
        "critical path: {} us across {} spans; top {} frames by self time\n",
        cp.total_us,
        cp.steps.len(),
        hottest.len()
    ));
    out.push_str(&format!(
        "{:<6} {:<36} {:>14} {:>14} {:>7}\n",
        "depth", "span", "dur_us", "self_us", "share%"
    ));
    for step in hottest {
        let span = &tree.spans[step.span];
        let share = if cp.total_us == 0 {
            0.0
        } else {
            step.self_us as f64 / cp.total_us as f64 * 100.0
        };
        out.push_str(&format!(
            "{:<6} {:<36} {:>14} {:>14} {:>7.1}\n",
            step.depth,
            span.frame(),
            span.dur_us,
            step.self_us,
            share
        ));
    }
    render_attribution(tree, &cp, &mut out);
    out
}

/// Renders the critical path as one deterministic JSON object
/// (`schema: hc-trace-critical-path-v1`). With `top`, only the hottest
/// steps by self time are listed (rank order); the attribution section
/// always covers the whole path. A span-free trace yields an empty
/// document rather than an error, so pipelines can probe traces.
#[must_use]
pub fn critical_path_json(tree: &SpanTree, top: Option<usize>) -> String {
    let mut total_us = 0u64;
    let mut path_spans = 0u64;
    let mut steps = Vec::new();
    let mut attribution = Vec::new();
    if let Some(cp) = critical_path(tree) {
        total_us = cp.total_us;
        path_spans = cp.steps.len() as u64;
        let selected: Vec<&CpStep> = match top {
            Some(n) => hottest_steps(&cp, n),
            None => cp.steps.iter().collect(),
        };
        for step in selected {
            let span = &tree.spans[step.span];
            steps.push(obj(vec![
                ("depth", u(step.depth as u64)),
                ("frame", s(&span.frame())),
                ("start_us", u(span.start_us)),
                ("dur_us", u(span.dur_us)),
                ("self_us", u(step.self_us)),
            ]));
        }
        for (target, self_us) in critical_path_attribution(tree, &cp) {
            let share = if cp.total_us == 0 {
                0.0
            } else {
                self_us as f64 / cp.total_us as f64
            };
            attribution.push(obj(vec![
                ("target", s(&target)),
                ("self_us", u(self_us)),
                ("share", f(share)),
            ]));
        }
    }
    let doc = obj(vec![
        ("schema", s("hc-trace-critical-path-v1")),
        ("total_us", u(total_us)),
        ("path_spans", u(path_spans)),
        ("steps", Value::Array(steps)),
        ("attribution", Value::Array(attribution)),
    ]);
    let mut out = doc.to_string();
    out.push('\n');
    out
}

// ---------------------------------------------------------------------------
// Flame (folded stacks + top-N self time)
// ---------------------------------------------------------------------------

/// Folds the span tree into flamegraph.pl-style stack lines
/// (`root;child;leaf self_us`), aggregated and sorted by stack.
#[must_use]
pub fn folded_stacks(tree: &SpanTree) -> Vec<(String, u64)> {
    let self_times = tree.self_times();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    // Depth-first, carrying the stack label down.
    let mut work: Vec<(usize, String)> = tree
        .roots()
        .iter()
        .rev()
        .map(|&i| (i, tree.spans[i].frame()))
        .collect();
    while let Some((node, stack)) = work.pop() {
        if self_times[node] > 0 {
            *folded.entry(stack.clone()).or_insert(0) += self_times[node];
        }
        for &child in tree.children(node).iter().rev() {
            work.push((child, format!("{stack};{}", tree.spans[child].frame())));
        }
    }
    folded.into_iter().collect()
}

/// Renders folded stacks as the text consumed by flamegraph tooling.
#[must_use]
pub fn render_folded(tree: &SpanTree) -> String {
    let mut out = String::new();
    for (stack, self_us) in folded_stacks(tree) {
        out.push_str(&format!("{stack} {self_us}\n"));
    }
    out
}

/// Renders the top-`n` frames by aggregate self time.
#[must_use]
pub fn render_flame_top(tree: &SpanTree, n: usize) -> String {
    let self_times = tree.self_times();
    let mut by_frame: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for (i, span) in tree.spans.iter().enumerate() {
        let slot = by_frame.entry(span.frame()).or_insert((0, 0, 0));
        slot.0 += 1;
        slot.1 += span.dur_us;
        slot.2 += self_times[i];
    }
    let mut rows: Vec<(String, (u64, u64, u64))> = by_frame.into_iter().collect();
    rows.sort_by(|a, b| b.1 .2.cmp(&a.1 .2).then(a.0.cmp(&b.0)));
    let mut out = String::new();
    out.push_str(&format!(
        "{:<36} {:>10} {:>14} {:>14}\n",
        "span", "count", "total_us", "self_us"
    ));
    for (frame, (count, total, self_us)) in rows.into_iter().take(n) {
        out.push_str(&format!(
            "{:<36} {:>10} {:>14} {:>14}\n",
            frame, count, total, self_us
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Timeseries
// ---------------------------------------------------------------------------

/// Windowed counter/gauge/histogram aggregation over sim-time.
/// Counters sum their deltas per window, gauges keep the last level
/// seen in the window (in record order), histograms keep count and sum.
#[derive(Debug)]
pub struct TimeSeriesAcc {
    window_us: u64,
    counters: BTreeMap<String, BTreeMap<u64, u64>>,
    gauges: BTreeMap<String, BTreeMap<u64, f64>>,
    hists: BTreeMap<String, BTreeMap<u64, (u64, f64)>>,
}

impl TimeSeriesAcc {
    /// A fresh accumulator with the given window length (0 is clamped
    /// to 1).
    #[must_use]
    pub fn new(window_us: u64) -> Self {
        TimeSeriesAcc {
            window_us: window_us.max(1),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    /// Folds one record in (spans and events are ignored — they belong
    /// to the tree passes).
    pub fn add(&mut self, r: &Record) {
        let w = r.t_us / self.window_us;
        match &r.data {
            RecordData::Counter { name, delta } => {
                *self
                    .counters
                    .entry(name.clone())
                    .or_default()
                    .entry(w)
                    .or_insert(0) += delta;
            }
            RecordData::Gauge { name, value } => {
                self.gauges
                    .entry(name.clone())
                    .or_default()
                    .insert(w, *value);
            }
            RecordData::Observe { name, value } => {
                let slot = self
                    .hists
                    .entry(name.clone())
                    .or_default()
                    .entry(w)
                    .or_insert((0, 0.0));
                slot.0 += 1;
                slot.1 += value;
            }
            RecordData::Span { .. } | RecordData::Event { .. } => {}
        }
    }

    /// Renders the windowed report as fixed-width text.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("timeseries window={} us\n", self.window_us));
        for (name, windows) in &self.counters {
            out.push_str(&format!("counter {name}\n"));
            for (w, total) in windows {
                out.push_str(&format!(
                    "  w{:<6} t={:<16} +{}\n",
                    w,
                    w * self.window_us,
                    total
                ));
            }
        }
        for (name, windows) in &self.gauges {
            out.push_str(&format!("gauge {name}\n"));
            for (w, last) in windows {
                out.push_str(&format!(
                    "  w{:<6} t={:<16} {}\n",
                    w,
                    w * self.window_us,
                    last
                ));
            }
        }
        for (name, windows) in &self.hists {
            out.push_str(&format!("histogram {name}\n"));
            for (w, (count, sum)) in windows {
                let mean = if *count == 0 {
                    0.0
                } else {
                    sum / *count as f64
                };
                out.push_str(&format!(
                    "  w{:<6} t={:<16} count={} mean={}\n",
                    w,
                    w * self.window_us,
                    count,
                    mean
                ));
            }
        }
        out
    }

    /// Renders the windowed report as a single JSON object.
    #[must_use]
    pub fn render_json(&self) -> String {
        let windows_obj = |windows: &BTreeMap<u64, Value>| -> Value {
            Value::Object(
                windows
                    .iter()
                    .map(|(w, v)| (w.to_string(), v.clone()))
                    .collect(),
            )
        };
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(name, ws)| {
                    let ws: BTreeMap<u64, Value> = ws.iter().map(|(w, v)| (*w, u(*v))).collect();
                    (name.clone(), windows_obj(&ws))
                })
                .collect(),
        );
        let gauges = Value::Object(
            self.gauges
                .iter()
                .map(|(name, ws)| {
                    let ws: BTreeMap<u64, Value> = ws.iter().map(|(w, v)| (*w, f(*v))).collect();
                    (name.clone(), windows_obj(&ws))
                })
                .collect(),
        );
        let hists = Value::Object(
            self.hists
                .iter()
                .map(|(name, ws)| {
                    let ws: BTreeMap<u64, Value> = ws
                        .iter()
                        .map(|(w, (count, sum))| {
                            (*w, obj(vec![("count", u(*count)), ("sum", f(*sum))]))
                        })
                        .collect();
                    (name.clone(), windows_obj(&ws))
                })
                .collect(),
        );
        let doc = obj(vec![
            ("schema", s("hc-trace-timeseries-v1")),
            ("window_us", u(self.window_us)),
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", hists),
        ]);
        let mut out = doc.to_string();
        out.push('\n');
        out
    }
}

// ---------------------------------------------------------------------------
// Derived metrics (summary, serialization, diff)
// ---------------------------------------------------------------------------

/// Log2-bucket quantile sketch: deterministic, order-independent, and
/// mergeable — quantile estimates are bucket midpoints, so they carry
/// at most a 2× relative error, which is plenty for a ratchet gate.
#[derive(Debug, Clone, Default, PartialEq)]
struct Sketch {
    /// Samples `<= 0` (and non-finite ones, which should not occur).
    zeros: u64,
    /// Positive samples bucketed by binary exponent.
    buckets: BTreeMap<i32, u64>,
    count: u64,
}

impl Sketch {
    fn add(&mut self, v: f64) {
        self.count += 1;
        if v > 0.0 && v.is_finite() {
            // Pure bit math (no libm): the IEEE-754 exponent field.
            let exp = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
            *self.buckets.entry(exp).or_insert(0) += 1;
        } else {
            self.zeros += 1;
        }
    }

    /// Nearest-rank quantile estimate: the midpoint `1.5 * 2^exp` of
    /// the bucket holding the ranked sample.
    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.zeros;
        if rank <= seen {
            return 0.0;
        }
        for (exp, n) in &self.buckets {
            seen += n;
            if rank <= seen {
                // 1.5 * 2^exp, built bitwise for determinism.
                let bits = (((exp + 1023) as u64) << 52) | (1u64 << 51);
                return f64::from_bits(bits);
            }
        }
        0.0
    }
}

/// Aggregate over all spans sharing one `target/name` frame.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanDerived {
    /// Number of spans.
    pub count: u64,
    /// Summed durations.
    pub total_us: u64,
    /// Summed self times (duration minus child coverage).
    pub self_us: u64,
    /// Longest single span.
    pub max_us: u64,
}

/// Aggregate over one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistDerived {
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median estimate (log2-bucket midpoint).
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

/// Aggregate over one gauge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeDerived {
    /// Last level, in record order.
    pub last: f64,
    /// Smallest level.
    pub min: f64,
    /// Largest level.
    pub max: f64,
}

/// The derived-metrics summary: every deterministic, layout-invariant
/// aggregate the trace supports. This is what the CI trace gate
/// freezes and diffs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DerivedMetrics {
    /// Span aggregates keyed by `target/name`.
    pub spans: BTreeMap<String, SpanDerived>,
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Gauge summaries.
    pub gauges: BTreeMap<String, GaugeDerived>,
    /// Histogram summaries with quantile estimates.
    pub histograms: BTreeMap<String, HistDerived>,
}

#[derive(Debug)]
struct HistAcc {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    sketch: Sketch,
}

/// Streaming accumulator for [`DerivedMetrics`]. Feed records in
/// emission order; memory stays bounded by the number of metric names
/// plus the currently *open* scope spans (children always precede
/// their parent in the stream, so child-coverage accumulators retire
/// as soon as the parent's record arrives).
#[derive(Debug, Default)]
pub struct DeriveAcc {
    spans: BTreeMap<String, SpanDerived>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeDerived>,
    hists: BTreeMap<String, HistAcc>,
    /// `(track, parent id)` → intervals of already-seen children.
    pending: BTreeMap<(u32, u64), Vec<(u64, u64)>>,
}

/// Coalesces an interval list in place (sort + merge overlapping).
fn normalize(intervals: &mut Vec<(u64, u64)>) {
    intervals.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for &(a, b) in intervals.iter() {
        match merged.last_mut() {
            Some((_, hi)) if a <= *hi => *hi = (*hi).max(b),
            _ => merged.push((a, b)),
        }
    }
    *intervals = merged;
}

impl DeriveAcc {
    /// A fresh accumulator.
    #[must_use]
    pub fn new() -> Self {
        DeriveAcc::default()
    }

    /// Folds one record in.
    pub fn add(&mut self, r: &Record) {
        match &r.data {
            RecordData::Span {
                target,
                name,
                dur_us,
                id,
                parent,
                ..
            } => {
                let start = r.t_us;
                let end = start.saturating_add(*dur_us);
                if *parent != 0 {
                    let slot = self.pending.entry((r.track, *parent)).or_default();
                    slot.push((start, end));
                    if slot.len() >= 1024 {
                        normalize(slot);
                    }
                }
                let covered = if *id == 0 {
                    0
                } else {
                    self.pending
                        .remove(&(r.track, *id))
                        .map(|kids| coverage(&kids, start, end))
                        .unwrap_or(0)
                };
                if is_layout(target) {
                    return;
                }
                let slot = self.spans.entry(format!("{target}/{name}")).or_default();
                slot.count += 1;
                slot.total_us += dur_us;
                slot.self_us += dur_us.saturating_sub(covered);
                slot.max_us = slot.max_us.max(*dur_us);
            }
            RecordData::Counter { name, delta } => {
                if is_layout(name) {
                    return;
                }
                *self.counters.entry(name.clone()).or_insert(0) += delta;
            }
            RecordData::Gauge { name, value } => {
                if is_layout(name) {
                    return;
                }
                self.gauges
                    .entry(name.clone())
                    .and_modify(|g| {
                        g.last = *value;
                        g.min = g.min.min(*value);
                        g.max = g.max.max(*value);
                    })
                    .or_insert(GaugeDerived {
                        last: *value,
                        min: *value,
                        max: *value,
                    });
            }
            RecordData::Observe { name, value } => {
                if is_layout(name) {
                    return;
                }
                let slot = self.hists.entry(name.clone()).or_insert(HistAcc {
                    count: 0,
                    sum: 0.0,
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                    sketch: Sketch::default(),
                });
                slot.count += 1;
                slot.sum += value;
                slot.min = slot.min.min(*value);
                slot.max = slot.max.max(*value);
                slot.sketch.add(*value);
            }
            RecordData::Event { .. } => {}
        }
    }

    /// Finishes the fold.
    #[must_use]
    pub fn finish(self) -> DerivedMetrics {
        DerivedMetrics {
            spans: self.spans,
            counters: self.counters,
            gauges: self.gauges,
            histograms: self
                .hists
                .into_iter()
                .map(|(name, h)| {
                    (
                        name,
                        HistDerived {
                            count: h.count,
                            sum: h.sum,
                            min: h.min,
                            max: h.max,
                            p50: h.sketch.quantile(0.50),
                            p90: h.sketch.quantile(0.90),
                            p99: h.sketch.quantile(0.99),
                        },
                    )
                })
                .collect(),
        }
    }
}

impl DerivedMetrics {
    /// Serializes to the frozen-baseline JSON document (single object,
    /// stable key order, trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let spans = Value::Object(
            self.spans
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        obj(vec![
                            ("count", u(v.count)),
                            ("total_us", u(v.total_us)),
                            ("self_us", u(v.self_us)),
                            ("max_us", u(v.max_us)),
                        ]),
                    )
                })
                .collect(),
        );
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), u(*v)))
                .collect(),
        );
        let gauges = Value::Object(
            self.gauges
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        obj(vec![
                            ("last", f(v.last)),
                            ("min", f(v.min)),
                            ("max", f(v.max)),
                        ]),
                    )
                })
                .collect(),
        );
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        obj(vec![
                            ("count", u(v.count)),
                            ("sum", f(v.sum)),
                            ("min", f(v.min)),
                            ("max", f(v.max)),
                            ("p50", f(v.p50)),
                            ("p90", f(v.p90)),
                            ("p99", f(v.p99)),
                        ]),
                    )
                })
                .collect(),
        );
        let doc = obj(vec![
            ("schema", s("hc-trace-derived-v1")),
            ("spans", spans),
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ]);
        let mut out = doc.to_string();
        out.push('\n');
        out
    }

    /// Parses a document produced by [`DerivedMetrics::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a reason message on malformed or wrong-schema input.
    pub fn from_json(text: &str) -> Result<DerivedMetrics, String> {
        let doc: Value = serde_json::from_str(text.trim()).map_err(|e| e.to_string())?;
        let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != "hc-trace-derived-v1" {
            return Err(format!("unexpected schema `{schema}`"));
        }
        let section = |key: &str| -> Result<&[(String, Value)], String> {
            doc.get(key)
                .and_then(Value::as_object)
                .map(Vec::as_slice)
                .ok_or_else(|| format!("missing section `{key}`"))
        };
        let want_u = |v: &Value, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing integer `{key}`"))
        };
        let want_f = |v: &Value, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing number `{key}`"))
        };
        let mut out = DerivedMetrics::default();
        for (k, v) in section("spans")? {
            out.spans.insert(
                k.clone(),
                SpanDerived {
                    count: want_u(v, "count")?,
                    total_us: want_u(v, "total_us")?,
                    self_us: want_u(v, "self_us")?,
                    max_us: want_u(v, "max_us")?,
                },
            );
        }
        for (k, v) in section("counters")? {
            let v = v.as_u64().ok_or_else(|| format!("bad counter `{k}`"))?;
            out.counters.insert(k.clone(), v);
        }
        for (k, v) in section("gauges")? {
            out.gauges.insert(
                k.clone(),
                GaugeDerived {
                    last: want_f(v, "last")?,
                    min: want_f(v, "min")?,
                    max: want_f(v, "max")?,
                },
            );
        }
        for (k, v) in section("histograms")? {
            out.histograms.insert(
                k.clone(),
                HistDerived {
                    count: want_u(v, "count")?,
                    sum: want_f(v, "sum")?,
                    min: want_f(v, "min")?,
                    max: want_f(v, "max")?,
                    p50: want_f(v, "p50")?,
                    p90: want_f(v, "p90")?,
                    p99: want_f(v, "p99")?,
                },
            );
        }
        Ok(out)
    }
}

/// One metric whose relative delta exceeded the threshold (or that was
/// present on only one side).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Qualified metric name, e.g. `span:sim.par/task.self_us`.
    pub metric: String,
    /// Baseline value (`NaN` when missing).
    pub baseline: f64,
    /// Current value (`NaN` when missing).
    pub current: f64,
    /// Relative delta `|a - b| / max(|a|, |b|)`; infinite when a side
    /// is missing.
    pub rel: f64,
}

/// Outcome of a derived-metrics comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Number of scalar metrics compared.
    pub checked: usize,
    /// The relative threshold used.
    pub max_rel: f64,
    /// Metrics over threshold, in name order.
    pub failures: Vec<DiffEntry>,
}

impl DiffReport {
    /// True when every metric stayed within the threshold.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the human-readable verdict.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for e in &self.failures {
            out.push_str(&format!(
                "  {} baseline={} current={} rel={}\n",
                e.metric, e.baseline, e.current, e.rel
            ));
        }
        out.push_str(&format!(
            "trace diff: {} metrics checked, {} over threshold (max-rel {}) -> {}\n",
            self.checked,
            self.failures.len(),
            self.max_rel,
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// Renders the machine-readable verdict.
    #[must_use]
    pub fn render_json(&self) -> String {
        let failures = Value::Array(
            self.failures
                .iter()
                .map(|e| {
                    obj(vec![
                        ("metric", s(&e.metric)),
                        ("baseline", f(e.baseline)),
                        ("current", f(e.current)),
                        ("rel", f(e.rel)),
                    ])
                })
                .collect(),
        );
        let doc = obj(vec![
            ("schema", s("hc-trace-diff-v1")),
            ("verdict", s(if self.passed() { "pass" } else { "fail" })),
            ("max_rel", f(self.max_rel)),
            ("checked", u(self.checked as u64)),
            ("failures", failures),
        ]);
        let mut out = doc.to_string();
        out.push('\n');
        out
    }
}

fn rel_delta(a: f64, b: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    if a.is_nan() || b.is_nan() {
        return f64::INFINITY;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

/// Compares two derived summaries metric-by-metric. A metric present
/// on only one side always fails; otherwise it fails when the relative
/// delta exceeds `max_rel`.
#[must_use]
pub fn diff(baseline: &DerivedMetrics, current: &DerivedMetrics, max_rel: f64) -> DiffReport {
    let mut checked = 0;
    let mut failures = Vec::new();
    let mut compare = |metric: String, a: Option<f64>, b: Option<f64>| {
        checked += 1;
        let (a, b) = (a.unwrap_or(f64::NAN), b.unwrap_or(f64::NAN));
        let rel = rel_delta(a, b);
        if rel > max_rel {
            failures.push(DiffEntry {
                metric,
                baseline: a,
                current: b,
                rel,
            });
        }
    };
    fn union_keys<'a, A, B>(
        a: &'a BTreeMap<String, A>,
        b: &'a BTreeMap<String, B>,
    ) -> Vec<&'a String> {
        let mut keys: Vec<&String> = a.keys().chain(b.keys()).collect();
        keys.sort();
        keys.dedup();
        keys
    }
    for key in union_keys(&baseline.spans, &current.spans) {
        let (a, b) = (baseline.spans.get(key), current.spans.get(key));
        for (field, get) in [
            (
                "count",
                (|v: &SpanDerived| v.count as f64) as fn(&SpanDerived) -> f64,
            ),
            ("total_us", |v| v.total_us as f64),
            ("self_us", |v| v.self_us as f64),
            ("max_us", |v| v.max_us as f64),
        ] {
            compare(format!("span:{key}.{field}"), a.map(get), b.map(get));
        }
    }
    for key in union_keys(&baseline.counters, &current.counters) {
        compare(
            format!("counter:{key}"),
            baseline.counters.get(key).map(|&v| v as f64),
            current.counters.get(key).map(|&v| v as f64),
        );
    }
    for key in union_keys(&baseline.gauges, &current.gauges) {
        let (a, b) = (baseline.gauges.get(key), current.gauges.get(key));
        for (field, get) in [
            (
                "last",
                (|v: &GaugeDerived| v.last) as fn(&GaugeDerived) -> f64,
            ),
            ("min", |v| v.min),
            ("max", |v| v.max),
        ] {
            compare(format!("gauge:{key}.{field}"), a.map(get), b.map(get));
        }
    }
    for key in union_keys(&baseline.histograms, &current.histograms) {
        let (a, b) = (baseline.histograms.get(key), current.histograms.get(key));
        for (field, get) in [
            (
                "count",
                (|v: &HistDerived| v.count as f64) as fn(&HistDerived) -> f64,
            ),
            ("sum", |v| v.sum),
            ("p50", |v| v.p50),
            ("p90", |v| v.p90),
            ("p99", |v| v.p99),
            ("min", |v| v.min),
            ("max", |v| v.max),
        ] {
            compare(format!("hist:{key}.{field}"), a.map(get), b.map(get));
        }
    }
    DiffReport {
        checked,
        max_rel,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Trace;
    use crate::collector::{counter, enter, gauge, observe, record_scope, span, span_on_track};

    fn demo_trace() -> Trace {
        let ((), trace) = record_scope(0, || {
            let root = enter("demo", "run", 0);
            let phase = enter("demo", "phase", 10);
            span("demo", "work", 10, 40, &[]);
            span("demo", "work", 50, 60, &[]);
            phase.exit(70, &[]);
            counter("demo.requests", 15, 2);
            counter("demo.requests", 75, 3);
            gauge("demo.queue", 20, 4.0);
            observe("demo.latency", 30, 8.0);
            observe("demo.latency", 80, 2.0);
            span_on_track(5, "layout.demo", "lane", 0, 50, &[]);
            root.exit(100, &[]);
        });
        trace
    }

    #[test]
    fn tree_links_children_and_computes_self_times() {
        let trace = demo_trace();
        let tree = SpanTree::from_records(&trace.records);
        // Spans in record order: work, work, phase, lane, root.
        assert_eq!(tree.spans.len(), 5);
        let self_times = tree.self_times();
        let phase = tree
            .spans
            .iter()
            .position(|s| s.name == "phase")
            .expect("phase span");
        // phase [10,70] minus work [10,40] and [50,60] = 30+10 covered.
        assert_eq!(tree.spans[phase].dur_us, 60);
        assert_eq!(self_times[phase], 20);
        let root = tree
            .spans
            .iter()
            .position(|s| s.name == "run")
            .expect("run");
        // root [0,100] minus phase [10,70].
        assert_eq!(self_times[root], 40);
        assert_eq!(tree.children(root), &[phase]);
    }

    #[test]
    fn critical_path_descends_the_longest_chain() {
        let trace = demo_trace();
        let tree = SpanTree::from_records(&trace.records);
        let cp = critical_path(&tree).expect("has spans");
        assert_eq!(cp.total_us, 100);
        let names: Vec<&str> = cp
            .steps
            .iter()
            .map(|s| tree.spans[s.span].name.as_str())
            .collect();
        // run (100) -> phase (60) -> first work (30).
        assert_eq!(names, vec!["run", "phase", "work"]);
        let attr = critical_path_attribution(&tree, &cp);
        assert_eq!(attr.len(), 1);
        assert_eq!(attr[0].0, "demo");
        // 40 (run) + 20 (phase) + 30 (work).
        assert_eq!(attr[0].1, 90);
    }

    #[test]
    fn critical_path_top_ranks_steps_by_self_time() {
        let trace = demo_trace();
        let tree = SpanTree::from_records(&trace.records);
        let text = render_critical_path_top(&tree, 2);
        assert!(text.contains("top 2 frames by self time"));
        // Self times on the path: run 40, work 30, phase 20 — the
        // truncated listing keeps run and work, drops phase.
        let run_pos = text.find("demo/run").expect("run listed");
        let work_pos = text.find("demo/work").expect("work listed");
        assert!(run_pos < work_pos);
        // phase only survives in the attribution section's target total.
        assert!(!text.contains("demo/phase"));
        // Asking for more frames than the path has lists them all.
        let full = render_critical_path_top(&tree, 10);
        assert!(full.contains("top 3 frames by self time"));
    }

    #[test]
    fn critical_path_json_is_deterministic_and_truncatable() {
        let trace = demo_trace();
        let tree = SpanTree::from_records(&trace.records);
        let doc = critical_path_json(&tree, None);
        assert!(doc.contains("\"hc-trace-critical-path-v1\""));
        assert!(doc.ends_with('\n'));
        let parsed: Value = serde_json::from_str(&doc).expect("valid JSON");
        let field = |v: &Value, k: &str| v.get(k).cloned().expect("field");
        let item = |v: &Value, k: &str, i: usize| v.get(k).unwrap().as_array().unwrap()[i].clone();
        assert_eq!(field(&parsed, "total_us").as_u64(), Some(100));
        assert_eq!(field(&parsed, "path_spans").as_u64(), Some(3));
        assert_eq!(field(&parsed, "steps").as_array().map(Vec::len), Some(3));
        // Untruncated steps keep path (depth) order, not rank order.
        let first = item(&parsed, "steps", 0);
        assert_eq!(field(&first, "frame").as_str(), Some("demo/run"));
        assert_eq!(field(&first, "self_us").as_u64(), Some(40));
        let attr = item(&parsed, "attribution", 0);
        assert_eq!(field(&attr, "target").as_str(), Some("demo"));
        assert_eq!(field(&attr, "self_us").as_u64(), Some(90));
        assert_eq!(field(&attr, "share").as_f64(), Some(0.9));
        // Truncation ranks by self time: run (40) then work (30).
        let top: Value =
            serde_json::from_str(&critical_path_json(&tree, Some(2))).expect("valid JSON");
        assert_eq!(field(&top, "steps").as_array().map(Vec::len), Some(2));
        let second = item(&top, "steps", 1);
        assert_eq!(field(&second, "frame").as_str(), Some("demo/work"));
        // path_spans still reports the full path length.
        assert_eq!(field(&top, "path_spans").as_u64(), Some(3));
        // An empty tree degrades to an empty document, exit 0.
        let empty = SpanTree::from_records(&[]);
        let doc: Value =
            serde_json::from_str(&critical_path_json(&empty, None)).expect("valid JSON");
        assert_eq!(field(&doc, "total_us").as_u64(), Some(0));
        assert_eq!(field(&doc, "steps").as_array().map(Vec::len), Some(0));
    }

    #[test]
    fn folded_stacks_sum_self_time_per_stack() {
        let trace = demo_trace();
        let tree = SpanTree::from_records(&trace.records);
        let folded = folded_stacks(&tree);
        let get = |stack: &str| {
            folded
                .iter()
                .find(|(s, _)| s == stack)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(get("demo/run"), 40);
        assert_eq!(get("demo/run;demo/phase"), 20);
        assert_eq!(get("demo/run;demo/phase;demo/work"), 40);
        assert_eq!(get("layout.demo/lane"), 50);
        // Every line ends up in the rendered folded output.
        let text = render_folded(&tree);
        assert!(text.contains("demo/run;demo/phase;demo/work 40\n"));
    }

    #[test]
    fn timeseries_windows_counters_gauges_and_histograms() {
        let trace = demo_trace();
        let mut acc = TimeSeriesAcc::new(50);
        for r in &trace.records {
            acc.add(r);
        }
        let text = acc.render_text();
        assert!(text.contains("counter demo.requests"));
        // Window 0 has +2, window 1 has +3.
        assert!(text.contains("w0"));
        assert!(text.contains("+2"));
        assert!(text.contains("+3"));
        let json = acc.render_json();
        assert!(json.contains("\"hc-trace-timeseries-v1\""));
        assert!(json.contains("\"demo.latency\""));
    }

    #[test]
    fn derived_metrics_exclude_layout_and_round_trip() {
        let trace = demo_trace();
        let mut acc = DeriveAcc::new();
        for r in &trace.records {
            acc.add(r);
        }
        let derived = acc.finish();
        assert!(derived.spans.contains_key("demo/run"));
        assert!(!derived.spans.keys().any(|k| k.starts_with("layout.")));
        let work = derived.spans.get("demo/work").expect("work agg");
        assert_eq!(work.count, 2);
        assert_eq!(work.total_us, 40);
        assert_eq!(work.self_us, 40);
        assert_eq!(work.max_us, 30);
        let run = derived.spans.get("demo/run").expect("run agg");
        assert_eq!(run.self_us, 40);
        assert_eq!(derived.counters.get("demo.requests"), Some(&5));
        let lat = derived.histograms.get("demo.latency").expect("hist");
        assert_eq!(lat.count, 2);
        assert_eq!(lat.sum, 10.0);
        // 8.0 is in bucket exp=3 -> midpoint 12; 2.0 in exp=1 -> 3.
        assert_eq!(lat.p50, 3.0);
        assert_eq!(lat.p99, 12.0);
        let back = DerivedMetrics::from_json(&derived.to_json()).expect("parses");
        assert_eq!(back, derived);
    }

    #[test]
    fn diff_passes_on_identical_and_fails_on_drift() {
        let trace = demo_trace();
        let mut acc = DeriveAcc::new();
        for r in &trace.records {
            acc.add(r);
        }
        let a = acc.finish();
        let report = diff(&a, &a, 0.0);
        assert!(report.passed());
        assert!(report.checked > 0);
        let mut b = a.clone();
        b.counters.insert("demo.requests".to_string(), 50);
        let report = diff(&a, &b, 0.5);
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].metric, "counter:demo.requests");
        let json = report.render_json();
        assert!(json.contains("\"verdict\":\"fail\""));
        let text = report.render_text();
        assert!(text.contains("FAIL"));
    }

    #[test]
    fn missing_metrics_always_fail_the_diff() {
        let mut a = DerivedMetrics::default();
        a.counters.insert("only.a".to_string(), 1);
        let b = DerivedMetrics::default();
        let report = diff(&a, &b, 1000.0);
        assert!(!report.passed());
        assert!(report.failures[0].rel.is_infinite());
    }

    #[test]
    fn sketch_quantiles_are_monotone_and_bounded() {
        let mut sk = Sketch::default();
        for v in [0.5, 1.0, 2.0, 4.0, 100.0, 1000.0] {
            sk.add(v);
        }
        let (p50, p90, p99) = (sk.quantile(0.5), sk.quantile(0.9), sk.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99);
        // Estimates stay within 2x of the true quantile's bucket.
        assert!((512.0..=2048.0).contains(&p99));
    }
}
