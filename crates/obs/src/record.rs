//! Trace records — the unit of observation.
//!
//! Every record carries a `track` (which logical lane it belongs to:
//! `0` for the recording scope itself, `index + 1` for parallel
//! replication tasks) and a sim-time timestamp in microsecond ticks.
//! Fields are a `BTreeMap`, so serialized records have a stable key
//! order and traces compare byte-for-byte.

use std::collections::BTreeMap;

/// A single structured field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (counts, ids, tick values).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point measurement.
    F64(f64),
    /// Short string label.
    Str(String),
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Ordered field map; `BTreeMap` keeps serialization deterministic.
pub type Fields = BTreeMap<String, FieldValue>;

/// Builds a [`Fields`] map from a slice of `(key, value)` pairs.
#[must_use]
pub fn fields_from(pairs: &[(&str, FieldValue)]) -> Fields {
    pairs
        .iter()
        .map(|(k, v)| ((*k).to_string(), v.clone()))
        .collect()
}

/// One observation in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Logical track: `0` for the recording scope itself, `index + 1`
    /// for parallel replication tasks. Maps to `tid` in Chrome traces.
    pub track: u32,
    /// Sim-time microsecond timestamp (span *start* for spans).
    pub t_us: u64,
    /// What was observed.
    pub data: RecordData,
}

/// The observation payload.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordData {
    /// A completed sim-time span (recorded at close, so no wall clock
    /// is ever involved).
    Span {
        /// Subsystem that emitted the span (`sim`, `core`, `games`, …).
        target: String,
        /// Span name within the target.
        name: String,
        /// Sim-time duration in microsecond ticks.
        dur_us: u64,
        /// Stable span id, unique within the emitting collector and
        /// assigned in scope-open / leaf-emission order starting at 1
        /// (0 on pre-tree traces). Ids are only meaningful *within* a
        /// track: two tracks may reuse the same id values.
        id: u64,
        /// Id of the enclosing scope span on the same track (0 = root).
        parent: u64,
        /// Structured fields.
        fields: Fields,
    },
    /// An instantaneous structured event.
    Event {
        /// Subsystem that emitted the event.
        target: String,
        /// Event name within the target.
        name: String,
        /// Structured fields.
        fields: Fields,
    },
    /// A monotone counter increment.
    Counter {
        /// Counter name.
        name: String,
        /// Amount added.
        delta: u64,
    },
    /// A point-in-time gauge level.
    Gauge {
        /// Gauge name.
        name: String,
        /// Observed level.
        value: f64,
    },
    /// One histogram sample.
    Observe {
        /// Histogram name.
        name: String,
        /// Sampled value.
        value: f64,
    },
}

impl Record {
    /// The record's end time: `start + duration` for spans, the
    /// timestamp itself for everything else.
    #[must_use]
    pub fn end_us(&self) -> u64 {
        match &self.data {
            RecordData::Span { dur_us, .. } => self.t_us.saturating_add(*dur_us),
            _ => self.t_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_end_is_start_plus_duration() {
        let r = Record {
            track: 0,
            t_us: 10,
            data: RecordData::Span {
                target: "t".to_string(),
                name: "n".to_string(),
                dur_us: 5,
                id: 1,
                parent: 0,
                fields: Fields::new(),
            },
        };
        assert_eq!(r.end_us(), 15);
    }

    #[test]
    fn non_span_end_is_the_timestamp() {
        let r = Record {
            track: 1,
            t_us: 42,
            data: RecordData::Counter {
                name: "c".to_string(),
                delta: 3,
            },
        };
        assert_eq!(r.end_us(), 42);
    }

    #[test]
    fn fields_from_sorts_by_key() {
        let f = fields_from(&[("zeta", 1u64.into()), ("alpha", true.into())]);
        let keys: Vec<&str> = f.keys().map(String::as_str).collect();
        assert_eq!(keys, vec!["alpha", "zeta"]);
    }
}
