//! # hc-obs — deterministic sim-time observability
//!
//! Spans, structured events and a metrics registry for the
//! human-computation workspace, keyed on **sim-time** (microsecond
//! ticks), never wall-clock — so the layer itself satisfies the D1
//! determinism rule and a recorded trace is a pure function of the
//! simulation seed.
//!
//! ## Model
//!
//! * Instrumented code *emits* — [`span`], [`event`], [`counter`],
//!   [`gauge`], [`observe`] — and never reads anything back: events are
//!   observed, never consulted, so recording cannot perturb results.
//! * A *recording scope* ([`record_scope`]) installs a collector on the
//!   **current thread**; without one every emit call is a no-op that
//!   returns before allocating. Call sites on hot paths additionally
//!   guard with [`active`] so field construction is skipped too.
//! * Scopes nest (a thread-local stack) and compose across threads: the
//!   parallel replication pool runs each task inside its own scope and
//!   merges the per-task traces back **in index order** via
//!   [`merge_trace`], so the merged trace is byte-identical at any
//!   `--threads` value.
//! * Machine-dependent facts (worker counts, steal counts, wall time)
//!   go through [`machine_stat`] into a separate section that
//!   determinism comparisons exclude.
//!
//! ## Span trees
//!
//! [`enter`] opens a scope span and parents everything emitted until
//! the returned [`SpanScope`] closes; the flat [`span`] stays the leaf
//! emitter. Ids are assigned per collector, so merged traces keep
//! byte-identical trees at any `--threads` / `--shards` value.
//!
//! ## Analysis
//!
//! [`analyze`] turns a record stream into reports: span trees with
//! self times, critical-path extraction, flamegraph folded stacks,
//! windowed sim-time timeseries, and a derived-metrics summary with a
//! thresholded diff — the deterministic core of the CI trace gate.
//!
//! ## Sinks
//!
//! [`sink::jsonl`] renders/parses the line-oriented trace format (the
//! machine section is the final line, so deterministic comparisons drop
//! it trivially); [`sink::chrome`] converts a trace to Chrome
//! trace-event JSON loadable in Perfetto / `chrome://tracing`, mapping
//! sim-time microseconds directly onto the `ts` axis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod collector;
pub mod metrics;
pub mod record;
pub mod sink;

pub use collector::{
    active, counter, counter_now, enter, event, gauge, machine_stat, merge_trace, name_track,
    observe, record_scope, span, span_on_track, SpanScope, Trace,
};
pub use metrics::{GaugeStat, HistStat, MetricsRegistry};
pub use record::{fields_from, FieldValue, Fields, Record, RecordData};
