//! Trace sinks: serialization in and out of [`crate::Trace`].
//!
//! Sinks are the only place observability data is rendered for the
//! outside world, and `crates/obs/src/sink` is the one library path the
//! analyzer's O1 rule exempts from the console-output ban — everything
//! else routes diagnostics through `hc-obs` records. Rendering is
//! hand-rolled over ordered [`serde_json::Value`] objects (never
//! derive), so field order is fixed by construction and golden files
//! stay byte-stable.

pub mod chrome;
pub mod jsonl;

use crate::record::{FieldValue, Fields};
use serde_json::{Number, Value};

/// Builds an insertion-ordered JSON object from `(key, value)` pairs.
pub(crate) fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

pub(crate) fn s(x: &str) -> Value {
    Value::String(x.to_string())
}

pub(crate) fn u(x: u64) -> Value {
    Value::Number(Number::from_u64(x))
}

pub(crate) fn f(x: f64) -> Value {
    Value::Number(Number::from_f64(x))
}

pub(crate) fn field_value(v: &FieldValue) -> Value {
    match v {
        FieldValue::Bool(b) => Value::Bool(*b),
        FieldValue::U64(x) => u(*x),
        FieldValue::I64(x) => Value::Number(Number::from_i64(*x)),
        FieldValue::F64(x) => f(*x),
        FieldValue::Str(x) => s(x),
    }
}

pub(crate) fn fields_value(fields: &Fields) -> Value {
    Value::Object(
        fields
            .iter()
            .map(|(k, v)| (k.clone(), field_value(v)))
            .collect(),
    )
}
