//! Chrome trace-event sink.
//!
//! Converts a [`Trace`] to the Trace Event Format consumed by Perfetto
//! and `chrome://tracing`. Sim-time maps directly onto the `ts` axis:
//! one sim-microsecond tick = one trace microsecond, so a 24-sim-hour
//! campaign renders as a 24-hour timeline. Tracks become `tid`s (track
//! 0 is the recording scope, track `i + 1` is replication task `i`),
//! and named tracks get `thread_name` metadata events so the viewer
//! shows `rep-3` / `shard-1` instead of bare tids.
//!
//! Mapping:
//!
//! * spans → duration begin/end pairs (`"ph":"B"` / `"ph":"E"`) emitted
//!   per track in depth-first span-tree order, so parents open before
//!   their children even when timestamps tie,
//! * structured events → thread-scoped instants (`"ph":"i"`, `"s":"t"`),
//! * counters and gauges → counter events (`"ph":"C"`; counters render
//!   their cumulative total so the counter track is monotone),
//! * histogram samples have no Chrome analog and are left to the
//!   metrics snapshot in the JSONL sink.

use super::{f, fields_value, obj, s, u};
use crate::collector::Trace;
use crate::record::{Fields, RecordData};
use serde_json::Value;
use std::collections::BTreeMap;

struct SpanNode<'t> {
    target: &'t str,
    name: &'t str,
    start_us: u64,
    end_us: u64,
    id: u64,
    parent: u64,
    fields: &'t Fields,
}

fn begin_event(tid: &Value, node: &SpanNode<'_>) -> Value {
    obj(vec![
        ("name", s(node.name)),
        ("cat", s(node.target)),
        ("ph", s("B")),
        ("ts", u(node.start_us)),
        ("pid", u(0)),
        ("tid", tid.clone()),
        ("args", fields_value(node.fields)),
    ])
}

fn end_event(tid: &Value, node: &SpanNode<'_>) -> Value {
    obj(vec![
        ("ph", s("E")),
        ("ts", u(node.end_us)),
        ("pid", u(0)),
        ("tid", tid.clone()),
    ])
}

/// Emits one track's spans as properly nested B/E pairs: roots in
/// emission order, children (sorted by start time, then emission order)
/// opened inside their parent — depth-first, iteratively.
fn emit_track_spans(track: u32, nodes: &[SpanNode<'_>], events: &mut Vec<Value>) {
    let tid = u(u64::from(track));
    let mut index_of: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.id != 0 {
            index_of.insert(n.id, i);
        }
    }
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        match index_of.get(&n.parent) {
            Some(&p) if n.parent != 0 && p != i => children[p].push(i),
            _ => roots.push(i),
        }
    }
    let by_start = |order: &mut Vec<usize>| {
        order.sort_by_key(|&i| (nodes[i].start_us, i));
    };
    roots.sort_by_key(|&i| (nodes[i].start_us, i));
    for kids in &mut children {
        by_start(kids);
    }
    // Explicit stack: (node, next-child cursor); push B on first visit,
    // E once every child has been emitted.
    for root in roots {
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        events.push(begin_event(&tid, &nodes[root]));
        while let Some((node, cursor)) = stack.pop() {
            if let Some(&child) = children[node].get(cursor) {
                stack.push((node, cursor + 1));
                stack.push((child, 0));
                events.push(begin_event(&tid, &nodes[child]));
            } else {
                events.push(end_event(&tid, &nodes[node]));
            }
        }
    }
}

/// Renders the trace as a single JSON object document
/// (`{"traceEvents": […], "displayTimeUnit": "ms"}`).
#[must_use]
pub fn render(trace: &Trace) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(trace.records.len() * 2);
    for (track, name) in &trace.track_names {
        events.push(obj(vec![
            ("name", s("thread_name")),
            ("ph", s("M")),
            ("pid", u(0)),
            ("tid", u(u64::from(*track))),
            ("args", obj(vec![("name", s(name))])),
        ]));
    }
    // Span-tree pass: group spans by track, emit nested B/E pairs.
    let mut spans_by_track: BTreeMap<u32, Vec<SpanNode<'_>>> = BTreeMap::new();
    for r in &trace.records {
        if let RecordData::Span {
            target,
            name,
            dur_us,
            id,
            parent,
            fields,
        } = &r.data
        {
            spans_by_track.entry(r.track).or_default().push(SpanNode {
                target,
                name,
                start_us: r.t_us,
                end_us: r.t_us.saturating_add(*dur_us),
                id: *id,
                parent: *parent,
                fields,
            });
        }
    }
    for (track, nodes) in &spans_by_track {
        emit_track_spans(*track, nodes, &mut events);
    }
    // Instant/counter pass, in record order.
    let mut cumulative: BTreeMap<&str, u64> = BTreeMap::new();
    for r in &trace.records {
        let ts = u(r.t_us);
        let tid = u(u64::from(r.track));
        match &r.data {
            RecordData::Span { .. } => {}
            RecordData::Event {
                target,
                name,
                fields,
            } => events.push(obj(vec![
                ("name", s(name)),
                ("cat", s(target)),
                ("ph", s("i")),
                ("ts", ts),
                ("pid", u(0)),
                ("tid", tid),
                ("s", s("t")),
                ("args", fields_value(fields)),
            ])),
            RecordData::Counter { name, delta } => {
                let slot = cumulative.entry(name.as_str()).or_insert(0);
                *slot = slot.saturating_add(*delta);
                let total = *slot;
                events.push(obj(vec![
                    ("name", s(name)),
                    ("ph", s("C")),
                    ("ts", ts),
                    ("pid", u(0)),
                    ("tid", tid),
                    ("args", obj(vec![("value", u(total))])),
                ]));
            }
            RecordData::Gauge { name, value } => events.push(obj(vec![
                ("name", s(name)),
                ("ph", s("C")),
                ("ts", ts),
                ("pid", u(0)),
                ("tid", tid),
                ("args", obj(vec![("value", f(*value))])),
            ])),
            RecordData::Observe { .. } => {}
        }
    }
    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", s("ms")),
    ]);
    let mut out = doc.to_string();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{counter, enter, event, name_track, record_scope, span};

    #[test]
    fn counters_render_cumulative_totals() {
        let ((), trace) = record_scope(0, || {
            counter("c", 1, 2);
            counter("c", 5, 3);
        });
        let doc: Value = serde_json::from_str(&render(&trace)).expect("valid json");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("events array");
        let totals: Vec<u64> = events
            .iter()
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_u64)
            })
            .collect();
        assert_eq!(totals, vec![2, 5]);
    }

    #[test]
    fn spans_nest_as_begin_end_pairs_in_tree_order() {
        let ((), trace) = record_scope(3, || {
            let root = enter("demo", "root", 0);
            span("demo", "leaf", 10, 50, &[("k", "v".into())]);
            root.exit(60, &[]);
            event("demo", "mark", 20, &[]);
        });
        let doc: Value = serde_json::from_str(&render(&trace)).expect("valid json");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("events array");
        let shape: Vec<(&str, Option<&str>, u64)> = events
            .iter()
            .map(|e| {
                (
                    e.get("ph").and_then(Value::as_str).expect("ph"),
                    e.get("name").and_then(Value::as_str),
                    e.get("ts").and_then(Value::as_u64).expect("ts"),
                )
            })
            .collect();
        assert_eq!(
            shape,
            vec![
                ("B", Some("root"), 0),
                ("B", Some("leaf"), 10),
                ("E", None, 50),
                ("E", None, 60),
                ("i", Some("mark"), 20),
            ]
        );
        assert!(events
            .iter()
            .all(|e| e.get("tid").and_then(Value::as_u64) == Some(3)));
    }

    #[test]
    fn named_tracks_emit_thread_name_metadata() {
        let ((), trace) = record_scope(1, || {
            name_track(1, "rep-0");
            span("demo", "work", 0, 5, &[]);
        });
        let doc: Value = serde_json::from_str(&render(&trace)).expect("valid json");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("events array");
        let meta = &events[0];
        assert_eq!(meta.get("ph").and_then(Value::as_str), Some("M"));
        assert_eq!(
            meta.get("name").and_then(Value::as_str),
            Some("thread_name")
        );
        assert_eq!(
            meta.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str),
            Some("rep-0")
        );
    }
}
