//! Chrome trace-event sink.
//!
//! Converts a [`Trace`] to the Trace Event Format consumed by Perfetto
//! and `chrome://tracing`. Sim-time maps directly onto the `ts` axis:
//! one sim-microsecond tick = one trace microsecond, so a 24-sim-hour
//! campaign renders as a 24-hour timeline. Tracks become `tid`s (track
//! 0 is the recording scope, track `i + 1` is replication task `i`).
//!
//! Mapping:
//!
//! * spans → complete events (`"ph":"X"` with `ts`/`dur`),
//! * structured events → thread-scoped instants (`"ph":"i"`, `"s":"t"`),
//! * counters and gauges → counter events (`"ph":"C"`; counters render
//!   their cumulative total so the counter track is monotone),
//! * histogram samples have no Chrome analog and are left to the
//!   metrics snapshot in the JSONL sink.

use super::{f, fields_value, obj, s, u};
use crate::collector::Trace;
use crate::record::RecordData;
use serde_json::Value;
use std::collections::BTreeMap;

/// Renders the trace as a single JSON object document
/// (`{"traceEvents": […], "displayTimeUnit": "ms"}`).
#[must_use]
pub fn render(trace: &Trace) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(trace.records.len());
    let mut cumulative: BTreeMap<&str, u64> = BTreeMap::new();
    for r in &trace.records {
        let ts = u(r.t_us);
        let tid = u(u64::from(r.track));
        match &r.data {
            RecordData::Span {
                target,
                name,
                dur_us,
                fields,
            } => events.push(obj(vec![
                ("name", s(name)),
                ("cat", s(target)),
                ("ph", s("X")),
                ("ts", ts),
                ("dur", u(*dur_us)),
                ("pid", u(0)),
                ("tid", tid),
                ("args", fields_value(fields)),
            ])),
            RecordData::Event {
                target,
                name,
                fields,
            } => events.push(obj(vec![
                ("name", s(name)),
                ("cat", s(target)),
                ("ph", s("i")),
                ("ts", ts),
                ("pid", u(0)),
                ("tid", tid),
                ("s", s("t")),
                ("args", fields_value(fields)),
            ])),
            RecordData::Counter { name, delta } => {
                let slot = cumulative.entry(name.as_str()).or_insert(0);
                *slot = slot.saturating_add(*delta);
                let total = *slot;
                events.push(obj(vec![
                    ("name", s(name)),
                    ("ph", s("C")),
                    ("ts", ts),
                    ("pid", u(0)),
                    ("tid", tid),
                    ("args", obj(vec![("value", u(total))])),
                ]));
            }
            RecordData::Gauge { name, value } => events.push(obj(vec![
                ("name", s(name)),
                ("ph", s("C")),
                ("ts", ts),
                ("pid", u(0)),
                ("tid", tid),
                ("args", obj(vec![("value", f(*value))])),
            ])),
            RecordData::Observe { .. } => {}
        }
    }
    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", s("ms")),
    ]);
    let mut out = doc.to_string();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{counter, event, record_scope, span};

    #[test]
    fn counters_render_cumulative_totals() {
        let ((), trace) = record_scope(0, || {
            counter("c", 1, 2);
            counter("c", 5, 3);
        });
        let doc: Value = serde_json::from_str(&render(&trace)).expect("valid json");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("events array");
        let totals: Vec<u64> = events
            .iter()
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_u64)
            })
            .collect();
        assert_eq!(totals, vec![2, 5]);
    }

    #[test]
    fn spans_and_events_carry_the_trace_event_shape() {
        let ((), trace) = record_scope(3, || {
            span("demo", "work", 10, 50, &[("k", "v".into())]);
            event("demo", "mark", 20, &[]);
        });
        let doc: Value = serde_json::from_str(&render(&trace)).expect("valid json");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("events array");
        assert_eq!(events.len(), 2);
        let span_ev = &events[0];
        assert_eq!(span_ev.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(span_ev.get("ts").and_then(Value::as_u64), Some(10));
        assert_eq!(span_ev.get("dur").and_then(Value::as_u64), Some(40));
        assert_eq!(span_ev.get("tid").and_then(Value::as_u64), Some(3));
        let inst = &events[1];
        assert_eq!(inst.get("ph").and_then(Value::as_str), Some("i"));
        assert_eq!(inst.get("s").and_then(Value::as_str), Some("t"));
    }
}
