//! JSONL trace sink: one JSON object per line.
//!
//! Layout, in order:
//!
//! 1. one line per [`Record`] (`"type"` discriminates `span` / `event`
//!    / `counter` / `gauge` / `observe`),
//! 2. one `{"type":"metrics", …}` line — the registry snapshot,
//! 3. one final `{"type":"machine", …}` line — the machine-dependent
//!    section.
//!
//! Everything above the machine line is deterministic: byte-identical
//! for the same seed at any `--threads` value. [`render_deterministic`]
//! emits exactly that prefix, so determinism checks are a string
//! comparison.

use super::{f, fields_value, obj, s, u};
use crate::collector::Trace;
use crate::metrics::{GaugeStat, HistStat, MetricsRegistry};
use crate::record::{FieldValue, Fields, Record, RecordData};
use serde_json::{Number, Value};
use std::collections::BTreeMap;

fn record_line(r: &Record) -> Value {
    let track = u(u64::from(r.track));
    let t = u(r.t_us);
    match &r.data {
        RecordData::Span {
            target,
            name,
            dur_us,
            fields,
        } => obj(vec![
            ("type", s("span")),
            ("track", track),
            ("t", t),
            ("target", s(target)),
            ("name", s(name)),
            ("dur", u(*dur_us)),
            ("fields", fields_value(fields)),
        ]),
        RecordData::Event {
            target,
            name,
            fields,
        } => obj(vec![
            ("type", s("event")),
            ("track", track),
            ("t", t),
            ("target", s(target)),
            ("name", s(name)),
            ("fields", fields_value(fields)),
        ]),
        RecordData::Counter { name, delta } => obj(vec![
            ("type", s("counter")),
            ("track", track),
            ("t", t),
            ("name", s(name)),
            ("delta", u(*delta)),
        ]),
        RecordData::Gauge { name, value } => obj(vec![
            ("type", s("gauge")),
            ("track", track),
            ("t", t),
            ("name", s(name)),
            ("value", f(*value)),
        ]),
        RecordData::Observe { name, value } => obj(vec![
            ("type", s("observe")),
            ("track", track),
            ("t", t),
            ("name", s(name)),
            ("value", f(*value)),
        ]),
    }
}

fn metrics_line(m: &MetricsRegistry) -> Value {
    // The registry's snapshot accessors are name-sorted, so these
    // objects keep the byte order of the old BTreeMap-backed registry.
    let counters = Value::Object(
        m.counters()
            .into_iter()
            .map(|(k, v)| (k.to_string(), u(v)))
            .collect(),
    );
    let gauges = Value::Object(
        m.gauges()
            .into_iter()
            .map(|(k, g)| {
                (
                    k.to_string(),
                    obj(vec![
                        ("last", f(g.last)),
                        ("min", f(g.min)),
                        ("max", f(g.max)),
                    ]),
                )
            })
            .collect(),
    );
    let histograms = Value::Object(
        m.histograms()
            .into_iter()
            .map(|(k, h)| {
                (
                    k.to_string(),
                    obj(vec![
                        ("count", u(h.count)),
                        ("sum", f(h.sum)),
                        ("min", f(h.min)),
                        ("max", f(h.max)),
                    ]),
                )
            })
            .collect(),
    );
    obj(vec![
        ("type", s("metrics")),
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

fn machine_line(stats: &BTreeMap<String, f64>) -> Value {
    let stats = Value::Object(stats.iter().map(|(k, v)| (k.clone(), f(*v))).collect());
    obj(vec![("type", s("machine")), ("stats", stats)])
}

/// Renders the deterministic sections only — records and the metrics
/// snapshot, no machine line. Byte-identical across thread counts for
/// the same seed.
#[must_use]
pub fn render_deterministic(trace: &Trace) -> String {
    let mut out = String::new();
    for r in &trace.records {
        out.push_str(&record_line(r).to_string());
        out.push('\n');
    }
    out.push_str(&metrics_line(&trace.metrics).to_string());
    out.push('\n');
    out
}

/// Renders the full trace: deterministic sections followed by the
/// machine-dependent line.
#[must_use]
pub fn render(trace: &Trace) -> String {
    let mut out = render_deterministic(trace);
    out.push_str(&machine_line(&trace.machine).to_string());
    out.push('\n');
    out
}

fn want_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn want_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

fn want_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing number field `{key}`"))
}

fn want_obj<'v>(v: &'v Value, key: &str) -> Result<&'v [(String, Value)], String> {
    v.get(key)
        .and_then(Value::as_object)
        .map(Vec::as_slice)
        .ok_or_else(|| format!("missing object field `{key}`"))
}

fn parse_fields(v: &Value) -> Result<Fields, String> {
    let mut fields = Fields::new();
    for (k, raw) in want_obj(v, "fields")? {
        let parsed = match raw {
            Value::Bool(b) => FieldValue::Bool(*b),
            Value::String(x) => FieldValue::Str(x.clone()),
            // Match the lexical variant, not `as_u64` (which accepts
            // integral floats and would turn `4.0` back into `U64(4)`).
            Value::Number(Number::PosInt(x)) => FieldValue::U64(*x),
            Value::Number(Number::NegInt(x)) => FieldValue::I64(*x),
            Value::Number(Number::Float(x)) => FieldValue::F64(*x),
            _ => return Err(format!("unsupported field value for `{k}`")),
        };
        fields.insert(k.clone(), parsed);
    }
    Ok(fields)
}

fn parse_record(line: &Value, kind: &str) -> Result<Record, String> {
    let track = want_u64(line, "track")? as u32;
    let t_us = want_u64(line, "t")?;
    let data = match kind {
        "span" => RecordData::Span {
            target: want_str(line, "target")?,
            name: want_str(line, "name")?,
            dur_us: want_u64(line, "dur")?,
            fields: parse_fields(line)?,
        },
        "event" => RecordData::Event {
            target: want_str(line, "target")?,
            name: want_str(line, "name")?,
            fields: parse_fields(line)?,
        },
        "counter" => RecordData::Counter {
            name: want_str(line, "name")?,
            delta: want_u64(line, "delta")?,
        },
        "gauge" => RecordData::Gauge {
            name: want_str(line, "name")?,
            value: want_f64(line, "value")?,
        },
        "observe" => RecordData::Observe {
            name: want_str(line, "name")?,
            value: want_f64(line, "value")?,
        },
        other => return Err(format!("unknown record type `{other}`")),
    };
    Ok(Record { track, t_us, data })
}

fn parse_metrics(line: &Value, registry: &mut MetricsRegistry) -> Result<(), String> {
    for (name, total) in want_obj(line, "counters")? {
        let total = total
            .as_u64()
            .ok_or_else(|| format!("bad counter total for `{name}`"))?;
        registry.set_counter(name, total);
    }
    for (name, g) in want_obj(line, "gauges")? {
        registry.set_gauge(
            name,
            GaugeStat {
                last: want_f64(g, "last")?,
                min: want_f64(g, "min")?,
                max: want_f64(g, "max")?,
            },
        );
    }
    for (name, h) in want_obj(line, "histograms")? {
        registry.set_histogram(
            name,
            HistStat {
                count: want_u64(h, "count")?,
                sum: want_f64(h, "sum")?,
                min: want_f64(h, "min")?,
                max: want_f64(h, "max")?,
            },
        );
    }
    Ok(())
}

/// Parses a JSONL trace back into a [`Trace`].
///
/// # Errors
///
/// Returns a `file-position: reason` message on malformed lines.
pub fn parse(text: &str) -> Result<Trace, String> {
    let mut trace = Trace::new();
    for (lineno, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        let line: Value =
            serde_json::from_str(raw).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = want_str(&line, "type").map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match kind.as_str() {
            "metrics" => parse_metrics(&line, &mut trace.metrics)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?,
            "machine" => {
                for (name, v) in
                    want_obj(&line, "stats").map_err(|e| format!("line {}: {e}", lineno + 1))?
                {
                    let v = v
                        .as_f64()
                        .ok_or_else(|| format!("line {}: bad machine stat `{name}`", lineno + 1))?;
                    trace.machine.insert(name.clone(), v);
                }
            }
            kind => {
                let record =
                    parse_record(&line, kind).map_err(|e| format!("line {}: {e}", lineno + 1))?;
                trace.records.push(record);
            }
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::record_scope;
    use crate::collector::{counter, event, gauge, machine_stat, observe, span};

    fn demo_trace() -> Trace {
        let ((), trace) = record_scope(0, || {
            event("demo", "start", 0, &[("n", 3u64.into())]);
            counter("demo.count", 10, 2);
            gauge("demo.queue", 20, 4.0);
            observe("demo.latency", 30, 1.5);
            span("demo", "work", 0, 40, &[("label", "alpha".into())]);
            machine_stat("demo.steals", 2.0);
        });
        trace
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let trace = demo_trace();
        let parsed = parse(&render(&trace)).expect("parses");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn deterministic_render_is_a_prefix_without_the_machine_line() {
        let trace = demo_trace();
        let full = render(&trace);
        let det = render_deterministic(&trace);
        assert!(full.starts_with(&det));
        assert!(!det.contains("\"machine\""));
        assert!(full.contains("\"machine\""));
    }

    #[test]
    fn parse_rejects_garbage_with_a_line_number() {
        let err = parse("{\"type\":\"span\"}\n").expect_err("malformed");
        assert!(err.starts_with("line 1:"), "err: {err}");
    }
}
