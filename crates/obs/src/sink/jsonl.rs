//! JSONL trace sink: one JSON object per line.
//!
//! Layout, in order:
//!
//! 1. one line per [`Record`] (`"type"` discriminates `span` / `event`
//!    / `counter` / `gauge` / `observe`),
//! 2. one `{"type":"tracks", …}` line — track names (omitted when no
//!    track was named),
//! 3. one `{"type":"metrics", …}` line — the registry snapshot,
//! 4. one final `{"type":"machine", …}` line — the machine-dependent
//!    section.
//!
//! Everything above the machine line is deterministic: byte-identical
//! for the same seed at any `--threads` value. [`render_deterministic`]
//! emits exactly that prefix, so determinism checks are a string
//! comparison.
//!
//! [`parse_line`] exposes the per-line parser so large traces can be
//! folded line-at-a-time in bounded memory; [`parse`] keeps the
//! whole-string convenience path for small inputs.

use super::{f, fields_value, obj, s, u};
use crate::collector::Trace;
use crate::metrics::{GaugeStat, HistStat, MetricsRegistry};
use crate::record::{FieldValue, Fields, Record, RecordData};
use serde_json::{Number, Value};
use std::collections::BTreeMap;

fn record_line(r: &Record) -> Value {
    let track = u(u64::from(r.track));
    let t = u(r.t_us);
    match &r.data {
        RecordData::Span {
            target,
            name,
            dur_us,
            id,
            parent,
            fields,
        } => obj(vec![
            ("type", s("span")),
            ("track", track),
            ("t", t),
            ("target", s(target)),
            ("name", s(name)),
            ("dur", u(*dur_us)),
            ("id", u(*id)),
            ("parent", u(*parent)),
            ("fields", fields_value(fields)),
        ]),
        RecordData::Event {
            target,
            name,
            fields,
        } => obj(vec![
            ("type", s("event")),
            ("track", track),
            ("t", t),
            ("target", s(target)),
            ("name", s(name)),
            ("fields", fields_value(fields)),
        ]),
        RecordData::Counter { name, delta } => obj(vec![
            ("type", s("counter")),
            ("track", track),
            ("t", t),
            ("name", s(name)),
            ("delta", u(*delta)),
        ]),
        RecordData::Gauge { name, value } => obj(vec![
            ("type", s("gauge")),
            ("track", track),
            ("t", t),
            ("name", s(name)),
            ("value", f(*value)),
        ]),
        RecordData::Observe { name, value } => obj(vec![
            ("type", s("observe")),
            ("track", track),
            ("t", t),
            ("name", s(name)),
            ("value", f(*value)),
        ]),
    }
}

fn metrics_line(m: &MetricsRegistry) -> Value {
    // The registry's snapshot accessors are name-sorted, so these
    // objects keep the byte order of the old BTreeMap-backed registry.
    let counters = Value::Object(
        m.counters()
            .into_iter()
            .map(|(k, v)| (k.to_string(), u(v)))
            .collect(),
    );
    let gauges = Value::Object(
        m.gauges()
            .into_iter()
            .map(|(k, g)| {
                (
                    k.to_string(),
                    obj(vec![
                        ("last", f(g.last)),
                        ("min", f(g.min)),
                        ("max", f(g.max)),
                    ]),
                )
            })
            .collect(),
    );
    let histograms = Value::Object(
        m.histograms()
            .into_iter()
            .map(|(k, h)| {
                (
                    k.to_string(),
                    obj(vec![
                        ("count", u(h.count)),
                        ("sum", f(h.sum)),
                        ("min", f(h.min)),
                        ("max", f(h.max)),
                    ]),
                )
            })
            .collect(),
    );
    obj(vec![
        ("type", s("metrics")),
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

fn tracks_line(names: &BTreeMap<u32, String>) -> Value {
    let names = Value::Object(
        names
            .iter()
            .map(|(track, name)| (track.to_string(), s(name)))
            .collect(),
    );
    obj(vec![("type", s("tracks")), ("names", names)])
}

fn machine_line(stats: &BTreeMap<String, f64>) -> Value {
    let stats = Value::Object(stats.iter().map(|(k, v)| (k.clone(), f(*v))).collect());
    obj(vec![("type", s("machine")), ("stats", stats)])
}

/// Renders the deterministic sections only — records, track names and
/// the metrics snapshot, no machine line. Byte-identical across thread
/// counts for the same seed.
#[must_use]
pub fn render_deterministic(trace: &Trace) -> String {
    let mut out = String::new();
    for r in &trace.records {
        out.push_str(&record_line(r).to_string());
        out.push('\n');
    }
    if !trace.track_names.is_empty() {
        out.push_str(&tracks_line(&trace.track_names).to_string());
        out.push('\n');
    }
    out.push_str(&metrics_line(&trace.metrics).to_string());
    out.push('\n');
    out
}

/// Renders the full trace: deterministic sections followed by the
/// machine-dependent line.
#[must_use]
pub fn render(trace: &Trace) -> String {
    let mut out = render_deterministic(trace);
    out.push_str(&machine_line(&trace.machine).to_string());
    out.push('\n');
    out
}

fn want_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn want_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

fn want_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing number field `{key}`"))
}

fn want_obj<'v>(v: &'v Value, key: &str) -> Result<&'v [(String, Value)], String> {
    v.get(key)
        .and_then(Value::as_object)
        .map(Vec::as_slice)
        .ok_or_else(|| format!("missing object field `{key}`"))
}

fn parse_fields(v: &Value) -> Result<Fields, String> {
    let mut fields = Fields::new();
    for (k, raw) in want_obj(v, "fields")? {
        let parsed = match raw {
            Value::Bool(b) => FieldValue::Bool(*b),
            Value::String(x) => FieldValue::Str(x.clone()),
            // Match the lexical variant, not `as_u64` (which accepts
            // integral floats and would turn `4.0` back into `U64(4)`).
            Value::Number(Number::PosInt(x)) => FieldValue::U64(*x),
            Value::Number(Number::NegInt(x)) => FieldValue::I64(*x),
            Value::Number(Number::Float(x)) => FieldValue::F64(*x),
            _ => return Err(format!("unsupported field value for `{k}`")),
        };
        fields.insert(k.clone(), parsed);
    }
    Ok(fields)
}

fn parse_record(line: &Value, kind: &str) -> Result<Record, String> {
    let track = want_u64(line, "track")? as u32;
    let t_us = want_u64(line, "t")?;
    let data = match kind {
        "span" => RecordData::Span {
            target: want_str(line, "target")?,
            name: want_str(line, "name")?,
            dur_us: want_u64(line, "dur")?,
            // Absent on pre-tree traces; 0 means "no id/root".
            id: want_u64(line, "id").unwrap_or(0),
            parent: want_u64(line, "parent").unwrap_or(0),
            fields: parse_fields(line)?,
        },
        "event" => RecordData::Event {
            target: want_str(line, "target")?,
            name: want_str(line, "name")?,
            fields: parse_fields(line)?,
        },
        "counter" => RecordData::Counter {
            name: want_str(line, "name")?,
            delta: want_u64(line, "delta")?,
        },
        "gauge" => RecordData::Gauge {
            name: want_str(line, "name")?,
            value: want_f64(line, "value")?,
        },
        "observe" => RecordData::Observe {
            name: want_str(line, "name")?,
            value: want_f64(line, "value")?,
        },
        other => return Err(format!("unknown record type `{other}`")),
    };
    Ok(Record { track, t_us, data })
}

fn parse_metrics(line: &Value, registry: &mut MetricsRegistry) -> Result<(), String> {
    for (name, total) in want_obj(line, "counters")? {
        let total = total
            .as_u64()
            .ok_or_else(|| format!("bad counter total for `{name}`"))?;
        registry.set_counter(name, total);
    }
    for (name, g) in want_obj(line, "gauges")? {
        registry.set_gauge(
            name,
            GaugeStat {
                last: want_f64(g, "last")?,
                min: want_f64(g, "min")?,
                max: want_f64(g, "max")?,
            },
        );
    }
    for (name, h) in want_obj(line, "histograms")? {
        registry.set_histogram(
            name,
            HistStat {
                count: want_u64(h, "count")?,
                sum: want_f64(h, "sum")?,
                min: want_f64(h, "min")?,
                max: want_f64(h, "max")?,
            },
        );
    }
    Ok(())
}

/// One parsed JSONL trace line — the unit the streaming readers fold.
#[derive(Debug, Clone, PartialEq)]
pub enum Line {
    /// A record line (`span` / `event` / `counter` / `gauge` /
    /// `observe`).
    Record(Record),
    /// The track-name map.
    Tracks(BTreeMap<u32, String>),
    /// The metrics-snapshot line.
    Metrics(MetricsRegistry),
    /// The machine-dependent stats line.
    Machine(BTreeMap<String, f64>),
}

/// Parses one JSONL trace line. Blank lines yield `Ok(None)`.
///
/// This is the streaming entry point: callers fold a `BufRead` line
/// iterator through it and never hold the whole trace in memory.
///
/// # Errors
///
/// Returns a reason message (without file position — the caller knows
/// the line number) on malformed input.
pub fn parse_line(raw: &str) -> Result<Option<Line>, String> {
    if raw.trim().is_empty() {
        return Ok(None);
    }
    let line: Value = serde_json::from_str(raw).map_err(|e| e.to_string())?;
    let kind = want_str(&line, "type")?;
    let parsed = match kind.as_str() {
        "tracks" => {
            let mut names = BTreeMap::new();
            for (track, name) in want_obj(&line, "names")? {
                let track: u32 = track
                    .parse()
                    .map_err(|_| format!("bad track id `{track}`"))?;
                let name = name
                    .as_str()
                    .ok_or_else(|| format!("bad track name for `{track}`"))?;
                names.insert(track, name.to_string());
            }
            Line::Tracks(names)
        }
        "metrics" => {
            let mut registry = MetricsRegistry::new();
            parse_metrics(&line, &mut registry)?;
            Line::Metrics(registry)
        }
        "machine" => {
            let mut stats = BTreeMap::new();
            for (name, v) in want_obj(&line, "stats")? {
                let v = v
                    .as_f64()
                    .ok_or_else(|| format!("bad machine stat `{name}`"))?;
                stats.insert(name.clone(), v);
            }
            Line::Machine(stats)
        }
        kind => Line::Record(parse_record(&line, kind)?),
    };
    Ok(Some(parsed))
}

/// Parses a JSONL trace back into a [`Trace`] — the whole-string
/// convenience path for small inputs.
///
/// # Errors
///
/// Returns a `file-position: reason` message on malformed lines.
pub fn parse(text: &str) -> Result<Trace, String> {
    let mut trace = Trace::new();
    for (lineno, raw) in text.lines().enumerate() {
        match parse_line(raw).map_err(|e| format!("line {}: {e}", lineno + 1))? {
            None => {}
            Some(Line::Record(record)) => trace.records.push(record),
            Some(Line::Tracks(names)) => trace.track_names.extend(names),
            Some(Line::Metrics(registry)) => trace.metrics = registry,
            Some(Line::Machine(stats)) => trace.machine.extend(stats),
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::record_scope;
    use crate::collector::{counter, enter, event, gauge, machine_stat, name_track, observe, span};

    fn demo_trace() -> Trace {
        let ((), trace) = record_scope(0, || {
            name_track(0, "main");
            let root = enter("demo", "run", 0);
            event("demo", "start", 0, &[("n", 3u64.into())]);
            counter("demo.count", 10, 2);
            gauge("demo.queue", 20, 4.0);
            observe("demo.latency", 30, 1.5);
            span("demo", "work", 0, 40, &[("label", "alpha".into())]);
            root.exit(40, &[]);
            machine_stat("demo.steals", 2.0);
        });
        trace
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let trace = demo_trace();
        let parsed = parse(&render(&trace)).expect("parses");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn deterministic_render_is_a_prefix_without_the_machine_line() {
        let trace = demo_trace();
        let full = render(&trace);
        let det = render_deterministic(&trace);
        assert!(full.starts_with(&det));
        assert!(!det.contains("\"machine\""));
        assert!(full.contains("\"machine\""));
    }

    #[test]
    fn parse_rejects_garbage_with_a_line_number() {
        let err = parse("{\"type\":\"span\"}\n").expect_err("malformed");
        assert!(err.starts_with("line 1:"), "err: {err}");
    }

    #[test]
    fn pre_tree_span_lines_parse_with_zero_ids() {
        let line = "{\"type\":\"span\",\"track\":0,\"t\":5,\"target\":\"demo\",\
                    \"name\":\"work\",\"dur\":10,\"fields\":{}}";
        let trace = parse(line).expect("parses");
        match &trace.records[0].data {
            RecordData::Span { id, parent, .. } => {
                assert_eq!((*id, *parent), (0, 0));
            }
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn parse_line_distinguishes_section_lines() {
        let trace = demo_trace();
        let text = render(&trace);
        let kinds: Vec<&str> = text
            .lines()
            .map(|l| match parse_line(l).expect("parses") {
                Some(Line::Record(_)) => "record",
                Some(Line::Tracks(_)) => "tracks",
                Some(Line::Metrics(_)) => "metrics",
                Some(Line::Machine(_)) => "machine",
                None => "blank",
            })
            .collect();
        assert_eq!(kinds.first().copied(), Some("record"));
        assert_eq!(&kinds[kinds.len() - 3..], &["tracks", "metrics", "machine"]);
    }
}
