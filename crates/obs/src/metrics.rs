//! Metrics registry: counters, gauges and histograms with ordered,
//! serializable snapshots.
//!
//! The registry is a *view* over the records a collector has seen — it
//! is updated incrementally as records are emitted and merged in index
//! order, so for a given seed it is identical at any thread count.
//!
//! Hot-path layout: metric names are interned once into [`Sym`]
//! symbols and the stat maps are symbol-keyed [`DetMap`]s, so the
//! per-record cost is one short hash probe instead of a `String` clone
//! plus a tree walk. The snapshot accessors sort by *name* at the
//! boundary, so everything serialized downstream keeps the exact
//! ordering the old `BTreeMap`-backed registry produced.

use crate::record::{Record, RecordData};
use hc_collect::{DetMap, Interner, Sym};

/// Summary of a gauge's observed levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStat {
    /// Most recently observed level (in record/merge order).
    pub last: f64,
    /// Minimum observed level.
    pub min: f64,
    /// Maximum observed level.
    pub max: f64,
}

/// Summary of a histogram's samples (count/sum/min/max — enough for
/// mean and range without storing every sample).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStat {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl HistStat {
    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Ordered registry of counters, gauges and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    /// Shared name table: a metric name is interned once, on first
    /// sight, whichever kind it belongs to.
    names: Interner,
    counters: DetMap<Sym, u64>,
    gauges: DetMap<Sym, GaugeStat>,
    histograms: DetMap<Sym, HistStat>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds one record into the registry (spans and events are pure
    /// trace data and leave the registry untouched).
    pub fn apply(&mut self, record: &Record) {
        match &record.data {
            RecordData::Counter { name, delta } => {
                let sym = self.names.intern(name);
                let slot = self.counters.entry(sym).or_insert(0);
                *slot = slot.saturating_add(*delta);
            }
            RecordData::Gauge { name, value } => {
                let sym = self.names.intern(name);
                self.gauges
                    .entry(sym)
                    .and_modify(|g| {
                        g.last = *value;
                        g.min = g.min.min(*value);
                        g.max = g.max.max(*value);
                    })
                    .or_insert(GaugeStat {
                        last: *value,
                        min: *value,
                        max: *value,
                    });
            }
            RecordData::Observe { name, value } => {
                let sym = self.names.intern(name);
                self.histograms
                    .entry(sym)
                    .and_modify(|h| {
                        h.count += 1;
                        h.sum += *value;
                        h.min = h.min.min(*value);
                        h.max = h.max.max(*value);
                    })
                    .or_insert(HistStat {
                        count: 1,
                        sum: *value,
                        min: *value,
                        max: *value,
                    });
            }
            RecordData::Span { .. } | RecordData::Event { .. } => {}
        }
    }

    /// Merges another registry into this one. Counters and histogram
    /// sums add; for gauges the *other* registry's `last` wins — merges
    /// happen in replication-index order, so this is deterministic.
    /// (Each name receives exactly one combining op per merge, so the
    /// iteration order *within* a merge cannot affect any value.)
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (sym, delta) in &other.counters {
            let sym = self.names.intern(other.names.resolve(*sym));
            let slot = self.counters.entry(sym).or_insert(0);
            *slot = slot.saturating_add(*delta);
        }
        for (sym, g) in &other.gauges {
            let sym = self.names.intern(other.names.resolve(*sym));
            self.gauges
                .entry(sym)
                .and_modify(|mine| {
                    mine.last = g.last;
                    mine.min = mine.min.min(g.min);
                    mine.max = mine.max.max(g.max);
                })
                .or_insert(*g);
        }
        for (sym, h) in &other.histograms {
            let sym = self.names.intern(other.names.resolve(*sym));
            self.histograms
                .entry(sym)
                .and_modify(|mine| {
                    mine.count += h.count;
                    mine.sum += h.sum;
                    mine.min = mine.min.min(h.min);
                    mine.max = mine.max.max(h.max);
                })
                .or_insert(*h);
        }
    }

    fn sorted_view<T: Copy>(&self, map: &DetMap<Sym, T>) -> Vec<(&str, T)> {
        let mut out: Vec<(&str, T)> = map
            .iter()
            .map(|(sym, v)| (self.names.resolve(*sym), *v))
            .collect();
        out.sort_unstable_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Current counter totals, name-ordered.
    #[must_use]
    pub fn counters(&self) -> Vec<(&str, u64)> {
        self.sorted_view(&self.counters)
    }

    /// Current gauge summaries, name-ordered.
    #[must_use]
    pub fn gauges(&self) -> Vec<(&str, GaugeStat)> {
        self.sorted_view(&self.gauges)
    }

    /// Current histogram summaries, name-ordered.
    #[must_use]
    pub fn histograms(&self) -> Vec<(&str, HistStat)> {
        self.sorted_view(&self.histograms)
    }

    /// Total for one counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.names
            .lookup(name)
            .and_then(|sym| self.counters.get(&sym))
            .copied()
            .unwrap_or(0)
    }

    /// One gauge's summary, if observed.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<GaugeStat> {
        self.names
            .lookup(name)
            .and_then(|sym| self.gauges.get(&sym))
            .copied()
    }

    /// One histogram's summary, if observed.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<HistStat> {
        self.names
            .lookup(name)
            .and_then(|sym| self.histograms.get(&sym))
            .copied()
    }

    /// Sets a counter total directly (sink parsing only).
    pub fn set_counter(&mut self, name: &str, total: u64) {
        let sym = self.names.intern(name);
        self.counters.insert(sym, total);
    }

    /// Sets a gauge summary directly (sink parsing only).
    pub fn set_gauge(&mut self, name: &str, stat: GaugeStat) {
        let sym = self.names.intern(name);
        self.gauges.insert(sym, stat);
    }

    /// Sets a histogram summary directly (sink parsing only).
    pub fn set_histogram(&mut self, name: &str, stat: HistStat) {
        let sym = self.names.intern(name);
        self.histograms.insert(sym, stat);
    }
}

/// Name-keyed comparison: two registries are equal when they hold the
/// same stats under the same names, regardless of the symbol numbering
/// each one's interner happened to assign (a parsed trace interns in
/// serialized order, not record order).
impl PartialEq for MetricsRegistry {
    fn eq(&self, other: &Self) -> bool {
        self.counters() == other.counters()
            && self.gauges() == other.gauges()
            && self.histograms() == other.histograms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordData;

    fn rec(data: RecordData) -> Record {
        Record {
            track: 0,
            t_us: 0,
            data,
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.apply(&rec(RecordData::Counter {
            name: "c".to_string(),
            delta: 2,
        }));
        m.apply(&rec(RecordData::Counter {
            name: "c".to_string(),
            delta: 3,
        }));
        assert_eq!(m.counter("c"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_track_last_min_max() {
        let mut m = MetricsRegistry::new();
        for v in [3.0, 1.0, 2.0] {
            m.apply(&rec(RecordData::Gauge {
                name: "g".to_string(),
                value: v,
            }));
        }
        let g = m.gauge("g").expect("gauge present");
        assert_eq!(g.last, 2.0);
        assert_eq!(g.min, 1.0);
        assert_eq!(g.max, 3.0);
    }

    #[test]
    fn histograms_summarize_samples() {
        let mut m = MetricsRegistry::new();
        for v in [1.0, 5.0, 3.0] {
            m.apply(&rec(RecordData::Observe {
                name: "h".to_string(),
                value: v,
            }));
        }
        let h = m.histogram("h").expect("hist present");
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 9.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 5.0);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn merge_adds_counters_and_combines_ranges() {
        let mut a = MetricsRegistry::new();
        a.apply(&rec(RecordData::Counter {
            name: "c".to_string(),
            delta: 2,
        }));
        a.apply(&rec(RecordData::Gauge {
            name: "g".to_string(),
            value: 4.0,
        }));
        let mut b = MetricsRegistry::new();
        b.apply(&rec(RecordData::Counter {
            name: "c".to_string(),
            delta: 5,
        }));
        b.apply(&rec(RecordData::Gauge {
            name: "g".to_string(),
            value: 1.0,
        }));
        a.merge(&b);
        assert_eq!(a.counter("c"), 7);
        let g = a.gauge("g").expect("gauge present");
        assert_eq!(g.last, 1.0);
        assert_eq!(g.min, 1.0);
        assert_eq!(g.max, 4.0);
    }

    #[test]
    fn equality_ignores_interning_order() {
        // Build the same stats in opposite insertion orders: symbol
        // numbering differs, the registries must still compare equal.
        let mut a = MetricsRegistry::new();
        a.set_counter("x", 1);
        a.set_counter("y", 2);
        let mut b = MetricsRegistry::new();
        b.set_counter("y", 2);
        b.set_counter("x", 1);
        assert_eq!(a, b);
        b.set_counter("x", 9);
        assert_ne!(a, b);
    }

    #[test]
    fn snapshots_are_name_sorted() {
        let mut m = MetricsRegistry::new();
        m.set_counter("zeta", 1);
        m.set_counter("alpha", 2);
        let names: Vec<&str> = m.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }
}
