//! Metrics registry: counters, gauges and histograms with ordered,
//! serializable snapshots.
//!
//! The registry is a *view* over the records a collector has seen — it
//! is updated incrementally as records are emitted and merged in index
//! order, so for a given seed it is identical at any thread count. All
//! maps are `BTreeMap`, so iteration (and therefore serialization)
//! order is stable.

use crate::record::{Record, RecordData};
use std::collections::BTreeMap;

/// Summary of a gauge's observed levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStat {
    /// Most recently observed level (in record/merge order).
    pub last: f64,
    /// Minimum observed level.
    pub min: f64,
    /// Maximum observed level.
    pub max: f64,
}

/// Summary of a histogram's samples (count/sum/min/max — enough for
/// mean and range without storing every sample).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStat {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl HistStat {
    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Ordered registry of counters, gauges and histograms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeStat>,
    histograms: BTreeMap<String, HistStat>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds one record into the registry (spans and events are pure
    /// trace data and leave the registry untouched).
    pub fn apply(&mut self, record: &Record) {
        match &record.data {
            RecordData::Counter { name, delta } => {
                let slot = self.counters.entry(name.clone()).or_insert(0);
                *slot = slot.saturating_add(*delta);
            }
            RecordData::Gauge { name, value } => {
                self.gauges
                    .entry(name.clone())
                    .and_modify(|g| {
                        g.last = *value;
                        g.min = g.min.min(*value);
                        g.max = g.max.max(*value);
                    })
                    .or_insert(GaugeStat {
                        last: *value,
                        min: *value,
                        max: *value,
                    });
            }
            RecordData::Observe { name, value } => {
                self.histograms
                    .entry(name.clone())
                    .and_modify(|h| {
                        h.count += 1;
                        h.sum += *value;
                        h.min = h.min.min(*value);
                        h.max = h.max.max(*value);
                    })
                    .or_insert(HistStat {
                        count: 1,
                        sum: *value,
                        min: *value,
                        max: *value,
                    });
            }
            RecordData::Span { .. } | RecordData::Event { .. } => {}
        }
    }

    /// Merges another registry into this one. Counters and histogram
    /// sums add; for gauges the *other* registry's `last` wins — merges
    /// happen in replication-index order, so this is deterministic.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, delta) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*delta);
        }
        for (name, g) in &other.gauges {
            self.gauges
                .entry(name.clone())
                .and_modify(|mine| {
                    mine.last = g.last;
                    mine.min = mine.min.min(g.min);
                    mine.max = mine.max.max(g.max);
                })
                .or_insert(*g);
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .and_modify(|mine| {
                    mine.count += h.count;
                    mine.sum += h.sum;
                    mine.min = mine.min.min(h.min);
                    mine.max = mine.max.max(h.max);
                })
                .or_insert(*h);
        }
    }

    /// Current counter totals, name-ordered.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Current gauge summaries, name-ordered.
    #[must_use]
    pub fn gauges(&self) -> &BTreeMap<String, GaugeStat> {
        &self.gauges
    }

    /// Current histogram summaries, name-ordered.
    #[must_use]
    pub fn histograms(&self) -> &BTreeMap<String, HistStat> {
        &self.histograms
    }

    /// Total for one counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a counter total directly (sink parsing only).
    pub fn set_counter(&mut self, name: impl Into<String>, total: u64) {
        self.counters.insert(name.into(), total);
    }

    /// Sets a gauge summary directly (sink parsing only).
    pub fn set_gauge(&mut self, name: impl Into<String>, stat: GaugeStat) {
        self.gauges.insert(name.into(), stat);
    }

    /// Sets a histogram summary directly (sink parsing only).
    pub fn set_histogram(&mut self, name: impl Into<String>, stat: HistStat) {
        self.histograms.insert(name.into(), stat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordData;

    fn rec(data: RecordData) -> Record {
        Record {
            track: 0,
            t_us: 0,
            data,
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.apply(&rec(RecordData::Counter {
            name: "c".to_string(),
            delta: 2,
        }));
        m.apply(&rec(RecordData::Counter {
            name: "c".to_string(),
            delta: 3,
        }));
        assert_eq!(m.counter("c"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_track_last_min_max() {
        let mut m = MetricsRegistry::new();
        for v in [3.0, 1.0, 2.0] {
            m.apply(&rec(RecordData::Gauge {
                name: "g".to_string(),
                value: v,
            }));
        }
        let g = m.gauges().get("g").copied().expect("gauge present");
        assert_eq!(g.last, 2.0);
        assert_eq!(g.min, 1.0);
        assert_eq!(g.max, 3.0);
    }

    #[test]
    fn histograms_summarize_samples() {
        let mut m = MetricsRegistry::new();
        for v in [1.0, 5.0, 3.0] {
            m.apply(&rec(RecordData::Observe {
                name: "h".to_string(),
                value: v,
            }));
        }
        let h = m.histograms().get("h").copied().expect("hist present");
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 9.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 5.0);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn merge_adds_counters_and_combines_ranges() {
        let mut a = MetricsRegistry::new();
        a.apply(&rec(RecordData::Counter {
            name: "c".to_string(),
            delta: 2,
        }));
        a.apply(&rec(RecordData::Gauge {
            name: "g".to_string(),
            value: 4.0,
        }));
        let mut b = MetricsRegistry::new();
        b.apply(&rec(RecordData::Counter {
            name: "c".to_string(),
            delta: 5,
        }));
        b.apply(&rec(RecordData::Gauge {
            name: "g".to_string(),
            value: 1.0,
        }));
        a.merge(&b);
        assert_eq!(a.counter("c"), 7);
        let g = a.gauges().get("g").copied().expect("gauge present");
        assert_eq!(g.last, 1.0);
        assert_eq!(g.min, 1.0);
        assert_eq!(g.max, 4.0);
    }
}
