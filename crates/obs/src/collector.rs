//! The thread-local recording scope and the emit API.
//!
//! There is deliberately no global subscriber: a global sink behind a
//! lock would interleave records nondeterministically under the
//! parallel replication pool. Instead, each thread carries a *stack* of
//! collectors. [`record_scope`] pushes one, runs a closure, and pops it
//! back off together with everything the closure emitted; the caller
//! decides how child traces compose (the replication pool merges them
//! **in index order** via [`merge_trace`], which is what keeps traces
//! byte-identical at any `--threads` value).
//!
//! ## Span trees
//!
//! [`enter`] opens a *scope span* and pushes its id onto the collector's
//! open-span stack; closing the returned [`SpanScope`] (explicitly via
//! [`SpanScope::exit`] / [`SpanScope::close`], or implicitly on drop)
//! records the span. Anything emitted while a scope is open — nested
//! scopes and flat [`span`] leaves alike — carries the enclosing scope's
//! id as its `parent`. Ids are assigned *per collector*, in scope-open /
//! leaf-emission order starting at 1, so a merged trace's id sequence
//! is a pure function of
//! the per-task emission order plus the index-ordered merge — i.e.
//! byte-identical at any `--threads` / `--shards` value.
//!
//! With no collector installed every emit function is a no-op that
//! returns before allocating, so uninstrumented runs pay one
//! thread-local read per call site — and call sites on hot paths guard
//! with [`active`] so even field construction is skipped.

use crate::metrics::MetricsRegistry;
use crate::record::{fields_from, FieldValue, Record, RecordData};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Everything one recording scope observed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Records in emission order (children merged in index order).
    pub records: Vec<Record>,
    /// Registry folded over the records as they were emitted.
    pub metrics: MetricsRegistry,
    /// Human-readable track names (`rep-3`, `shard-1`, …), set via
    /// [`name_track`]. Deterministic: part of the comparable sections.
    pub track_names: BTreeMap<u32, String>,
    /// Machine-dependent stats (worker/steal counts, …). Excluded from
    /// determinism comparisons; values sum when traces merge.
    pub machine: BTreeMap<String, f64>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Latest sim-time covered by any record (0 when empty).
    #[must_use]
    pub fn max_t_us(&self) -> u64 {
        self.records.iter().map(Record::end_us).max().unwrap_or(0)
    }
}

#[derive(Debug)]
struct Collector {
    track: u32,
    /// High-water sim-time over everything seen so far — the timestamp
    /// hint used by [`counter_now`] for emitters that have no clock in
    /// scope (e.g. the contribution ledger).
    clock_us: u64,
    /// Next span id to hand out (ids start at 1; 0 means "no span").
    next_span_id: u64,
    /// Ids of the scope spans currently open on this collector, in
    /// nesting order. The top is the parent of whatever emits next.
    open: Vec<u64>,
    trace: Trace,
}

thread_local! {
    static STACK: RefCell<Vec<Collector>> = const { RefCell::new(Vec::new()) };
}

/// True when a recording scope is active on this thread. Hot paths
/// check this once and skip field construction entirely when recording
/// is off, keeping the no-subscriber cost to one thread-local read.
#[must_use]
pub fn active() -> bool {
    STACK.with(|s| !s.borrow().is_empty())
}

fn with_top<T>(f: impl FnOnce(&mut Collector) -> T) -> Option<T> {
    STACK.with(|s| s.borrow_mut().last_mut().map(f))
}

/// Pops the collector this scope pushed even if the closure panics, so
/// a panicking replication cannot poison later scopes on a pooled
/// worker thread.
struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Runs `f` with a fresh collector installed on this thread and returns
/// its result together with everything it emitted.
///
/// `track` labels the records (0 for a top-level scope, `index + 1` for
/// parallel replication tasks). Scopes nest: an inner scope shadows the
/// outer one until it closes, and the caller chooses whether to
/// [`merge_trace`] the child back in.
pub fn record_scope<T>(track: u32, f: impl FnOnce() -> T) -> (T, Trace) {
    STACK.with(|s| {
        s.borrow_mut().push(Collector {
            track,
            clock_us: 0,
            next_span_id: 1,
            open: Vec::new(),
            trace: Trace::new(),
        });
    });
    let guard = ScopeGuard;
    let out = f();
    std::mem::forget(guard);
    let trace = STACK
        .with(|s| s.borrow_mut().pop())
        .map(|c| c.trace)
        .unwrap_or_default();
    (out, trace)
}

fn push(t_us: u64, data: RecordData) {
    with_top(|top| {
        let record = Record {
            track: top.track,
            t_us,
            data,
        };
        top.clock_us = top.clock_us.max(record.end_us());
        top.trace.metrics.apply(&record);
        top.trace.records.push(record);
    });
}

/// An open scope span handle returned by [`enter`]. Close it with
/// [`SpanScope::exit`] (explicit end time) or [`SpanScope::close`]
/// (ends at the collector's sim-time high-water mark); dropping an
/// unclosed scope closes it at the high-water mark with no fields.
#[derive(Debug)]
#[must_use = "a scope records its span when closed; bind it to a variable"]
pub struct SpanScope {
    /// 0 when recording was inactive at [`enter`] — the scope is inert.
    id: u64,
    parent: u64,
    target: String,
    name: String,
    start_us: u64,
    closed: bool,
}

/// Opens a scope span at sim-time `start_us` and makes it the parent of
/// everything emitted until the returned handle closes. Inert (and
/// allocation-free) when no recording scope is active.
pub fn enter(target: &str, name: &str, start_us: u64) -> SpanScope {
    let opened = with_top(|top| {
        let id = top.next_span_id;
        top.next_span_id += 1;
        let parent = top.open.last().copied().unwrap_or(0);
        top.open.push(id);
        (id, parent)
    });
    match opened {
        Some((id, parent)) => SpanScope {
            id,
            parent,
            target: target.to_string(),
            name: name.to_string(),
            start_us,
            closed: false,
        },
        None => SpanScope {
            id: 0,
            parent: 0,
            target: String::new(),
            name: String::new(),
            start_us,
            closed: true,
        },
    }
}

impl SpanScope {
    /// The span id this scope was assigned (0 when inert).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    fn record(&mut self, end_us: Option<u64>, fields: &[(&str, FieldValue)]) {
        if self.closed {
            return;
        }
        self.closed = true;
        let fields = fields_from(fields);
        with_top(|top| {
            // Unwind our id from the open stack. Closing out of order
            // (a child scope still open) is a caller bug; recover by
            // dropping the orphaned ids above ours.
            if let Some(pos) = top.open.iter().rposition(|&id| id == self.id) {
                top.open.truncate(pos);
            }
            let end_us = end_us.unwrap_or_else(|| top.clock_us.max(self.start_us));
            let record = Record {
                track: top.track,
                t_us: self.start_us,
                data: RecordData::Span {
                    target: std::mem::take(&mut self.target),
                    name: std::mem::take(&mut self.name),
                    dur_us: end_us.saturating_sub(self.start_us),
                    id: self.id,
                    parent: self.parent,
                    fields,
                },
            };
            top.clock_us = top.clock_us.max(record.end_us());
            top.trace.metrics.apply(&record);
            top.trace.records.push(record);
        });
    }

    /// Closes the scope at sim-time `end_us`, recording the span.
    pub fn exit(mut self, end_us: u64, fields: &[(&str, FieldValue)]) {
        self.record(Some(end_us), fields);
    }

    /// Closes the scope at the collector's sim-time high-water mark —
    /// for roots whose natural end is "whenever the last child ended".
    pub fn close(mut self, fields: &[(&str, FieldValue)]) {
        self.record(None, fields);
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        self.record(None, &[]);
    }
}

/// Records a completed sim-time span `[start_us, end_us]` as a leaf of
/// the currently open scope (if any).
pub fn span(target: &str, name: &str, start_us: u64, end_us: u64, fields: &[(&str, FieldValue)]) {
    if !active() {
        return;
    }
    with_top(|top| {
        let id = top.next_span_id;
        top.next_span_id += 1;
        let parent = top.open.last().copied().unwrap_or(0);
        let record = Record {
            track: top.track,
            t_us: start_us,
            data: RecordData::Span {
                target: target.to_string(),
                name: name.to_string(),
                dur_us: end_us.saturating_sub(start_us),
                id,
                parent,
                fields: fields_from(fields),
            },
        };
        top.clock_us = top.clock_us.max(record.end_us());
        top.trace.metrics.apply(&record);
        top.trace.records.push(record);
    });
}

/// Records a completed span on an explicit auxiliary `track` (a Chrome
/// lane), e.g. the shard engine's per-shard `layout.shard` spans. The
/// span is a root on its track (scope parents never cross tracks); its
/// id still comes from the emitting collector's sequence.
pub fn span_on_track(
    track: u32,
    target: &str,
    name: &str,
    start_us: u64,
    end_us: u64,
    fields: &[(&str, FieldValue)],
) {
    if !active() {
        return;
    }
    with_top(|top| {
        let id = top.next_span_id;
        top.next_span_id += 1;
        let record = Record {
            track,
            t_us: start_us,
            data: RecordData::Span {
                target: target.to_string(),
                name: name.to_string(),
                dur_us: end_us.saturating_sub(start_us),
                id,
                parent: 0,
                fields: fields_from(fields),
            },
        };
        top.clock_us = top.clock_us.max(record.end_us());
        top.trace.metrics.apply(&record);
        top.trace.records.push(record);
    });
}

/// Names a track for human-readable sinks (`rep-3`, `shard-1`, …).
/// Last write wins; names merge across scopes via [`merge_trace`].
pub fn name_track(track: u32, name: &str) {
    with_top(|top| {
        top.trace.track_names.insert(track, name.to_string());
    });
}

/// Records an instantaneous structured event at sim-time `t_us`.
pub fn event(target: &str, name: &str, t_us: u64, fields: &[(&str, FieldValue)]) {
    if !active() {
        return;
    }
    push(
        t_us,
        RecordData::Event {
            target: target.to_string(),
            name: name.to_string(),
            fields: fields_from(fields),
        },
    );
}

/// Increments a counter at sim-time `t_us`.
pub fn counter(name: &str, t_us: u64, delta: u64) {
    if !active() {
        return;
    }
    push(
        t_us,
        RecordData::Counter {
            name: name.to_string(),
            delta,
        },
    );
}

/// Increments a counter at the collector's current sim-time high-water
/// mark — for emitters (like the contribution ledger) that have no
/// clock in scope. The hint is itself derived from recorded sim-times,
/// so it stays deterministic.
pub fn counter_now(name: &str, delta: u64) {
    with_top(|top| {
        let record = Record {
            track: top.track,
            t_us: top.clock_us,
            data: RecordData::Counter {
                name: name.to_string(),
                delta,
            },
        };
        top.trace.metrics.apply(&record);
        top.trace.records.push(record);
    });
}

/// Records a gauge level at sim-time `t_us`.
pub fn gauge(name: &str, t_us: u64, value: f64) {
    if !active() {
        return;
    }
    push(
        t_us,
        RecordData::Gauge {
            name: name.to_string(),
            value,
        },
    );
}

/// Records one histogram sample at sim-time `t_us`.
pub fn observe(name: &str, t_us: u64, value: f64) {
    if !active() {
        return;
    }
    push(
        t_us,
        RecordData::Observe {
            name: name.to_string(),
            value,
        },
    );
}

/// Adds to a machine-dependent stat (summing across merges). These live
/// outside the deterministic sections — thread counts, steal counts and
/// the like belong here, never in records or metrics.
pub fn machine_stat(name: &str, value: f64) {
    with_top(|top| {
        *top.trace.machine.entry(name.to_string()).or_insert(0.0) += value;
    });
}

/// Merges a child scope's trace into the current collector: records
/// append (preserving their tracks and span ids — ids are per-track, so
/// they stay unambiguous), metrics merge, track names union, machine
/// stats sum. Callers must merge children **in index order** for
/// determinism.
pub fn merge_trace(child: Trace) {
    with_top(|top| {
        top.clock_us = top.clock_us.max(child.max_t_us());
        top.trace.metrics.merge(&child.metrics);
        for (track, name) in child.track_names {
            top.trace.track_names.insert(track, name);
        }
        for (k, v) in child.machine {
            *top.trace.machine.entry(k).or_insert(0.0) += v;
        }
        top.trace.records.extend(child.records);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_id_parent(r: &Record) -> (u64, u64) {
        match &r.data {
            RecordData::Span { id, parent, .. } => (*id, *parent),
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn emits_are_noops_without_a_scope() {
        assert!(!active());
        span("t", "s", 0, 10, &[]);
        counter("c", 0, 1);
        let scope = enter("t", "outer", 0);
        assert_eq!(scope.id(), 0);
        scope.exit(5, &[]);
        // Nothing to assert directly — the test passes by not leaking
        // state into the next scope:
        let ((), trace) = record_scope(0, || {});
        assert!(trace.records.is_empty());
        assert!(trace.metrics.is_empty());
    }

    #[test]
    fn a_scope_captures_everything_emitted_inside_it() {
        let (sum, trace) = record_scope(0, || {
            event("demo", "start", 5, &[("n", 2u64.into())]);
            counter("demo.count", 10, 3);
            gauge("demo.level", 20, 1.5);
            observe("demo.sample", 30, 2.5);
            span("demo", "work", 0, 40, &[]);
            1 + 1
        });
        assert_eq!(sum, 2);
        assert_eq!(trace.records.len(), 5);
        assert_eq!(trace.metrics.counter("demo.count"), 3);
        assert_eq!(trace.max_t_us(), 40);
        assert!(!active());
    }

    #[test]
    fn counter_now_uses_the_sim_time_high_water_mark() {
        let ((), trace) = record_scope(0, || {
            event("demo", "tick", 1234, &[]);
            counter_now("demo.count", 1);
        });
        let last = trace.records.last().expect("record present");
        assert_eq!(last.t_us, 1234);
    }

    #[test]
    fn scopes_parent_everything_emitted_inside_them() {
        let ((), trace) = record_scope(0, || {
            let root = enter("demo", "root", 0);
            assert_eq!(root.id(), 1);
            span("demo", "leaf-a", 1, 3, &[]);
            let child = enter("demo", "child", 4);
            span("demo", "leaf-b", 5, 7, &[]);
            child.exit(8, &[]);
            root.exit(10, &[("n", 2u64.into())]);
            // After the root closes, new spans are parentless again.
            span("demo", "tail", 11, 12, &[]);
        });
        // Record order is close order: leaf-a, leaf-b, child, root, tail.
        let ids: Vec<(u64, u64)> = trace.records.iter().map(span_id_parent).collect();
        let root_id = 1;
        let child_id = 3;
        assert_eq!(
            ids,
            vec![
                (2, root_id),
                (4, child_id),
                (child_id, root_id),
                (root_id, 0),
                (5, 0),
            ]
        );
    }

    #[test]
    fn close_ends_at_the_sim_time_high_water_mark() {
        let ((), trace) = record_scope(0, || {
            let root = enter("demo", "root", 10);
            span("demo", "leaf", 20, 90, &[]);
            root.close(&[]);
        });
        let root = trace.records.last().expect("root span");
        assert_eq!(root.t_us, 10);
        assert_eq!(root.end_us(), 90);
    }

    #[test]
    fn dropping_an_unclosed_scope_still_records_it() {
        let ((), trace) = record_scope(0, || {
            let _scope = enter("demo", "dropped", 5);
            event("demo", "tick", 42, &[]);
        });
        assert_eq!(trace.records.len(), 2);
        let span = trace.records.last().expect("span record");
        assert_eq!(span.t_us, 5);
        assert_eq!(span.end_us(), 42);
    }

    #[test]
    fn span_on_track_roots_on_the_auxiliary_track() {
        let ((), trace) = record_scope(0, || {
            let root = enter("demo", "root", 0);
            span_on_track(9, "layout.demo", "lane", 1, 4, &[]);
            root.exit(5, &[]);
        });
        // The root scope opened first (id 1); the aux span drew id 2
        // from the same collector but parents to nothing.
        let aux = &trace.records[0];
        assert_eq!(aux.track, 9);
        assert_eq!(span_id_parent(aux), (2, 0));
        let root = &trace.records[1];
        assert_eq!(root.track, 0);
        assert_eq!(span_id_parent(root), (1, 0));
    }

    #[test]
    fn track_names_record_and_merge() {
        let ((), trace) = record_scope(0, || {
            name_track(0, "main");
            let ((), child) = record_scope(3, || name_track(3, "rep-2"));
            merge_trace(child);
        });
        assert_eq!(trace.track_names.get(&0).map(String::as_str), Some("main"));
        assert_eq!(trace.track_names.get(&3).map(String::as_str), Some("rep-2"));
    }

    #[test]
    fn nested_scopes_shadow_and_merge_explicitly() {
        let ((), outer) = record_scope(0, || {
            event("outer", "a", 1, &[]);
            let ((), inner) = record_scope(7, || {
                event("inner", "b", 2, &[]);
            });
            assert_eq!(inner.records.len(), 1);
            merge_trace(inner);
            event("outer", "c", 3, &[]);
        });
        assert_eq!(outer.records.len(), 3);
        let tracks: Vec<u32> = outer.records.iter().map(|r| r.track).collect();
        assert_eq!(tracks, vec![0, 7, 0]);
    }

    #[test]
    fn a_panicking_scope_does_not_poison_the_thread() {
        let caught = std::panic::catch_unwind(|| {
            record_scope(0, || {
                event("demo", "pre", 1, &[]);
                panic!("rigged");
            })
        });
        assert!(caught.is_err());
        assert!(!active(), "guard must pop the collector on unwind");
        let ((), trace) = record_scope(0, || event("demo", "ok", 1, &[]));
        assert_eq!(trace.records.len(), 1);
    }

    #[test]
    fn machine_stats_sum_across_merges() {
        let ((), trace) = record_scope(0, || {
            machine_stat("steals", 2.0);
            let ((), child) = record_scope(1, || machine_stat("steals", 3.0));
            merge_trace(child);
        });
        assert_eq!(trace.machine.get("steals").copied(), Some(5.0));
    }
}
