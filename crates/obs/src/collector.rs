//! The thread-local recording scope and the emit API.
//!
//! There is deliberately no global subscriber: a global sink behind a
//! lock would interleave records nondeterministically under the
//! parallel replication pool. Instead, each thread carries a *stack* of
//! collectors. [`record_scope`] pushes one, runs a closure, and pops it
//! back off together with everything the closure emitted; the caller
//! decides how child traces compose (the replication pool merges them
//! **in index order** via [`merge_trace`], which is what keeps traces
//! byte-identical at any `--threads` value).
//!
//! With no collector installed every emit function is a no-op that
//! returns before allocating, so uninstrumented runs pay one
//! thread-local read per call site — and call sites on hot paths guard
//! with [`active`] so even field construction is skipped.

use crate::metrics::MetricsRegistry;
use crate::record::{fields_from, FieldValue, Record, RecordData};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Everything one recording scope observed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Records in emission order (children merged in index order).
    pub records: Vec<Record>,
    /// Registry folded over the records as they were emitted.
    pub metrics: MetricsRegistry,
    /// Machine-dependent stats (worker/steal counts, …). Excluded from
    /// determinism comparisons; values sum when traces merge.
    pub machine: BTreeMap<String, f64>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Latest sim-time covered by any record (0 when empty).
    #[must_use]
    pub fn max_t_us(&self) -> u64 {
        self.records.iter().map(Record::end_us).max().unwrap_or(0)
    }
}

#[derive(Debug)]
struct Collector {
    track: u32,
    /// High-water sim-time over everything seen so far — the timestamp
    /// hint used by [`counter_now`] for emitters that have no clock in
    /// scope (e.g. the contribution ledger).
    clock_us: u64,
    trace: Trace,
}

thread_local! {
    static STACK: RefCell<Vec<Collector>> = const { RefCell::new(Vec::new()) };
}

/// True when a recording scope is active on this thread. Hot paths
/// check this once and skip field construction entirely when recording
/// is off, keeping the no-subscriber cost to one thread-local read.
#[must_use]
pub fn active() -> bool {
    STACK.with(|s| !s.borrow().is_empty())
}

fn with_top<F: FnOnce(&mut Collector)>(f: F) {
    STACK.with(|s| {
        if let Some(top) = s.borrow_mut().last_mut() {
            f(top);
        }
    });
}

/// Pops the collector this scope pushed even if the closure panics, so
/// a panicking replication cannot poison later scopes on a pooled
/// worker thread.
struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Runs `f` with a fresh collector installed on this thread and returns
/// its result together with everything it emitted.
///
/// `track` labels the records (0 for a top-level scope, `index + 1` for
/// parallel replication tasks). Scopes nest: an inner scope shadows the
/// outer one until it closes, and the caller chooses whether to
/// [`merge_trace`] the child back in.
pub fn record_scope<T>(track: u32, f: impl FnOnce() -> T) -> (T, Trace) {
    STACK.with(|s| {
        s.borrow_mut().push(Collector {
            track,
            clock_us: 0,
            trace: Trace::new(),
        });
    });
    let guard = ScopeGuard;
    let out = f();
    std::mem::forget(guard);
    let trace = STACK
        .with(|s| s.borrow_mut().pop())
        .map(|c| c.trace)
        .unwrap_or_default();
    (out, trace)
}

fn push(t_us: u64, data: RecordData) {
    with_top(|top| {
        let record = Record {
            track: top.track,
            t_us,
            data,
        };
        top.clock_us = top.clock_us.max(record.end_us());
        top.trace.metrics.apply(&record);
        top.trace.records.push(record);
    });
}

/// Records a completed sim-time span `[start_us, end_us]`.
pub fn span(target: &str, name: &str, start_us: u64, end_us: u64, fields: &[(&str, FieldValue)]) {
    if !active() {
        return;
    }
    push(
        start_us,
        RecordData::Span {
            target: target.to_string(),
            name: name.to_string(),
            dur_us: end_us.saturating_sub(start_us),
            fields: fields_from(fields),
        },
    );
}

/// Records an instantaneous structured event at sim-time `t_us`.
pub fn event(target: &str, name: &str, t_us: u64, fields: &[(&str, FieldValue)]) {
    if !active() {
        return;
    }
    push(
        t_us,
        RecordData::Event {
            target: target.to_string(),
            name: name.to_string(),
            fields: fields_from(fields),
        },
    );
}

/// Increments a counter at sim-time `t_us`.
pub fn counter(name: &str, t_us: u64, delta: u64) {
    if !active() {
        return;
    }
    push(
        t_us,
        RecordData::Counter {
            name: name.to_string(),
            delta,
        },
    );
}

/// Increments a counter at the collector's current sim-time high-water
/// mark — for emitters (like the contribution ledger) that have no
/// clock in scope. The hint is itself derived from recorded sim-times,
/// so it stays deterministic.
pub fn counter_now(name: &str, delta: u64) {
    with_top(|top| {
        let record = Record {
            track: top.track,
            t_us: top.clock_us,
            data: RecordData::Counter {
                name: name.to_string(),
                delta,
            },
        };
        top.trace.metrics.apply(&record);
        top.trace.records.push(record);
    });
}

/// Records a gauge level at sim-time `t_us`.
pub fn gauge(name: &str, t_us: u64, value: f64) {
    if !active() {
        return;
    }
    push(
        t_us,
        RecordData::Gauge {
            name: name.to_string(),
            value,
        },
    );
}

/// Records one histogram sample at sim-time `t_us`.
pub fn observe(name: &str, t_us: u64, value: f64) {
    if !active() {
        return;
    }
    push(
        t_us,
        RecordData::Observe {
            name: name.to_string(),
            value,
        },
    );
}

/// Adds to a machine-dependent stat (summing across merges). These live
/// outside the deterministic sections — thread counts, steal counts and
/// the like belong here, never in records or metrics.
pub fn machine_stat(name: &str, value: f64) {
    with_top(|top| {
        *top.trace.machine.entry(name.to_string()).or_insert(0.0) += value;
    });
}

/// Merges a child scope's trace into the current collector: records
/// append (preserving their tracks), metrics merge, machine stats sum.
/// Callers must merge children **in index order** for determinism.
pub fn merge_trace(child: Trace) {
    with_top(|top| {
        top.clock_us = top.clock_us.max(child.max_t_us());
        top.trace.metrics.merge(&child.metrics);
        for (k, v) in child.machine {
            *top.trace.machine.entry(k).or_insert(0.0) += v;
        }
        top.trace.records.extend(child.records);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_are_noops_without_a_scope() {
        assert!(!active());
        span("t", "s", 0, 10, &[]);
        counter("c", 0, 1);
        // Nothing to assert directly — the test passes by not leaking
        // state into the next scope:
        let ((), trace) = record_scope(0, || {});
        assert!(trace.records.is_empty());
        assert!(trace.metrics.is_empty());
    }

    #[test]
    fn a_scope_captures_everything_emitted_inside_it() {
        let (sum, trace) = record_scope(0, || {
            event("demo", "start", 5, &[("n", 2u64.into())]);
            counter("demo.count", 10, 3);
            gauge("demo.level", 20, 1.5);
            observe("demo.sample", 30, 2.5);
            span("demo", "work", 0, 40, &[]);
            1 + 1
        });
        assert_eq!(sum, 2);
        assert_eq!(trace.records.len(), 5);
        assert_eq!(trace.metrics.counter("demo.count"), 3);
        assert_eq!(trace.max_t_us(), 40);
        assert!(!active());
    }

    #[test]
    fn counter_now_uses_the_sim_time_high_water_mark() {
        let ((), trace) = record_scope(0, || {
            event("demo", "tick", 1234, &[]);
            counter_now("demo.count", 1);
        });
        let last = trace.records.last().expect("record present");
        assert_eq!(last.t_us, 1234);
    }

    #[test]
    fn nested_scopes_shadow_and_merge_explicitly() {
        let ((), outer) = record_scope(0, || {
            event("outer", "a", 1, &[]);
            let ((), inner) = record_scope(7, || {
                event("inner", "b", 2, &[]);
            });
            assert_eq!(inner.records.len(), 1);
            merge_trace(inner);
            event("outer", "c", 3, &[]);
        });
        assert_eq!(outer.records.len(), 3);
        let tracks: Vec<u32> = outer.records.iter().map(|r| r.track).collect();
        assert_eq!(tracks, vec![0, 7, 0]);
    }

    #[test]
    fn a_panicking_scope_does_not_poison_the_thread() {
        let caught = std::panic::catch_unwind(|| {
            record_scope(0, || {
                event("demo", "pre", 1, &[]);
                panic!("rigged");
            })
        });
        assert!(caught.is_err());
        assert!(!active(), "guard must pop the collector on unwind");
        let ((), trace) = record_scope(0, || event("demo", "ok", 1, &[]));
        assert_eq!(trace.records.len(), 1);
    }

    #[test]
    fn machine_stats_sum_across_merges() {
        let ((), trace) = record_scope(0, || {
            machine_stat("steals", 2.0);
            let ((), child) = record_scope(1, || machine_stat("steals", 3.0));
            merge_trace(child);
        });
        assert_eq!(trace.machine.get("steals").copied(), Some(5.0));
    }
}
