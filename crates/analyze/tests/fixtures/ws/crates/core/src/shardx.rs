//! Fixture: D3 — a hand-rolled shard exchange outside `hc-sim`.
//! Cross-shard message passing must live in the sanctioned engine,
//! where the merge order is provably layout-invariant; a private
//! channel loop in a library crate is exactly the nondeterminism D3
//! exists to block.

/// Ships one message through a private channel and joins.
pub fn exchange() {
    let (tx, rx) = std::sync::mpsc::channel::<(u64, u32)>();
    let handle = std::thread::spawn(move || tx.send((0, 1)));
    let _ = rx.recv();
    let _ = handle.join();
}
