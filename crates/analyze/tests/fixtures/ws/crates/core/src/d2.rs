//! Fixture: D2 — hash collections in library code.

use std::collections::HashMap;

/// Counts occurrences with nondeterministic iteration order.
pub fn tally(words: &[String]) -> Vec<(String, usize)> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for w in words {
        *counts.entry(w.clone()).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
