//! Fixture: H2 — public hc-core items must carry doc comments.

/// This one is documented and must not fire.
pub fn documented() {}

pub fn undocumented() {}
