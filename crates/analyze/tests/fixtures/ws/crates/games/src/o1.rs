//! Planted O1 violations: direct console output in library code.

pub fn noisy_progress() {
    println!("progress: 50%");
}

pub fn noisy_debugging(x: u32) -> u32 {
    eprintln!("x = {x}");
    dbg!(x)
}
