//! Fixture: D3 — ad-hoc threading in library code.

pub fn fan_out() {
    let handle = std::thread::spawn(|| 1 + 1);
    let _ = handle.join();
}

pub fn chatter() {
    let (tx, rx) = std::sync::mpsc::channel::<u32>();
    drop((tx, rx));
}
