//! Fixture: P1 — panicking calls and computed indexing in library code.

pub fn head(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}

pub fn last_window(xs: &[u32], n: usize) -> &[u32] {
    &xs[xs.len() - n..]
}
