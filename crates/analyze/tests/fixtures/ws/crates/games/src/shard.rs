//! Fixture: R1 RNG discipline — un-indexed sources, cloned streams,
//! and struct-stored RNG state in shard-reachable code fire; the
//! serial hub section stays silent behind the `hub_step` barrier.

pub struct MiniCampaign {
    factory: RngFactory,
    hub_rng: SimRng,
}

impl ShardWorkload for MiniCampaign {
    fn shard_step(&self, sid: u32) -> u64 {
        let mut rng = self.factory.stream("session");
        let dup = rng.clone();
        spin(&mut rng) + drain(dup) + self.gap(sid)
    }

    fn hub_step(&mut self) -> u64 {
        let mut rng = self.factory.stream("matchmaking");
        rng.gen()
    }
}

impl MiniCampaign {
    fn gap(&self, sid: u32) -> u64 {
        mix(&self.hub_rng, sid)
    }
}

pub struct CleanCampaign {
    factory: RngFactory,
}

impl ShardWorkload for CleanCampaign {
    fn shard_step(&self, sid: u32) -> u64 {
        let mut rng = self.factory.indexed_stream("shard.session", u64::from(sid));
        spin(&mut rng)
    }

    fn hub_step(&mut self) -> u64 {
        0
    }
}

fn spin(rng: &mut SimRng) -> u64 {
    rng.gen()
}

fn drain(mut rng: SimRng) -> u64 {
    rng.gen()
}

fn mix(rng: &SimRng, sid: u32) -> u64 {
    let _ = rng;
    u64::from(sid)
}

/// Sharded matchmaking: per-bucket wait pools run inside
/// `shard_step`, so their pairing draws are R1-subject even though
/// the same bucket state is also read behind the hub barrier during
/// stats harvest.
pub struct BucketCampaign {
    factory: RngFactory,
    buckets: Vec<WaitBucket>,
}

pub struct WaitBucket {
    draws: u64,
}

impl WaitBucket {
    fn pair_unindexed(&mut self, factory: &RngFactory) -> u64 {
        let mut rng = factory.stream("shard.match");
        let dup = rng.clone();
        self.draws += 1;
        spin(&mut rng) + drain(dup)
    }

    fn pair_indexed(&mut self, factory: &RngFactory, bucket: u64) -> u64 {
        let mut rng = factory.indexed_stream("shard.match", (bucket << 40) | self.draws);
        self.draws += 1;
        spin(&mut rng)
    }
}

impl ShardWorkload for BucketCampaign {
    fn shard_step(&mut self, sid: u32) -> u64 {
        let bucket = u64::from(sid) % 2;
        match self.buckets.first_mut() {
            Some(mb) => mb.pair_unindexed(&self.factory) + mb.pair_indexed(&self.factory, bucket),
            None => 0,
        }
    }

    fn hub_step(&mut self) -> u64 {
        self.buckets.iter().map(|mb| mb.draws).sum()
    }
}
