//! Fixture: R1 RNG discipline — un-indexed sources, cloned streams,
//! and struct-stored RNG state in shard-reachable code fire; the
//! serial hub section stays silent behind the `hub_step` barrier.

pub struct MiniCampaign {
    factory: RngFactory,
    hub_rng: SimRng,
}

impl ShardWorkload for MiniCampaign {
    fn shard_step(&self, sid: u32) -> u64 {
        let mut rng = self.factory.stream("session");
        let dup = rng.clone();
        spin(&mut rng) + drain(dup) + self.gap(sid)
    }

    fn hub_step(&mut self) -> u64 {
        let mut rng = self.factory.stream("matchmaking");
        rng.gen()
    }
}

impl MiniCampaign {
    fn gap(&self, sid: u32) -> u64 {
        mix(&self.hub_rng, sid)
    }
}

pub struct CleanCampaign {
    factory: RngFactory,
}

impl ShardWorkload for CleanCampaign {
    fn shard_step(&self, sid: u32) -> u64 {
        let mut rng = self.factory.indexed_stream("shard.session", u64::from(sid));
        spin(&mut rng)
    }

    fn hub_step(&mut self) -> u64 {
        0
    }
}

fn spin(rng: &mut SimRng) -> u64 {
    rng.gen()
}

fn drain(mut rng: SimRng) -> u64 {
    rng.gen()
}

fn mix(rng: &SimRng, sid: u32) -> u64 {
    let _ = rng;
    u64::from(sid)
}
