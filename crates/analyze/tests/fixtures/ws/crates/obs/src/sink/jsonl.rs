//! Mirrors the real `hc-obs` sink path: the one library location where
//! direct output is sanctioned, so O1 must stay silent here.

pub fn emit(line: &str) {
    println!("{line}");
}
