//! Fixture: R2 iteration-order sensitivity — insertion-order iteration
//! flowing into serialization or float accumulation fires; sorted,
//! justified, and sink-free flows stay silent.

pub struct Aggregate {
    counts: DetMap<String, u64>,
    tags: DetSet<String>,
}

impl Aggregate {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.counts.iter() {
            out.push_str(&format!("{k}={v}\n"));
        }
        out
    }

    pub fn render_sorted(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.counts.iter_sorted() {
            out.push_str(&format!("{k}={v}\n"));
        }
        out
    }

    pub fn mean(&self) -> f64 {
        // hc-analyze: allow(R2): order-insensitive — one round of f64 addition over disjoint keys, fixture-pinned
        self.counts.values().map(|v| *v as f64).sum::<f64>()
    }

    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    pub fn tag_line(&self) -> String {
        let rows: Vec<&String> = self.tags.iter().collect();
        rows.iter().map(|r| format!("<{r}>")).collect::<Vec<_>>().join(",")
    }
}
