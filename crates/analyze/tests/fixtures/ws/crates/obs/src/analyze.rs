//! Mirrors the real `hc-obs` analyze module: it lives next to the
//! exempt sink path but returns rendered strings instead of printing,
//! so O1 must still fire on any direct output planted here.

pub fn render(total_us: u64) -> String {
    println!("critical path: {total_us} us");
    format!("critical path: {total_us} us\n")
}
