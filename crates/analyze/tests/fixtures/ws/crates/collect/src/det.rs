//! Fixture: the `collect` crate is library code — `DetMap`/`DetSet`
//! use stays silent under D2, while the other library rules apply.

use hc_collect::DetMap;

/// Tallies words with deterministic iteration order (no D2 here).
pub fn tally(words: &[String]) -> DetMap<String, usize> {
    let mut counts: DetMap<String, usize> = DetMap::new();
    for w in words {
        *counts.entry(w.clone()).or_insert(0) += 1;
    }
    counts
}

/// Planted D1: OS entropy is banned in `collect` like any library crate.
pub fn bad_seed() -> u64 {
    rand::thread_rng().next_u64()
}
