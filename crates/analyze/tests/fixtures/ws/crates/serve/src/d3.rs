//! Fixture: D3 — ad-hoc threading in the hc-serve request path.

pub fn spawn_worker() {
    let handle = std::thread::spawn(|| 2 + 2);
    let _ = handle.join();
}
