//! Fixture: R1 — un-indexed RNG in shard-reachable hc-serve load
//! replay fires; the per-client indexed stream stays silent.

pub struct ServeCampaign {
    factory: RngFactory,
}

impl ShardWorkload for ServeCampaign {
    fn shard_step(&self, sid: u32) -> u64 {
        let mut rng = self.factory.stream("serve.traffic");
        step(&mut rng)
    }

    fn hub_step(&mut self) -> u64 {
        0
    }
}

pub struct IndexedServeCampaign {
    factory: RngFactory,
}

impl ShardWorkload for IndexedServeCampaign {
    fn shard_step(&self, sid: u32) -> u64 {
        let mut rng = self.factory.indexed_stream("serve.client", u64::from(sid));
        step(&mut rng)
    }

    fn hub_step(&mut self) -> u64 {
        0
    }
}

fn step(rng: &mut SimRng) -> u64 {
    rng.gen()
}
