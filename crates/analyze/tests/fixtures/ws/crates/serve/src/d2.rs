//! Fixture: D2 — hash collections in the hc-serve session table.

use std::collections::HashMap;

/// Maps players to sessions with nondeterministic iteration order.
pub fn session_table(pairs: &[(u64, u64)]) -> usize {
    let mut table: HashMap<u64, u64> = HashMap::new();
    for (player, session) in pairs {
        table.insert(*player, *session);
    }
    table.len()
}
