//! Fixture: D1 — wall-clock time in the hc-serve service core.

pub fn stamp_response() -> u128 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).unwrap_or_default().as_millis()
}
