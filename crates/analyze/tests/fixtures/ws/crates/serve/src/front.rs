//! Mirrors the real `hc-serve` socket front shim: the one sanctioned
//! crossing of the determinism boundary, so D1/D3/O1 must stay silent
//! here while the same tokens fire anywhere else in the crate.

pub fn accept_loop() {
    let started = std::time::SystemTime::now();
    let worker = std::thread::spawn(|| 0u32);
    let _ = (started, worker.join());
    eprintln!("listener down");
}
