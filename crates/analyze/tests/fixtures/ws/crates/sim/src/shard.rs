//! Fixture: the second sanctioned threading exemption — the sharded
//! single-run engine (`hc-sim::shard`) owns a key-ordered exchange
//! merge that keeps its worker threads byte-deterministic; D3 must
//! stay silent here.

pub fn windows() {
    let _ = crossbeam::thread::scope(|scope| {
        scope.spawn(|_| 1 + 1);
    });
}
