//! Fixture: a clean library file full of near-misses that must NOT fire.
//! A comment mentioning .unwrap() and HashMap and SystemTime is prose.

/// Doc example prose: `xs[i - 1].unwrap()` inside backticks is not code.
pub fn describe() -> &'static str {
    "strings may say HashMap, thread_rng, panic!(now) and xs[i - 1]"
}

pub fn checked(xs: &[u32], i: usize) -> Option<u32> {
    // Plain loop indexing is idiomatic; only arithmetic indices fire.
    if i < xs.len() {
        Some(xs[i])
    } else {
        xs.first().copied()
    }
}

pub fn repeat_literal() -> [u32; 3] {
    [0u32; 3]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let xs = vec![1, 2, 3];
        assert_eq!(xs.first().copied().unwrap(), xs[2 - 1] - 1);
    }
}
