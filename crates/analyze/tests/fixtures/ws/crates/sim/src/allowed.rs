//! Fixture: allow-directive handling — justified, unjustified, stale.

pub fn justified(xs: &[u32], n: usize) -> u32 {
    // hc-analyze: allow(P1): index guarded by the caller's length contract
    xs[n - 1]
}

pub fn trailing(x: Option<u32>) -> u32 {
    x.unwrap() // hc-analyze: allow(P1): fixture exercises the trailing form
}

pub fn unjustified(x: Option<u32>) -> u32 {
    x.unwrap() // hc-analyze: allow(P1)
}

// hc-analyze: allow(D1): nothing below actually uses a clock
pub fn stale() -> u32 {
    7
}
