//! Fixture: D1 — wall-clock and OS entropy in library code.

pub fn now_ms() -> u128 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).unwrap_or_default().as_millis()
}

pub fn roll() -> u64 {
    rand::random()
}
