//! Fixture: the sanctioned threading exemption — `hc-sim::par` is the
//! one library path allowed to use crossbeam; D3 must stay silent here.

pub fn pool() {
    let worker = crossbeam::deque::Worker::<u32>::new_fifo();
    drop(worker);
}
