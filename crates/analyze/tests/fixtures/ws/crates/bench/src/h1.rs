//! Fixture: H1 — `unsafe` is forbidden even in tool crates.

pub fn reinterpret(x: u64) -> f64 {
    unsafe { std::mem::transmute(x) }
}
