//! The findings ratchet, end to end: a baseline accepts today's
//! warnings, rejects any synthetically introduced new finding, and only
//! `--update-baseline` moves the accepted water mark.

use hc_analyze::baseline::Baseline;
use hc_analyze::{analyze_sources, analyze_workspace};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("ws")
}

/// One R2 warning (insertion-order render loop), zero errors.
const BOARD_ONE_WARNING: &str = "\
//! Temp fixture: a leaderboard with one order-sensitive render.

pub struct Board {
    scores: DetMap<String, u64>,
}

impl Board {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.scores.iter() {
            out.push_str(&format!(\"{k}={v}\\n\"));
        }
        out
    }
}
";

/// The same file after a regression: a second un-sorted iteration.
const BOARD_TWO_WARNINGS: &str = "\
//! Temp fixture: a leaderboard with one order-sensitive render.

pub struct Board {
    scores: DetMap<String, u64>,
}

impl Board {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.scores.iter() {
            out.push_str(&format!(\"{k}={v}\\n\"));
        }
        out
    }

    pub fn render_keys(&self) -> String {
        let mut out = String::new();
        for k in self.scores.keys() {
            out.push_str(&format!(\"{k}\\n\"));
        }
        out
    }
}
";

#[test]
fn a_new_finding_is_rejected_against_the_fixture_baseline() {
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    let baseline = Baseline::from_report(&report);
    assert!(
        !baseline.warnings.is_empty(),
        "fixture workspace should contribute R2 warnings to the baseline"
    );
    assert!(baseline.regressions(&report).is_empty());

    // Synthetically introduce a new warning in a file the baseline has
    // never seen: the ratchet must reject it.
    let sources = vec![(
        "crates/obs/src/extra.rs".to_string(),
        BOARD_ONE_WARNING.to_string(),
    )];
    let bigger = analyze_sources(&sources);
    assert_eq!(bigger.warning_count(), 1, "synthetic file must warn once");
    let regs = baseline.regressions(&bigger);
    assert_eq!(regs.len(), 1);
    assert_eq!(regs[0].rule, "R2");
    assert_eq!(regs[0].path, "crates/obs/src/extra.rs");
    assert_eq!(regs[0].current, 1);
    assert_eq!(regs[0].accepted, 0);

    // Updating the baseline to the bigger report accepts it.
    assert!(Baseline::from_report(&bigger)
        .regressions(&bigger)
        .is_empty());
}

fn run_check(root: &Path, baseline: &Path, update: bool) -> (i32, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hc-analyze"));
    cmd.arg("check")
        .arg("--root")
        .arg(root)
        .arg("--baseline")
        .arg(baseline);
    if update {
        cmd.arg("--update-baseline");
    }
    let out = cmd.output().expect("run hc-analyze");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().unwrap_or(-1), text)
}

#[test]
fn the_cli_ratchet_gates_exit_codes_end_to_end() {
    let dir = std::env::temp_dir().join("hc-analyze-ratchet-cli-test");
    let _ = std::fs::remove_dir_all(&dir);
    let src_dir = dir.join("ws").join("crates").join("obs").join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    let board = src_dir.join("board.rs");
    std::fs::write(&board, BOARD_ONE_WARNING).expect("write fixture");
    let ws = dir.join("ws");
    let baseline = dir.join("baseline.json");

    // Missing baseline file: usage error, not a silent pass.
    let (code, text) = run_check(&ws, &baseline, false);
    assert_eq!(code, 2, "missing baseline must exit 2: {text}");
    assert!(text.contains("--update-baseline"), "hint missing: {text}");

    // Creating the baseline accepts the standing warning.
    let (code, text) = run_check(&ws, &baseline, true);
    assert_eq!(code, 0, "update run must pass: {text}");
    let accepted = Baseline::load(&baseline).expect("baseline written");
    assert_eq!(
        accepted.warnings.get("R2 crates/obs/src/board.rs"),
        Some(&1)
    );

    // Same workspace against the fresh baseline: clean.
    let (code, text) = run_check(&ws, &baseline, false);
    assert_eq!(code, 0, "accepted warning must pass: {text}");

    // A second un-sorted iteration regresses the ratchet.
    std::fs::write(&board, BOARD_TWO_WARNINGS).expect("write regression");
    let (code, text) = run_check(&ws, &baseline, false);
    assert_eq!(code, 1, "regression must fail: {text}");
    assert!(
        text.contains("ratchet[R2]"),
        "regression not reported: {text}"
    );

    // Explicitly re-accepting moves the water mark.
    let (code, text) = run_check(&ws, &baseline, true);
    assert_eq!(code, 0, "re-accepted run must pass: {text}");
    let (code, _) = run_check(&ws, &baseline, false);
    assert_eq!(code, 0);
}
