//! Property tests for the lexer/rule boundary: rule tokens hidden
//! inside string literals, multi-hash raw strings, (nested) comments,
//! and behind escaped char literals must never fire a diagnostic — the
//! lexer strips every quoted and commented channel before rules run.

use hc_analyze::{analyze_source, classify, Report};
use proptest::prelude::*;

/// A non-core library path: every determinism rule applies, none of the
/// path exemptions do.
const LIB_PATH: &str = "crates/games/src/prop_fixture.rs";

fn run(source: &str) -> Report {
    let mut report = Report::default();
    analyze_source(source, LIB_PATH, classify(LIB_PATH), &mut report);
    report
}

/// Tokens that fire D1/D2/D3/P1/O1/H1/R1/R2 when they appear in library
/// code. None contain `"`, `\`, or `hc-analyze`, so they embed directly
/// in string/comment contexts without re-escaping. (The vendored
/// proptest has no `sample::select`; tests draw an index instead.)
const RULE_TOKENS: [&str; 17] = [
    "HashMap::new()",
    "HashSet::default()",
    "rand::thread_rng()",
    "SystemTime::now()",
    "Instant::now()",
    "std::thread::spawn(work)",
    "crossbeam::scope",
    "xs[i - 1].unwrap()",
    "value.expect(msg)",
    "panic!(oops)",
    "println!(stats)",
    "dbg!(x)",
    "unsafe { transmute(x) }",
    "factory.stream(session)",
    "rng.clone()",
    "from_entropy()",
    "counts.iter()",
];

proptest! {
    #[test]
    fn tokens_in_plain_strings_never_fire(
        token_idx in 0usize..RULE_TOKENS.len(),
        pre in "[a-zA-Z0-9 _]{0,12}",
        post in "[a-zA-Z0-9 _]{0,12}",
    ) {
        let token = RULE_TOKENS[token_idx];
        let mut src = String::from(
            "//! Prop fixture.\n\npub fn quoted() -> &'static str {\n    let s = \"",
        );
        src.push_str(&pre);
        src.push_str(token);
        src.push_str(&post);
        src.push_str("\";\n    s\n}\n");
        let report = run(&src);
        prop_assert!(report.diagnostics.is_empty(), "fired: {:?}", report.diagnostics);
    }

    #[test]
    fn tokens_in_multi_hash_raw_strings_never_fire(
        token_idx in 0usize..RULE_TOKENS.len(),
        hashes in 1usize..4,
    ) {
        // Embed a quote followed by one hash fewer than the delimiter:
        // a lexer that miscounts hashes closes the raw string early and
        // exposes the token as code.
        let token = RULE_TOKENS[token_idx];
        let h = "#".repeat(hashes);
        let mut src = String::from(
            "//! Prop fixture.\n\npub fn raw() -> &'static str {\n    r",
        );
        src.push_str(&h);
        src.push('"');
        src.push_str(token);
        src.push_str(" \"");
        src.push_str(&"#".repeat(hashes - 1));
        src.push_str(" tail\"");
        src.push_str(&h);
        src.push_str("\n}\n");
        let report = run(&src);
        prop_assert!(report.diagnostics.is_empty(), "fired: {:?}", report.diagnostics);
    }

    #[test]
    fn tokens_in_nested_comments_never_fire(
        token_idx in 0usize..RULE_TOKENS.len(),
        depth in 1usize..4,
    ) {
        let token = RULE_TOKENS[token_idx];
        let mut src = String::from("//! Prop fixture.\n\n// prose: ");
        src.push_str(token);
        src.push('\n');
        for _ in 0..depth {
            src.push_str("/* ");
        }
        src.push_str(token);
        for _ in 0..depth {
            src.push_str(" */");
        }
        src.push_str("\npub fn quiet() -> u32 {\n    0\n}\n");
        let report = run(&src);
        prop_assert!(report.diagnostics.is_empty(), "fired: {:?}", report.diagnostics);
    }

    #[test]
    fn char_literals_do_not_desync_the_lexer(
        token_idx in 0usize..RULE_TOKENS.len(),
        char_idx in 0usize..8,
    ) {
        let token = RULE_TOKENS[token_idx];
        let c = ['a', 'Z', '9', '_', '\\', '\'', '\n', '\t'][char_idx];
        // An escaped char literal ('\'', '\\') that is mis-lexed leaves
        // the lexer inside a bogus string state, which would expose the
        // following quoted token as code.
        let lit = match c {
            '\\' => "'\\\\'".to_string(),
            '\'' => "'\\''".to_string(),
            '\n' => "'\\n'".to_string(),
            '\t' => "'\\t'".to_string(),
            other => format!("'{other}'"),
        };
        let mut src = String::from("//! Prop fixture.\n\npub fn chars() -> char {\n    let q = ");
        src.push_str(&lit);
        src.push_str(";\n    let _s = \"");
        src.push_str(token);
        src.push_str("\";\n    q\n}\n");
        let report = run(&src);
        prop_assert!(report.diagnostics.is_empty(), "fired: {:?}", report.diagnostics);
    }

    #[test]
    fn allow_text_inside_strings_is_not_an_annotation(filler in "[a-z ]{0,10}") {
        // If the allow were parsed out of the string it would be stale
        // (no diagnostic on the guarded line) and fire W1.
        let mut src = String::from("//! Prop fixture.\n\npub fn s() -> &'static str {\n    \"");
        src.push_str(&filler);
        src.push_str("hc-analyze: allow(D1): not a real annotation\"\n}\n");
        let report = run(&src);
        prop_assert!(report.diagnostics.is_empty(), "fired: {:?}", report.diagnostics);
        prop_assert_eq!(report.allows_honored, 0);
    }
}
