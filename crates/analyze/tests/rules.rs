//! Integration tests: run the full workspace walk over the fixture
//! mini-workspace and assert every planted violation fires with its
//! exact rule id and line — and nothing else does.

use hc_analyze::{analyze_workspace, Severity};
use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("ws")
}

#[test]
fn planted_violations_fire_exactly() {
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    let got: Vec<(String, String, usize)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule.clone(), d.path.clone(), d.line))
        .collect();
    let expected: Vec<(String, String, usize)> = [
        ("H1", "crates/bench/src/h1.rs", 4),
        ("D1", "crates/collect/src/det.rs", 17),
        ("D2", "crates/core/src/d2.rs", 3),
        ("D2", "crates/core/src/d2.rs", 7),
        ("H2", "crates/core/src/h2.rs", 6),
        ("D3", "crates/core/src/shardx.rs", 9),
        ("D3", "crates/core/src/shardx.rs", 10),
        ("D3", "crates/games/src/d3.rs", 4),
        ("D3", "crates/games/src/d3.rs", 9),
        ("O1", "crates/games/src/o1.rs", 4),
        ("O1", "crates/games/src/o1.rs", 8),
        ("O1", "crates/games/src/o1.rs", 9),
        ("P1", "crates/games/src/p1.rs", 4),
        ("P1", "crates/games/src/p1.rs", 8),
        ("A1", "crates/sim/src/allowed.rs", 13),
        ("A2", "crates/sim/src/allowed.rs", 16),
        ("D1", "crates/sim/src/d1.rs", 4),
        ("D1", "crates/sim/src/d1.rs", 9),
    ]
    .iter()
    .map(|(r, p, l)| (r.to_string(), p.to_string(), *l))
    .collect();
    assert_eq!(got, expected);
}

#[test]
fn clean_file_and_test_modules_stay_silent() {
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.path.contains("clean.rs")),
        "clean fixture fired: {:?}",
        report.diagnostics
    );
}

#[test]
fn the_replication_pool_path_is_exempt_from_d3() {
    // fixtures/ws/crates/sim/src/par.rs uses crossbeam, mirroring the
    // real pool; the path-based exemption must keep it silent.
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert!(
        !report.diagnostics.iter().any(|d| d.path.contains("par.rs")),
        "D3 fired on the exempt pool path: {:?}",
        report.diagnostics
    );
}

#[test]
fn the_shard_engine_path_is_exempt_from_d3() {
    // fixtures/ws/crates/sim/src/shard.rs uses crossbeam scoped
    // threads, mirroring the real sharded single-run engine; the
    // path-based exemption must keep it silent — while the hand-rolled
    // shard exchange planted in crates/core (shardx.rs) still fires.
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.path.contains("sim/src/shard.rs")),
        "D3 fired on the exempt shard-engine path: {:?}",
        report.diagnostics
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.path.contains("shardx.rs") && d.rule == "D3"),
        "the out-of-engine shard exchange must still fire D3"
    );
}

#[test]
fn the_obs_sink_path_is_exempt_from_o1() {
    // fixtures/ws/crates/obs/src/sink/jsonl.rs prints, mirroring the
    // real sink modules; the path-based exemption must keep it silent.
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.path.contains("obs/src/sink")),
        "O1 fired on the exempt sink path: {:?}",
        report.diagnostics
    );
}

#[test]
fn justified_allows_suppress_and_are_counted() {
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    // allowed.rs plants two justified P1 allows (standalone-above and
    // trailing forms); both violations must be suppressed.
    assert_eq!(report.allows_honored, 2);
    let allowed_p1 = report
        .diagnostics
        .iter()
        .any(|d| d.path.contains("allowed.rs") && d.rule == "P1");
    assert!(!allowed_p1, "justified allow failed to suppress P1");
}

#[test]
fn severity_split_matches_rule_contract() {
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert!(report.has_errors());
    // Only the stale-allow advisory is a warning; everything else gates.
    let warnings: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .collect();
    assert_eq!(warnings.len(), 1);
    assert_eq!(warnings[0].rule, "A2");
    assert_eq!(report.error_count(), report.diagnostics.len() - 1);
}

#[test]
fn fixture_report_round_trips_through_json() {
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    let compact = serde_json::to_string(&report).expect("serialize");
    let back: hc_analyze::Report = serde_json::from_str(&compact).expect("deserialize");
    assert_eq!(back, report);
    let pretty = serde_json::to_string_pretty(&report).expect("serialize pretty");
    let back: hc_analyze::Report = serde_json::from_str(&pretty).expect("deserialize pretty");
    assert_eq!(back, report);
}

#[test]
fn det_collections_do_not_trip_d2() {
    // fixtures/ws/crates/collect/src/det.rs builds a DetMap in library
    // code; the D2 hash-collection rule must not fire on it (only the
    // planted D1 does).
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.path.contains("collect/") && d.rule == "D2"),
        "D2 fired on hc_collect types: {:?}",
        report.diagnostics
    );
}

#[test]
fn files_scanned_counts_every_fixture() {
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert_eq!(report.files_scanned, 14);
}
