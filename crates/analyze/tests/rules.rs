//! Integration tests: run the full workspace walk over the fixture
//! mini-workspace and assert every planted violation fires with its
//! exact rule id and line — and nothing else does.

use hc_analyze::{analyze_workspace, Severity};
use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("ws")
}

#[test]
fn planted_violations_fire_exactly() {
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    let got: Vec<(String, String, usize)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule.clone(), d.path.clone(), d.line))
        .collect();
    let expected: Vec<(String, String, usize)> = [
        ("H1", "crates/bench/src/h1.rs", 4),
        ("D1", "crates/collect/src/det.rs", 17),
        ("D2", "crates/core/src/d2.rs", 3),
        ("D2", "crates/core/src/d2.rs", 7),
        ("H2", "crates/core/src/h2.rs", 6),
        ("D3", "crates/core/src/shardx.rs", 9),
        ("D3", "crates/core/src/shardx.rs", 10),
        ("D3", "crates/games/src/d3.rs", 4),
        ("D3", "crates/games/src/d3.rs", 9),
        ("O1", "crates/games/src/o1.rs", 4),
        ("O1", "crates/games/src/o1.rs", 8),
        ("O1", "crates/games/src/o1.rs", 9),
        ("P1", "crates/games/src/p1.rs", 4),
        ("P1", "crates/games/src/p1.rs", 8),
        ("R1", "crates/games/src/shard.rs", 12),
        ("R1", "crates/games/src/shard.rs", 13),
        ("R1", "crates/games/src/shard.rs", 25),
        ("R1", "crates/games/src/shard.rs", 72),
        ("R1", "crates/games/src/shard.rs", 73),
        ("R2", "crates/obs/src/agg.rs", 13),
        ("R2", "crates/obs/src/agg.rs", 38),
        ("O1", "crates/obs/src/analyze.rs", 6),
        ("D1", "crates/serve/src/d1.rs", 4),
        ("D2", "crates/serve/src/d2.rs", 3),
        ("D2", "crates/serve/src/d2.rs", 7),
        ("D3", "crates/serve/src/d3.rs", 4),
        ("R1", "crates/serve/src/shard.rs", 10),
        ("A1", "crates/sim/src/allowed.rs", 13),
        ("W1", "crates/sim/src/allowed.rs", 16),
        ("D1", "crates/sim/src/d1.rs", 4),
        ("D1", "crates/sim/src/d1.rs", 9),
    ]
    .iter()
    .map(|(r, p, l)| (r.to_string(), p.to_string(), *l))
    .collect();
    assert_eq!(got, expected);
}

#[test]
fn clean_file_and_test_modules_stay_silent() {
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.path.contains("clean.rs")),
        "clean fixture fired: {:?}",
        report.diagnostics
    );
}

#[test]
fn the_replication_pool_path_is_exempt_from_d3() {
    // fixtures/ws/crates/sim/src/par.rs uses crossbeam, mirroring the
    // real pool; the path-based exemption must keep it silent.
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert!(
        !report.diagnostics.iter().any(|d| d.path.contains("par.rs")),
        "D3 fired on the exempt pool path: {:?}",
        report.diagnostics
    );
}

#[test]
fn the_shard_engine_path_is_exempt_from_d3() {
    // fixtures/ws/crates/sim/src/shard.rs uses crossbeam scoped
    // threads, mirroring the real sharded single-run engine; the
    // path-based exemption must keep it silent — while the hand-rolled
    // shard exchange planted in crates/core (shardx.rs) still fires.
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.path.contains("sim/src/shard.rs")),
        "D3 fired on the exempt shard-engine path: {:?}",
        report.diagnostics
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.path.contains("shardx.rs") && d.rule == "D3"),
        "the out-of-engine shard exchange must still fire D3"
    );
}

#[test]
fn the_obs_sink_path_is_exempt_from_o1() {
    // fixtures/ws/crates/obs/src/sink/jsonl.rs prints, mirroring the
    // real sink modules; the path-based exemption must keep it silent.
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.path.contains("obs/src/sink")),
        "O1 fired on the exempt sink path: {:?}",
        report.diagnostics
    );
}

#[test]
fn the_obs_sink_exemption_does_not_cover_analyze() {
    // fixtures/ws/crates/obs/src/analyze.rs prints too, but sits
    // outside `obs/src/sink`; the exemption is the sink path only, so
    // the analyze module keeps its O1 coverage.
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.path.contains("obs/src/analyze.rs") && d.rule == "O1"),
        "O1 stayed silent on the non-exempt analyze module: {:?}",
        report.diagnostics
    );
}

#[test]
fn justified_allows_suppress_and_are_counted() {
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    // allowed.rs plants two justified P1 allows (standalone-above and
    // trailing forms) and agg.rs one justified R2 allow; all three
    // violations must be suppressed.
    assert_eq!(report.allows_honored, 3);
    let allowed_p1 = report
        .diagnostics
        .iter()
        .any(|d| d.path.contains("allowed.rs") && d.rule == "P1");
    assert!(!allowed_p1, "justified allow failed to suppress P1");
}

#[test]
fn severity_split_matches_rule_contract() {
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert!(report.has_errors());
    // Only R2 is ratchet-managed warning severity; everything else —
    // including the stale-allow audit W1 — gates as an error.
    let warnings: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .collect();
    assert_eq!(warnings.len(), 2);
    assert!(warnings.iter().all(|d| d.rule == "R2"));
    let w1 = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "W1")
        .expect("stale allow must fire W1");
    assert_eq!(w1.severity, Severity::Error);
    assert_eq!(report.error_count(), report.diagnostics.len() - 2);
}

#[test]
fn fixture_report_round_trips_through_json() {
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    let compact = serde_json::to_string(&report).expect("serialize");
    let back: hc_analyze::Report = serde_json::from_str(&compact).expect("deserialize");
    assert_eq!(back, report);
    let pretty = serde_json::to_string_pretty(&report).expect("serialize pretty");
    let back: hc_analyze::Report = serde_json::from_str(&pretty).expect("deserialize pretty");
    assert_eq!(back, report);
}

#[test]
fn det_collections_do_not_trip_d2() {
    // fixtures/ws/crates/collect/src/det.rs builds a DetMap in library
    // code; the D2 hash-collection rule must not fire on it (only the
    // planted D1 does).
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.path.contains("collect/") && d.rule == "D2"),
        "D2 fired on hc_collect types: {:?}",
        report.diagnostics
    );
}

#[test]
fn r1_spares_the_hub_barrier_and_indexed_streams() {
    // fixtures/ws/crates/games/src/shard.rs: `hub_step` draws a plain
    // stream (line 18) behind the barrier, and CleanCampaign derives an
    // indexed stream (line 35); neither may fire, while the un-indexed
    // shard-side draws do. fixtures/ws/crates/serve/src/shard.rs adds
    // the hc-serve load-replay case: its un-indexed stream (line 10)
    // fires, its per-client indexed stream (line 25) does not.
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    let games_r1: Vec<usize> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "R1" && d.path.contains("games/"))
        .map(|d| d.line)
        .collect();
    assert_eq!(games_r1, vec![12, 13, 25, 72, 73]);
    assert!(!games_r1.contains(&18), "hub barrier leaked into R1");
    assert!(!games_r1.contains(&35), "indexed_stream misflagged");
    let serve_r1: Vec<usize> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "R1" && d.path.contains("serve/"))
        .map(|d| d.line)
        .collect();
    assert_eq!(serve_r1, vec![10]);
}

#[test]
fn bucket_matchmaker_is_shard_reachable_under_r1() {
    // fixtures/ws/crates/games/src/shard.rs: BucketCampaign mirrors the
    // sharded matchmaker — per-bucket wait pools whose pairing methods
    // run inside `shard_step`. The graph must carry reachability into
    // the bucket type: an un-indexed `.stream(` draw (line 72) and a
    // cloned stream (line 73) in `WaitBucket::pair_unindexed` fire even
    // though the tokens live outside the `ShardWorkload` impl, while
    // the per-arrival `indexed_stream` draw (line 79) and the
    // hub-barrier harvest that reads the same buckets stay silent.
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    let bucket_r1: Vec<usize> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "R1" && d.path.contains("games/src/shard.rs") && d.line > 55)
        .map(|d| d.line)
        .collect();
    assert_eq!(bucket_r1, vec![72, 73], "bucket pairing escaped R1");
    assert!(
        !bucket_r1.contains(&79),
        "per-arrival indexed_stream misflagged in bucket code"
    );
}

#[test]
fn the_serve_front_shim_path_is_exempt_from_io_rules() {
    // fixtures/ws/crates/serve/src/front.rs uses wall-clock time, a
    // spawned thread, and stderr, mirroring the real socket shim; the
    // path-based exemption must keep it silent while d1.rs/d3.rs in the
    // same crate still fire.
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.path.contains("serve/src/front.rs")),
        "a rule fired on the exempt front-shim path: {:?}",
        report.diagnostics
    );
    for rule in ["D1", "D2", "D3"] {
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.path.contains("serve/") && d.rule == rule),
            "{rule} must still fire inside the hc-serve service core"
        );
    }
}

#[test]
fn r2_spares_sorted_justified_and_sink_free_iteration() {
    // fixtures/ws/crates/obs/src/agg.rs: `iter_sorted()` (line 21), the
    // justified allow(R2) (guarding line 29), and the sink-free
    // `total()` (line 33) stay silent; the raw render loop and the
    // let-tainted tag join fire as warnings.
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    let r2: Vec<(usize, Severity)> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "R2" && d.path.contains("agg.rs"))
        .map(|d| (d.line, d.severity))
        .collect();
    assert_eq!(r2, vec![(13, Severity::Warning), (38, Severity::Warning)]);
}

#[test]
fn files_scanned_counts_every_fixture() {
    let report = analyze_workspace(&fixture_root()).expect("fixture walk");
    assert_eq!(report.files_scanned, 22);
}
