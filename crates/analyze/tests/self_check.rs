//! The analyzer must hold itself to its own rules: a full workspace
//! walk from the repo root may not produce any error, and no diagnostic
//! at all may point into `crates/analyze/`.

use hc_analyze::analyze_workspace;
use std::path::PathBuf;

#[test]
fn the_analyzer_is_clean_under_its_own_rules() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = analyze_workspace(&root).expect("workspace walk");
    assert!(
        report.files_scanned > 100,
        "workspace walk found only {} files — wrong root?",
        report.files_scanned
    );
    let errors: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == hc_analyze::Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "workspace has analyzer errors: {errors:?}"
    );
    let own: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.path.starts_with("crates/analyze/"))
        .collect();
    assert!(own.is_empty(), "the analyzer fired on itself: {own:?}");
}
