//! Workspace symbol/use graph: every parsed function becomes a node,
//! call edges are resolved by name (over-approximating where the
//! receiver type is unknown), and reachability is a plain BFS.
//!
//! Over-approximation is deliberate: a method call `.play(…)` links to
//! *every* `play` defined in an impl or trait, so a rule running on the
//! reachable set can miss nothing that name resolution could actually
//! bind — at the cost of occasionally visiting an unrelated same-named
//! function. Edges into *barrier* methods are cut by the caller (used
//! for the serial hub sections of the shard engines, which the
//! per-shard RNG discipline deliberately does not cover).

use crate::parse::{FieldDef, FnDef, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// One analyzed file, as the graph sees it.
#[derive(Debug)]
pub struct SourceUnit {
    /// Workspace-relative `/`-separated path.
    pub rel_path: String,
    /// Code channel, one entry per line.
    pub code: Vec<String>,
    /// Parsed items.
    pub parsed: ParsedFile,
}

/// A function node: `(file index, fn index within that file)`.
pub type FnId = (usize, usize);

/// The workspace-wide symbol graph.
#[derive(Debug)]
pub struct SymbolGraph {
    fn_by_name: BTreeMap<String, Vec<FnId>>,
    struct_fields: BTreeMap<String, Vec<FieldDef>>,
}

impl SymbolGraph {
    /// Indexes every function and struct across the units.
    #[must_use]
    pub fn build(units: &[SourceUnit]) -> Self {
        let mut fn_by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut struct_fields: BTreeMap<String, Vec<FieldDef>> = BTreeMap::new();
        for (fi, unit) in units.iter().enumerate() {
            for (gi, f) in unit.parsed.fns.iter().enumerate() {
                fn_by_name.entry(f.name.clone()).or_default().push((fi, gi));
            }
            for s in &unit.parsed.structs {
                // First definition wins; struct names are effectively
                // unique per workspace and fixtures are scanned alone.
                struct_fields
                    .entry(s.name.clone())
                    .or_insert_with(|| s.fields.clone());
            }
        }
        Self {
            fn_by_name,
            struct_fields,
        }
    }

    /// Fields of a struct by type name, if it was parsed anywhere.
    #[must_use]
    pub fn fields_of(&self, ty: &str) -> Option<&[FieldDef]> {
        self.struct_fields.get(ty).map(Vec::as_slice)
    }

    /// All functions sharing a name.
    #[must_use]
    pub fn fns_named(&self, name: &str) -> &[FnId] {
        self.fn_by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Functions reachable from `roots` by following name-resolved call
    /// edges, never entering a function whose name is in `barriers`.
    #[must_use]
    pub fn reachable(
        &self,
        units: &[SourceUnit],
        roots: &[FnId],
        barriers: &[&str],
    ) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = roots.iter().copied().collect();
        let mut queue: Vec<FnId> = roots.to_vec();
        while let Some(id) = queue.pop() {
            for callee in self.callees(units, id, barriers) {
                if seen.insert(callee) {
                    queue.push(callee);
                }
            }
        }
        seen
    }

    /// Name-resolved call targets of one function body.
    fn callees(&self, units: &[SourceUnit], id: FnId, barriers: &[&str]) -> Vec<FnId> {
        let unit = &units[id.0];
        let f = &unit.parsed.fns[id.1];
        let Some((start, end)) = f.body else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for line in &unit.code[start - 1..end.min(unit.code.len())] {
            for call in calls_in_line(line) {
                if barriers.contains(&call.name.as_str()) {
                    continue;
                }
                for &(tfi, tgi) in self.fns_named(&call.name) {
                    let target = &units[tfi].parsed.fns[tgi];
                    if call_matches(&call, target, tfi == id.0) {
                        out.push((tfi, tgi));
                    }
                }
            }
        }
        out
    }
}

/// One syntactic call site.
#[derive(Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Called name (`foo` in `foo(…)`, `.foo(…)`, `Ty::foo(…)`).
    pub name: String,
    /// Whether it was a `.name(` method call.
    pub method: bool,
    /// Explicit `Type::name(` qualifier, if any.
    pub qualifier: Option<String>,
}

/// Whether a call site can bind to a candidate definition.
fn call_matches(call: &CallSite, target: &FnDef, same_file: bool) -> bool {
    if let Some(q) = &call.qualifier {
        return target.impl_ty.as_deref() == Some(q.as_str());
    }
    if call.method {
        // Method syntax needs a self receiver on an impl or trait.
        target.has_self && (target.impl_ty.is_some() || target.trait_name.is_some())
    } else {
        // Free calls bind to free functions; cross-file binding is kept
        // (paths/imports are not tracked precisely enough to prune it),
        // but same-file free fns are always plausible targets.
        target.impl_ty.is_none() && target.trait_name.is_none() || same_file
    }
}

const KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "let", "fn", "in", "loop", "move", "else", "as",
];

/// Extracts call sites from one code-channel line.
#[must_use]
pub fn calls_in_line(code: &str) -> Vec<CallSite> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' || i == 0 {
            continue;
        }
        // Walk back over the identifier directly before `(`.
        let mut s = i;
        while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
            s -= 1;
        }
        if s == i {
            continue;
        }
        let name = &code[s..i];
        if name.as_bytes()[0].is_ascii_digit() || KEYWORDS.contains(&name) {
            continue;
        }
        let before = if s > 0 { bytes[s - 1] } else { b' ' };
        if before == b'!' {
            // Macro invocation.
            continue;
        }
        let method = before == b'.';
        let mut qualifier = None;
        if s >= 2 && &code[s - 2..s] == "::" {
            let mut q = s - 2;
            while q > 0 && (bytes[q - 1].is_ascii_alphanumeric() || bytes[q - 1] == b'_') {
                q -= 1;
            }
            let qual = &code[q..s - 2];
            if qual.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                qualifier = Some(qual.to_string());
            }
        }
        out.push(CallSite {
            name: name.to_string(),
            method,
            qualifier,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse_items;

    fn unit(rel_path: &str, src: &str) -> SourceUnit {
        let lexed = lex(src);
        let code: Vec<String> = lexed.iter().map(|l| l.code.clone()).collect();
        SourceUnit {
            rel_path: rel_path.to_string(),
            code,
            parsed: parse_items(&lexed),
        }
    }

    #[test]
    fn call_extraction_distinguishes_forms() {
        let calls = calls_in_line("let x = helper(a).finish(); Ty::make(); mac!(b); f(1)");
        assert_eq!(
            calls,
            vec![
                CallSite {
                    name: "helper".into(),
                    method: false,
                    qualifier: None
                },
                CallSite {
                    name: "finish".into(),
                    method: true,
                    qualifier: None
                },
                CallSite {
                    name: "make".into(),
                    method: false,
                    qualifier: Some("Ty".into())
                },
                CallSite {
                    name: "f".into(),
                    method: false,
                    qualifier: None
                },
            ]
        );
    }

    #[test]
    fn reachability_follows_calls_and_stops_at_barriers() {
        let a = unit(
            "a.rs",
            "\
pub struct Engine;
impl Engine {
    pub fn drive(&self) {
        step_one();
        self.hub_sync();
    }
    fn hub_sync(&self) {
        hub_only();
    }
}
",
        );
        let b = unit(
            "b.rs",
            "\
pub fn step_one() {
    step_two();
}
pub fn step_two() {}
pub fn hub_only() {}
pub fn unrelated() {}
",
        );
        let units = vec![a, b];
        let graph = SymbolGraph::build(&units);
        let drive = graph.fns_named("drive")[0];
        // No barrier: everything called transitively is reachable.
        let all = graph.reachable(&units, &[drive], &[]);
        let names: Vec<&str> = all
            .iter()
            .map(|&(fi, gi)| units[fi].parsed.fns[gi].name.as_str())
            .collect();
        assert!(names.contains(&"step_two"));
        assert!(names.contains(&"hub_only"));
        assert!(!names.contains(&"unrelated"));
        // Barrier on hub_sync: its callees disappear.
        let cut = graph.reachable(&units, &[drive], &["hub_sync"]);
        let names: Vec<&str> = cut
            .iter()
            .map(|&(fi, gi)| units[fi].parsed.fns[gi].name.as_str())
            .collect();
        assert!(names.contains(&"step_one"));
        assert!(!names.contains(&"hub_only"));
    }

    #[test]
    fn struct_fields_index_by_type_name() {
        let u = unit(
            "s.rs",
            "pub struct Camp { rng: SimRng, plans: DetMap<u64, u32> }\n",
        );
        let units = vec![u];
        let graph = SymbolGraph::build(&units);
        let fields = graph.fields_of("Camp").expect("fields");
        assert_eq!(fields[0].ty, "SimRng");
        assert_eq!(fields[1].ty, "DetMap<u64, u32>");
        assert!(graph.fields_of("Nope").is_none());
    }
}
