//! CLI for `hc-analyze`: `cargo run -p hc-analyze -- check [--json] [--root PATH]`.
//!
//! Exit status is 0 when no error-severity diagnostic fires, 1 when at
//! least one does, 2 on usage or IO problems. `hc-analyze` is a tool
//! crate, so reading `std::env` here is exactly the kind of thing the
//! pass forbids in library code but permits in tools.

use hc_analyze::{analyze_workspace, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: hc-analyze check [--json] [--root PATH]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut command: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "check" if command.is_none() => command = Some(arg),
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if command.as_deref() != Some("check") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    // Default root: the workspace directory two levels above this crate
    // at build time, falling back to the current directory (covers both
    // `cargo run -p hc-analyze` and a copied binary run from the root).
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map_or_else(|| PathBuf::from("."), PathBuf::from)
    });

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hc-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("hc-analyze: serialize report: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        let warnings = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        println!(
            "hc-analyze: {} files, {} errors, {} warnings, {} allows honored",
            report.files_scanned,
            report.error_count(),
            warnings,
            report.allows_honored
        );
    }

    if report.has_errors() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
