//! CLI for `hc-analyze`:
//! `cargo run -p hc-analyze -- check [--json] [--root PATH]
//! [--baseline PATH [--update-baseline]]`.
//!
//! Exit status is 0 when no error-severity diagnostic fires and the
//! baseline ratchet (when requested) is satisfied, 1 when an error or a
//! ratchet regression fires, 2 on usage or IO problems (including a
//! missing baseline file). `hc-analyze` is a tool crate, so reading
//! `std::env` here is exactly the kind of thing the pass forbids in
//! library code but permits in tools.

use hc_analyze::baseline::Baseline;
use hc_analyze::{analyze_workspace, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: hc-analyze check [--json] [--root PATH] [--baseline PATH [--update-baseline]]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut command: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--baseline requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => update_baseline = true,
            "check" if command.is_none() => command = Some(arg),
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if command.as_deref() != Some("check") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    if update_baseline && baseline_path.is_none() {
        eprintln!("--update-baseline requires --baseline PATH\n{USAGE}");
        return ExitCode::from(2);
    }

    // Default root: the workspace directory two levels above this crate
    // at build time, falling back to the current directory (covers both
    // `cargo run -p hc-analyze` and a copied binary run from the root).
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map_or_else(|| PathBuf::from("."), PathBuf::from)
    });

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hc-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    // Ratchet: regressions against the baseline fail the run; an update
    // rewrites the accepted counts to the current (lower or equal)
    // water mark.
    let mut regressions = Vec::new();
    if let Some(path) = &baseline_path {
        if update_baseline {
            if let Err(e) = Baseline::from_report(&report).save(path) {
                eprintln!("hc-analyze: {e}");
                return ExitCode::from(2);
            }
        } else {
            let baseline = match Baseline::load(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!(
                        "hc-analyze: {e}\n(run with --update-baseline to create the baseline)"
                    );
                    return ExitCode::from(2);
                }
            };
            regressions = baseline.regressions(&report);
        }
    }

    if json {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("hc-analyze: serialize report: {e}");
                return ExitCode::from(2);
            }
        }
        for r in &regressions {
            eprintln!("{r}");
        }
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        for r in &regressions {
            println!("{r}");
        }
        let warnings = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        println!(
            "hc-analyze: {} files, {} errors, {} warnings, {} allows honored",
            report.files_scanned,
            report.error_count(),
            warnings,
            report.allows_honored
        );
        if !regressions.is_empty() {
            println!(
                "hc-analyze: {} ratchet regression(s) against the baseline",
                regressions.len()
            );
        }
    }

    if report.has_errors() || !regressions.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
