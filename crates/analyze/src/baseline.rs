//! Findings ratchet: warning-severity findings may exist, but never
//! regress.
//!
//! The baseline file (`results/analyze_baseline.json`) records the
//! accepted number of warnings per `(rule, file)`. A check run with
//! `--baseline` fails when any pair's current count exceeds its
//! baseline (new pairs count against a baseline of zero); counts that
//! shrink are always accepted, and `--update-baseline` rewrites the
//! file so the lower water mark becomes binding. Errors never enter the
//! baseline — they fail the run outright.

use crate::{Report, Severity};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Accepted warning counts keyed by `"<rule> <path>"`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Baseline {
    /// `"R2 crates/obs/src/metrics.rs" → 1`-style entries, sorted by
    /// key for a stable on-disk diff.
    pub warnings: BTreeMap<String, usize>,
}

/// One baseline violation: a `(rule, file)` pair with more warnings
/// than the baseline accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Warnings found now.
    pub current: usize,
    /// Warnings the baseline accepts.
    pub accepted: usize,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ratchet[{}] {}: {} warning(s), baseline accepts {}",
            self.rule, self.path, self.current, self.accepted
        )
    }
}

impl Baseline {
    /// Captures the warning counts of a report.
    #[must_use]
    pub fn from_report(report: &Report) -> Self {
        let mut warnings: BTreeMap<String, usize> = BTreeMap::new();
        for d in &report.diagnostics {
            if d.severity == Severity::Warning {
                *warnings
                    .entry(format!("{} {}", d.rule, d.path))
                    .or_default() += 1;
            }
        }
        Self { warnings }
    }

    /// Loads a baseline file.
    ///
    /// # Errors
    ///
    /// Returns a message when the file is missing or malformed.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("baseline {}: {e}", path.display()))?;
        serde_json::from_str(&text).map_err(|e| format!("baseline {}: {e}", path.display()))
    }

    /// Writes the baseline as pretty JSON with a trailing newline.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let mut text =
            serde_json::to_string_pretty(self).map_err(|e| format!("baseline serialize: {e}"))?;
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("baseline {}: {e}", path.display()))
    }

    /// Every `(rule, file)` pair whose current warning count exceeds
    /// the accepted count, sorted by key.
    #[must_use]
    pub fn regressions(&self, report: &Report) -> Vec<Regression> {
        let current = Self::from_report(report);
        let mut out = Vec::new();
        for (key, &count) in &current.warnings {
            let accepted = self.warnings.get(key).copied().unwrap_or(0);
            if count > accepted {
                let (rule, path) = key.split_once(' ').unwrap_or((key.as_str(), ""));
                out.push(Regression {
                    rule: rule.to_string(),
                    path: path.to_string(),
                    current: count,
                    accepted,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diagnostic;

    fn warn(rule: &str, path: &str, line: usize) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            severity: Severity::Warning,
            path: path.to_string(),
            line,
            message: String::new(),
        }
    }

    fn report_with(diags: Vec<Diagnostic>) -> Report {
        Report {
            diagnostics: diags,
            files_scanned: 1,
            allows_honored: 0,
        }
    }

    #[test]
    fn new_warning_is_a_regression_against_an_empty_baseline() {
        let baseline = Baseline::default();
        let report = report_with(vec![warn("R2", "crates/obs/src/metrics.rs", 10)]);
        let regs = baseline.regressions(&report);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].rule, "R2");
        assert_eq!(regs[0].path, "crates/obs/src/metrics.rs");
        assert_eq!(regs[0].current, 1);
        assert_eq!(regs[0].accepted, 0);
    }

    #[test]
    fn accepted_warnings_pass_and_shrinking_is_fine() {
        let report = report_with(vec![
            warn("R2", "a.rs", 1),
            warn("R2", "a.rs", 2),
            warn("R2", "b.rs", 3),
        ]);
        let baseline = Baseline::from_report(&report);
        assert!(baseline.regressions(&report).is_empty());
        // Fewer warnings than accepted: still clean.
        let smaller = report_with(vec![warn("R2", "a.rs", 1)]);
        assert!(baseline.regressions(&smaller).is_empty());
        // One more in a known file: regression.
        let bigger = report_with(vec![
            warn("R2", "a.rs", 1),
            warn("R2", "a.rs", 2),
            warn("R2", "a.rs", 5),
            warn("R2", "b.rs", 3),
        ]);
        let regs = baseline.regressions(&bigger);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].current, 3);
        assert_eq!(regs[0].accepted, 2);
    }

    #[test]
    fn errors_never_enter_the_baseline() {
        let mut d = warn("R1", "a.rs", 1);
        d.severity = Severity::Error;
        let baseline = Baseline::from_report(&report_with(vec![d]));
        assert!(baseline.warnings.is_empty());
    }

    #[test]
    fn baseline_round_trips_through_disk() {
        let report = report_with(vec![warn("R2", "a.rs", 1)]);
        let baseline = Baseline::from_report(&report);
        let dir = std::env::temp_dir().join("hc-analyze-baseline-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("baseline.json");
        baseline.save(&path).expect("save");
        let back = Baseline::load(&path).expect("load");
        assert_eq!(back, baseline);
        assert!(Baseline::load(&dir.join("missing.json")).is_err());
    }
}
