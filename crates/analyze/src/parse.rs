//! Item-level parser: extracts functions, structs, impl blocks, and
//! `use` imports from the lexed code channel — still no `syn`.
//!
//! The parser is a single pass that accumulates "header" text between
//! statement terminators (`{`, `}`, `;`) and classifies each header
//! when its brace opens. A context stack mirrors brace nesting, so
//! every function knows its enclosing `impl` (type and trait), every
//! struct collects its typed fields, and bodies are exact line ranges.
//! It is deliberately approximate — good enough to build a call graph
//! and type the receivers the semantic rules care about, not a full
//! grammar.

use crate::lex::LexedLine;

/// One function parameter: `name: Type` (the `self` receiver is not
/// recorded as a parameter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Binding name with any `mut` stripped.
    pub name: String,
    /// Type text as written (including `&`/`&mut`).
    pub ty: String,
}

/// One `fn` item with its enclosing impl/trait context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl` block, if any (last path
    /// segment, generics stripped).
    pub impl_ty: Option<String>,
    /// Trait being implemented (`impl Trait for Ty`) or defined
    /// (default methods in `trait Trait`), if any.
    pub trait_name: Option<String>,
    /// Parameters (excluding `self`).
    pub params: Vec<Param>,
    /// Whether the signature takes a `self` receiver.
    pub has_self: bool,
    /// 1-based line where the signature starts.
    pub sig_line: usize,
    /// Inclusive 1-based body line range; `None` for bodiless trait
    /// method declarations.
    pub body: Option<(usize, usize)>,
}

/// One struct field: `name: Type`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Type text as written.
    pub ty: String,
}

/// One `struct` item with named fields (tuple structs record none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name (generics stripped).
    pub name: String,
    /// Named fields in declaration order.
    pub fields: Vec<FieldDef>,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
}

/// One imported name from a `use` declaration (brace groups are
/// flattened, `as` renames record the alias).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// The name brought into scope.
    pub name: String,
    /// The full path text it came from.
    pub path: String,
    /// 1-based line of the `use`.
    pub line: usize,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedFile {
    /// Function items, in source order.
    pub fns: Vec<FnDef>,
    /// Struct items, in source order.
    pub structs: Vec<StructDef>,
    /// Flattened imports.
    pub uses: Vec<UseDecl>,
}

#[derive(Debug, Clone)]
enum Ctx {
    Impl {
        ty: Option<String>,
        trait_name: Option<String>,
    },
    Trait {
        name: String,
    },
    Fn {
        idx: usize,
    },
    Struct {
        idx: usize,
    },
    Other,
}

/// Parses the lexed code channel of one file.
#[must_use]
pub fn parse_items(lexed: &[LexedLine]) -> ParsedFile {
    let mut out = ParsedFile::default();
    // (brace depth at entry, context kind)
    let mut stack: Vec<(usize, Ctx)> = Vec::new();
    let mut depth: usize = 0;
    let mut header = String::new();
    let mut header_line: usize = 0;
    // Angle-bracket depth inside a struct body, so `DetMap<Sym, u64>`
    // commas don't split a field.
    let mut field_buf = String::new();
    let mut angle: i32 = 0;
    // Braces inside a `use a::{b, c};` group belong to the path text,
    // not to item structure.
    let mut use_brace: i32 = 0;

    for (idx, line) in lexed.iter().enumerate() {
        let lineno = idx + 1;
        if header.trim().is_empty() && !line.code.trim().is_empty() {
            header_line = lineno;
        }
        for c in line.code.chars() {
            match c {
                '{' if use_brace > 0 || is_use_header(&header) => {
                    use_brace += 1;
                    header.push(c);
                }
                '}' if use_brace > 0 => {
                    use_brace -= 1;
                    header.push(c);
                }
                '{' => {
                    let ctx = classify_header(&header, &stack, header_line, &mut out);
                    stack.push((depth, ctx));
                    depth += 1;
                    header.clear();
                    field_buf.clear();
                    angle = 0;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if let Some((entry, ctx)) = stack.last() {
                        if *entry == depth {
                            match ctx {
                                Ctx::Fn { idx } => {
                                    if let Some(f) = out.fns.get_mut(*idx) {
                                        if let Some((start, _)) = f.body {
                                            f.body = Some((start, lineno));
                                        }
                                    }
                                }
                                Ctx::Struct { idx } => {
                                    flush_field(&mut field_buf, *idx, &mut out);
                                }
                                _ => {}
                            }
                            stack.pop();
                        }
                    }
                    header.clear();
                    field_buf.clear();
                    angle = 0;
                }
                ';' => {
                    finish_semicolon(&header, &stack, header_line, &mut out);
                    header.clear();
                }
                ',' => {
                    if let Some((entry, Ctx::Struct { idx })) = stack.last() {
                        if depth == entry + 1 {
                            if angle == 0 {
                                flush_field(&mut field_buf, *idx, &mut out);
                            } else {
                                field_buf.push(c);
                            }
                        }
                    }
                    header.push(c);
                }
                _ => {
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' {
                        angle = (angle - 1).max(0);
                    }
                    if let Some((entry, Ctx::Struct { .. })) = stack.last() {
                        if depth == entry + 1 {
                            field_buf.push(c);
                        }
                    }
                    header.push(c);
                }
            }
        }
        header.push(' ');
        if let Some((entry, Ctx::Struct { .. })) = stack.last() {
            if depth == entry + 1 && !field_buf.is_empty() {
                field_buf.push(' ');
            }
        }
    }
    out
}

fn flush_field(buf: &mut String, struct_idx: usize, out: &mut ParsedFile) {
    let owned = std::mem::take(buf);
    let text = strip_attrs(owned.trim());
    let text = text
        .trim_start_matches("pub(crate)")
        .trim_start_matches("pub(super)")
        .trim_start_matches("pub ")
        .trim();
    if text.is_empty() {
        return;
    }
    let Some(colon) = text.find(':') else { return };
    if text[colon..].starts_with("::") {
        return;
    }
    let name = text[..colon].trim();
    let ty = text[colon + 1..].trim();
    if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') && !ty.is_empty() {
        if let Some(s) = out.structs.get_mut(struct_idx) {
            s.fields.push(FieldDef {
                name: name.to_string(),
                ty: ty.to_string(),
            });
        }
    }
}

/// Whether accumulated header text is a `use` declaration (so its
/// brace group stays part of the path).
fn is_use_header(header: &str) -> bool {
    let t = header.trim_start();
    t.starts_with("use ") || t.starts_with("pub use ")
}

/// Strips leading `#[...]` attribute groups (balanced brackets).
fn strip_attrs(mut text: &str) -> &str {
    loop {
        text = text.trim_start();
        if !text.starts_with("#[") && !text.starts_with("#![") {
            return text;
        }
        let bytes = text.as_bytes();
        let mut depth = 0usize;
        let mut end = None;
        for (i, &b) in bytes.iter().enumerate() {
            match b {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        match end {
            Some(i) => text = &text[i + 1..],
            None => return text,
        }
    }
}

/// Classifies the header text that just opened a brace.
fn classify_header(
    header: &str,
    stack: &[(usize, Ctx)],
    header_line: usize,
    out: &mut ParsedFile,
) -> Ctx {
    let text = strip_attrs(header.trim());
    let tokens: Vec<&str> = text.split_whitespace().collect();
    if tokens.first() == Some(&"impl") || text.starts_with("impl<") {
        let (ty, trait_name) = parse_impl_header(text);
        return Ctx::Impl { ty, trait_name };
    }
    if let Some(pos) = fn_token_pos(&tokens) {
        if let Some(def) = parse_fn_header(text, &tokens, pos, stack, header_line, true) {
            out.fns.push(def);
            return Ctx::Fn {
                idx: out.fns.len() - 1,
            };
        }
    }
    if let Some(pos) = tokens.iter().position(|t| *t == "struct") {
        if let Some(raw) = tokens.get(pos + 1) {
            let name = ident_prefix(raw);
            if !name.is_empty() {
                out.structs.push(StructDef {
                    name,
                    fields: Vec::new(),
                    line: header_line,
                });
                return Ctx::Struct {
                    idx: out.structs.len() - 1,
                };
            }
        }
    }
    if let Some(pos) = tokens.iter().position(|t| *t == "trait") {
        if let Some(raw) = tokens.get(pos + 1) {
            let name = ident_prefix(raw);
            if !name.is_empty() {
                return Ctx::Trait { name };
            }
        }
    }
    Ctx::Other
}

/// A `;` terminated the header: record `use` declarations and bodiless
/// trait method signatures.
fn finish_semicolon(
    header: &str,
    stack: &[(usize, Ctx)],
    header_line: usize,
    out: &mut ParsedFile,
) {
    let text = strip_attrs(header.trim());
    let tokens: Vec<&str> = text.split_whitespace().collect();
    if tokens.first() == Some(&"use")
        || (tokens.first() == Some(&"pub") && tokens.get(1) == Some(&"use"))
    {
        record_use(text, header_line, out);
        return;
    }
    if matches!(stack.last(), Some((_, Ctx::Trait { .. }))) {
        if let Some(pos) = fn_token_pos(&tokens) {
            if let Some(def) = parse_fn_header(text, &tokens, pos, stack, header_line, false) {
                out.fns.push(def);
            }
        }
    }
}

/// Position of a real `fn` token (not part of `fn`-typed generics).
fn fn_token_pos(tokens: &[&str]) -> Option<usize> {
    const LEAD: [&str; 6] = [
        "pub",
        "pub(crate)",
        "pub(super)",
        "const",
        "async",
        "default",
    ];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i] == "fn" {
            return Some(i);
        }
        if !LEAD.contains(&tokens[i]) && !tokens[i].starts_with("pub(") {
            return None;
        }
        i += 1;
    }
    None
}

fn ident_prefix(raw: &str) -> String {
    raw.chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// Parses `impl<...> [Trait for] Ty [where ...]` into (type, trait).
fn parse_impl_header(text: &str) -> (Option<String>, Option<String>) {
    let mut rest = text.trim_start_matches("impl").trim_start();
    // Skip the generic parameter list if present.
    if rest.starts_with('<') {
        let mut depth = 0i32;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = rest[cut..].trim_start();
    }
    let rest = match rest.find(" where ") {
        Some(w) => &rest[..w],
        None => rest,
    };
    match rest.find(" for ") {
        Some(f) => {
            let trait_part = last_segment(rest[..f].trim());
            let ty_part = last_segment(rest[f + 5..].trim());
            (nonempty(ty_part), nonempty(trait_part))
        }
        None => (nonempty(last_segment(rest.trim())), None),
    }
}

fn nonempty(s: String) -> Option<String> {
    if s.is_empty() {
        None
    } else {
        Some(s)
    }
}

/// Last `::` path segment with generics stripped: `a::b::C<D>` → `C`.
fn last_segment(path: &str) -> String {
    let base = match path.find('<') {
        Some(lt) => &path[..lt],
        None => path,
    };
    let seg = base.rsplit("::").next().unwrap_or(base);
    ident_prefix(seg.trim())
}

fn parse_fn_header(
    text: &str,
    tokens: &[&str],
    fn_pos: usize,
    stack: &[(usize, Ctx)],
    header_line: usize,
    has_body: bool,
) -> Option<FnDef> {
    let raw_name = tokens.get(fn_pos + 1)?;
    let name = raw_name
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>();
    if name.is_empty() {
        return None;
    }
    let (impl_ty, trait_name) = enclosing_impl(stack);
    let (params, has_self) = parse_params(text);
    Some(FnDef {
        name,
        impl_ty,
        trait_name,
        params,
        has_self,
        sig_line: header_line,
        body: has_body.then_some((header_line, header_line)),
    })
}

/// Innermost `impl`/`trait` context on the stack.
fn enclosing_impl(stack: &[(usize, Ctx)]) -> (Option<String>, Option<String>) {
    for (_, ctx) in stack.iter().rev() {
        match ctx {
            Ctx::Impl { ty, trait_name } => return (ty.clone(), trait_name.clone()),
            Ctx::Trait { name } => return (None, Some(name.clone())),
            _ => {}
        }
    }
    (None, None)
}

/// Splits the parenthesized parameter list at top-level commas.
fn parse_params(text: &str) -> (Vec<Param>, bool) {
    let Some(open) = text.find('(') else {
        return (Vec::new(), false);
    };
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut close = text.len();
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                depth -= 1;
                if depth == 0 {
                    close = i;
                    break;
                }
            }
            b'<' => angle += 1,
            b'>' => angle = (angle - 1).max(0),
            _ => {}
        }
    }
    let inner = &text[open + 1..close.min(text.len())];
    let mut params = Vec::new();
    let mut has_self = false;
    depth = 0;
    angle = 0;
    let mut start = 0;
    let mut pieces = Vec::new();
    for (i, c) in inner.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '<' => angle += 1,
            '>' => angle = (angle - 1).max(0),
            ',' if depth == 0 && angle == 0 => {
                pieces.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pieces.push(&inner[start..]);
    for piece in pieces {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let bare = piece.trim_start_matches('&');
        let bare = bare
            .trim_start_matches("'static")
            .trim_start_matches('\'')
            .trim_start();
        if bare == "self" || bare == "mut self" || bare.starts_with("self:") {
            has_self = true;
            continue;
        }
        // Skip lifetimes left from `&'a self` handling.
        if let Some(colon) = piece.find(':') {
            let name = piece[..colon].trim().trim_start_matches("mut ").trim();
            let ty = piece[colon + 1..].trim();
            if !name.is_empty()
                && name.chars().all(|c| c.is_alphanumeric() || c == '_')
                && !ty.is_empty()
            {
                params.push(Param {
                    name: name.to_string(),
                    ty: ty.to_string(),
                });
            }
        } else if piece.contains("self") {
            has_self = true;
        }
    }
    (params, has_self)
}

/// Records a `use` declaration, flattening `{a, b as c}` groups.
fn record_use(text: &str, line: usize, out: &mut ParsedFile) {
    let path_text = text
        .trim_start_matches("pub ")
        .trim_start_matches("use ")
        .trim()
        .trim_end_matches(';')
        .trim();
    if let Some(open) = path_text.find('{') {
        let base = path_text[..open].trim_end_matches("::").trim();
        let inner = path_text[open + 1..].trim_end_matches('}');
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            push_use(base, part, line, out);
        }
    } else {
        push_use("", path_text, line, out);
    }
}

fn push_use(base: &str, part: &str, line: usize, out: &mut ParsedFile) {
    let (path, name) = match part.rsplit_once(" as ") {
        Some((p, alias)) => (p.trim(), alias.trim().to_string()),
        None => (part, part.rsplit("::").next().unwrap_or(part).to_string()),
    };
    let full = if base.is_empty() {
        path.to_string()
    } else {
        format!("{base}::{path}")
    };
    if !name.is_empty() && name != "*" {
        out.uses.push(UseDecl {
            name,
            path: full,
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_items(&lex(src))
    }

    #[test]
    fn extracts_free_and_impl_fns_with_bodies() {
        let src = "\
fn free(a: u32, b: &str) -> u32 {
    a
}

pub struct Widget {
    pub count: u64,
    label: String,
}

impl Widget {
    pub fn bump(&mut self, by: u64) {
        self.count += by;
    }
}
";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "free");
        assert_eq!(p.fns[0].impl_ty, None);
        assert_eq!(p.fns[0].body, Some((1, 3)));
        assert_eq!(p.fns[0].params.len(), 2);
        assert_eq!(p.fns[0].params[1].ty, "&str");
        assert_eq!(p.fns[1].name, "bump");
        assert_eq!(p.fns[1].impl_ty.as_deref(), Some("Widget"));
        assert!(p.fns[1].has_self);
        assert_eq!(p.fns[1].body, Some((11, 13)));
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].name, "Widget");
        assert_eq!(
            p.structs[0]
                .fields
                .iter()
                .map(|f| (f.name.as_str(), f.ty.as_str()))
                .collect::<Vec<_>>(),
            vec![("count", "u64"), ("label", "String")]
        );
    }

    #[test]
    fn trait_impls_record_the_trait() {
        let src = "\
impl<D: ShardGame> ShardWorkload for ShardedCampaign<D> {
    fn shard_step(&self, sid: u32) -> u32 {
        sid
    }
}
";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].impl_ty.as_deref(), Some("ShardedCampaign"));
        assert_eq!(p.fns[0].trait_name.as_deref(), Some("ShardWorkload"));
        assert_eq!(p.fns[0].body, Some((2, 4)));
    }

    #[test]
    fn trait_defs_record_default_and_bodiless_methods() {
        let src = "\
pub trait ShardGame {
    fn play(&self, seed: u64) -> u64;
    fn bonus(&self) -> u64 {
        0
    }
}
";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "play");
        assert_eq!(p.fns[0].trait_name.as_deref(), Some("ShardGame"));
        assert_eq!(p.fns[0].body, None);
        assert_eq!(p.fns[1].name, "bonus");
        assert_eq!(p.fns[1].body, Some((3, 5)));
    }

    #[test]
    fn multi_line_signatures_and_generic_fields_parse() {
        let src = "\
pub struct Hub {
    routes: DetMap<Sym, Vec<(u32, u64)>>,
    rng: SimRng,
}

impl Hub {
    pub fn route(
        &mut self,
        key: Sym,
        hops: &[u32],
    ) -> Option<u64> {
        None
    }
}
";
        let p = parse(src);
        assert_eq!(p.structs[0].fields.len(), 2);
        assert_eq!(p.structs[0].fields[0].ty, "DetMap<Sym, Vec<(u32, u64)>>");
        assert_eq!(p.structs[0].fields[1].ty, "SimRng");
        assert_eq!(p.fns[0].name, "route");
        assert_eq!(p.fns[0].params.len(), 2);
        assert_eq!(p.fns[0].params[1].name, "hops");
        assert_eq!(p.fns[0].body, Some((7, 13)));
    }

    #[test]
    fn use_groups_flatten_and_aliases_record() {
        let src = "\
use hc_sim::rng::{RngFactory, SimRng};
pub use hc_collect::DetMap as Map;
use std::fmt;
";
        let p = parse(src);
        let names: Vec<&str> = p.uses.iter().map(|u| u.name.as_str()).collect();
        assert_eq!(names, vec!["RngFactory", "SimRng", "Map", "fmt"]);
        assert_eq!(p.uses[0].path, "hc_sim::rng::RngFactory");
        assert_eq!(p.uses[2].path, "hc_collect::DetMap");
    }

    #[test]
    fn nested_fns_and_closures_do_not_corrupt_bodies() {
        let src = "\
fn outer() -> u32 {
    let f = |x: u32| {
        x + 1
    };
    fn inner(y: u32) -> u32 {
        y
    }
    f(inner(1))
}
fn after() {}
";
        let p = parse(src);
        let outer = p.fns.iter().find(|f| f.name == "outer").expect("outer");
        assert_eq!(outer.body, Some((1, 9)));
        let inner = p.fns.iter().find(|f| f.name == "inner").expect("inner");
        assert_eq!(inner.body, Some((5, 7)));
        let after = p.fns.iter().find(|f| f.name == "after").expect("after");
        assert_eq!(after.body, Some((10, 10)));
    }
}
