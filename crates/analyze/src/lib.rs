//! `hc-analyze`: a self-contained static-analysis pass over the
//! workspace's Rust sources, enforcing the project's determinism and
//! panic-safety invariants with `file:line` diagnostics.
//!
//! The pass has three layers (still no `syn`):
//!
//! 1. **Lexical** ([`lex`]): a character state machine splits every
//!    line into code and comment channels so rule text never matches
//!    inside string or comment content.
//! 2. **Item** ([`parse`]): a lightweight parser extracts functions
//!    (with parameters, impl/trait context, and exact body ranges),
//!    structs (with typed fields), and `use` imports.
//! 3. **Semantic** ([`graph`] + [`rules`]): parsed items feed a
//!    workspace-wide symbol graph; name-resolved call edges give the
//!    reachability sets that the flow-aware rules (R1, R2) run on.
//!
//! # Rules
//!
//! | id | severity | scope | invariant |
//! |----|----------|-------|-----------|
//! | D1 | error | library crates | no wall-clock / OS entropy (`SystemTime`, `Instant::now`, `thread_rng`, `rand::random`, `std::env`) |
//! | D2 | error | library crates | no `HashMap`/`HashSet` (iteration-order nondeterminism); use `hc_collect::DetMap`/`DetSet` or `BTreeMap`/`BTreeSet` |
//! | D3 | error | library crates | no ad-hoc threading (`std::thread`, `crossbeam`, mpsc channels) outside `hc-sim::par`/`shard` — all parallelism goes through the sanctioned engines |
//! | P1 | error | library crates | no `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!`/`unreachable!` or computed-index slicing |
//! | O1 | error | library crates | no `println!`/`eprintln!`/`dbg!` — library code emits through `hc-obs`; only the `hc-obs` sink modules may write output |
//! | H1 | error | whole workspace | no `unsafe` code |
//! | H2 | error | `hc-core` | every `pub` item carries a doc comment |
//! | R1 | error | shard/task-reachable code | every RNG derives from `indexed_stream`/`indexed_child`; no un-indexed sources, cloned streams, or struct-stored RNG state |
//! | R2 | warning | library crates | `DetMap`/`DetSet` insertion-order iteration must not flow into serialization, obs sinks, or `f64` accumulation — use `iter_sorted()` or a justified allow |
//! | A1 | error | everywhere | `hc-analyze: allow(...)` must carry a justification |
//! | W1 | error | everywhere | an allow comment that no longer suppresses a live diagnostic is stale — the allowlist can only shrink |
//!
//! Path-based exemptions: the sanctioned parallelism engines
//! (`hc-sim::par`/`shard`) are exempt from D3, the `hc-obs` sink
//! modules from O1, and the `hc-serve` socket front shim
//! ([`serve_front_exempt`]) from D1/D3/O1 — it sits outside the
//! determinism boundary by design. The `hc-serve` service core is a
//! library crate under the full rule set.
//!
//! A violation is suppressed by a justified allow comment on the same
//! line or the line directly above:
//!
//! ```text
//! // hc-analyze: allow(P1): index is guarded by the `rank == 0` branch
//! let lo = self.cdf[rank - 1];
//! ```
//!
//! Warning-severity findings (R2) ratchet through
//! `results/analyze_baseline.json` (see [`baseline`]): they may exist,
//! but their per-file count can never grow.

pub mod baseline;
pub mod graph;
mod lex;
pub mod parse;
mod rules;

use graph::SourceUnit;
use lex::{lex, LexedLine};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Library crates whose code must be deterministic and panic-free.
/// `hc-bench` and `hc-analyze` are tool crates: they may read the OS
/// environment and abort on broken invariants.
const LIBRARY_CRATES: [&str; 9] = [
    "sim",
    "collect",
    "core",
    "crowd",
    "games",
    "captcha",
    "aggregate",
    "obs",
    "serve",
];

/// Path fragments never scanned: external stand-ins, build output, VCS
/// metadata, and the analyzer's own seeded-violation fixtures.
const SKIP_DIRS: [&str; 4] = ["vendor", "target", ".git", "fixtures"];

// ---------------------------------------------------------------------------
// Report model
// ---------------------------------------------------------------------------

/// How severe a diagnostic is; only errors fail the check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// Invariant violation: fails `hc-analyze check`.
    Error,
    /// Advisory: reported and ratcheted via the baseline, but does not
    /// fail a plain check.
    Warning,
}

/// One finding, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Rule id (`D1`, `D2`, `D3`, `P1`, `O1`, `H1`, `H2`, `R1`, `R2`,
    /// `A1`, `W1`).
    pub rule: String,
    /// Error or warning.
    pub severity: Severity,
    /// Path relative to the scanned root, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{kind}[{}] {}:{}: {}",
            self.rule, self.path, self.line, self.message
        )
    }
}

/// The machine-readable result of one analysis run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Report {
    /// Every finding, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of violations suppressed by justified allow comments.
    pub allows_honored: usize,
}

impl Report {
    /// Whether any error-severity diagnostic was produced.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Count of error-severity diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Count of warning-severity diagnostics.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }
}

// ---------------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------------

/// What rule set applies to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source: all rules apply.
    Library {
        /// Whether this file belongs to `hc-core` (enables H2).
        core: bool,
    },
    /// Tool/example source (`hc-bench`, `hc-analyze`, `examples/`):
    /// only H1 applies.
    Tool,
    /// Test/bench source: only H1 applies.
    Test,
}

/// Classifies a workspace-relative path (`/`-separated).
#[must_use]
pub fn classify(rel_path: &str) -> FileKind {
    let parts: Vec<&str> = rel_path.split('/').collect();
    match parts.first() {
        Some(&"crates") if parts.len() >= 3 => {
            let crate_name = parts[1];
            let section = parts[2];
            if section == "tests" || section == "benches" {
                FileKind::Test
            } else if LIBRARY_CRATES.contains(&crate_name) {
                FileKind::Library {
                    core: crate_name == "core",
                }
            } else {
                FileKind::Tool
            }
        }
        Some(&"src") => FileKind::Library { core: false },
        Some(&"tests") | Some(&"benches") => FileKind::Test,
        _ => FileKind::Tool,
    }
}

// ---------------------------------------------------------------------------
// Allow directives
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    justified: bool,
    /// Line the directive itself sits on (where A1/W1 anchor).
    line: usize,
    /// Code line the directive guards (its own line for trailing
    /// comments, the next code line for standalone ones; 0 when no
    /// code line follows).
    guard_line: usize,
    used: bool,
}

/// Parses every `hc-analyze: allow(<rule>)[: justification]` directive in
/// a comment.
fn parse_allows(comment: &str, line: usize) -> Vec<Allow> {
    const MARKER: &str = "hc-analyze: allow(";
    let mut allows = Vec::new();
    let mut rest = comment;
    while let Some(start) = rest.find(MARKER) {
        let after = &rest[start + MARKER.len()..];
        let Some(close) = after.find(')') else { break };
        let rule = after[..close].trim().to_string();
        let tail = &after[close + 1..];
        let justified = tail.strip_prefix(':').is_some_and(|j| !j.trim().is_empty());
        allows.push(Allow {
            rule,
            justified,
            line,
            guard_line: line,
            used: false,
        });
        rest = tail;
    }
    allows
}

// ---------------------------------------------------------------------------
// Rule checks (per code-only line)
// ---------------------------------------------------------------------------

const D1_TOKENS: [&str; 5] = [
    "SystemTime",
    "Instant::now",
    "thread_rng",
    "rand::random",
    "std::env",
];

/// D3: threading primitives. Library crates must not spawn threads or
/// pass work over channels themselves — `hc-sim::par` is the single
/// sanctioned parallelism layer (its determinism contract depends on
/// owning every fan-out/merge), so only [`d3_exempt`] paths may use
/// these.
const D3_TOKENS: [&str; 4] = ["std::thread", "thread::spawn", "crossbeam", "mpsc::"];

/// Paths allowed to use threading primitives: the replication pool
/// (`hc-sim::par`) and the sharded single-run engine
/// (`hc-sim::shard`), each as a single file or a module directory.
/// Both own a determinism contract (index-ordered merge; key-ordered
/// window exchange) that makes their parallelism byte-invariant, which
/// is exactly what D3 exists to protect — everything else must route
/// through them.
#[must_use]
pub fn d3_exempt(rel_path: &str) -> bool {
    rel_path == "crates/sim/src/par.rs"
        || rel_path.starts_with("crates/sim/src/par/")
        || rel_path == "crates/sim/src/shard.rs"
        || rel_path.starts_with("crates/sim/src/shard/")
}

/// The `hc-serve` socket front shim: the one sanctioned crossing of the
/// determinism boundary. It blocks on real sockets, so wall-clock,
/// threads, and stderr diagnostics are unavoidable there — D1, D3, and
/// O1 are waived for this path only. The service core
/// (`crates/serve/src/service.rs`, `wire.rs`) gets no such pass: every
/// decision it makes must replay byte-for-byte from the request log.
#[must_use]
pub fn serve_front_exempt(rel_path: &str) -> bool {
    rel_path == "crates/serve/src/front.rs" || rel_path.starts_with("crates/serve/src/front/")
}

/// O1: direct console output. Library code must emit structured
/// records through `hc-obs` (or return data) rather than printing;
/// stray prints corrupt the experiment binaries' `JSON:` stdout
/// protocol and hide information from the trace tooling. `eprintln!(`
/// is listed before `println!(` so the diagnostic names the token that
/// actually appears (the latter is a substring of the former).
const O1_TOKENS: [&str; 3] = ["eprintln!(", "println!(", "dbg!("];

/// Paths allowed to produce output directly: the `hc-obs` sink modules,
/// the one sanctioned boundary between recorded traces and the outside
/// world.
#[must_use]
pub fn o1_exempt(rel_path: &str) -> bool {
    rel_path.starts_with("crates/obs/src/sink")
}

const P1_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "todo!(",
    "unimplemented!(",
    "unreachable!(",
];

fn check_d1(code: &str) -> Option<String> {
    D1_TOKENS
        .iter()
        .find(|t| code.contains(*t))
        .map(|t| format!("`{t}` introduces wall-clock time or OS entropy; library code must stay deterministic (seeded RNG + SimTime only)"))
}

fn check_d2(code: &str) -> Option<String> {
    ["HashMap", "HashSet"]
        .iter()
        .find(|t| code.contains(*t))
        .map(|t| format!("`{t}` has nondeterministic iteration order; use `hc_collect::DetMap`/`DetSet` or `BTreeMap`/`BTreeSet` (or justify with an allow if provably never iterated)"))
}

fn check_d3(code: &str) -> Option<String> {
    D3_TOKENS
        .iter()
        .find(|t| code.contains(*t))
        .map(|t| format!("`{t}` spawns threads or channels outside `hc-sim::par`; route parallelism through the replication pool so results stay byte-identical at any thread count"))
}

fn check_p1(code: &str) -> Option<String> {
    if let Some(t) = P1_TOKENS.iter().find(|t| code.contains(*t)) {
        return Some(format!(
            "`{}` can panic; library code must return typed errors (or justify the invariant with an allow)",
            t.trim_end_matches('(')
        ));
    }
    if has_computed_index(code) {
        return Some(
            "computed slice index can panic on an off-by-one; use `.get()`/checked math \
             (or justify the bound with an allow)"
                .to_string(),
        );
    }
    None
}

/// Detects indexing whose index expression contains arithmetic — the
/// classic out-of-bounds panic shape (`xs[i - 1]`, `&w[..n - 3]`). Plain
/// `xs[i]` loop indexing is deliberately out of scope, as are array
/// repeat literals (`[0u32; 2]`, which contain `;`).
fn has_computed_index(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (open, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        // Indexing requires a value expression directly before `[`.
        let is_index = open > 0
            && (matches!(bytes[open - 1], b')' | b']' | b'"' | b'_')
                || bytes[open - 1].is_ascii_alphanumeric());
        if !is_index {
            continue;
        }
        // `vec![` and attribute lines never reach here (`!` / `#` before `[`).
        let mut depth = 1;
        let mut j = open + 1;
        let mut has_arith = false;
        // Last non-space byte inside the brackets, to tell `a * b` from
        // the deref in `counts[*e]` (where `*` follows a delimiter).
        let mut prev = b'[';
        while j < bytes.len() && depth > 0 {
            match bytes[j] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                b';' => {
                    // Array repeat literal, not an index.
                    has_arith = false;
                    break;
                }
                b'+' | b'-' | b'/' => has_arith = true,
                b'*' => {
                    has_arith |= prev.is_ascii_alphanumeric() || matches!(prev, b'_' | b')' | b']');
                }
                _ => {}
            }
            if bytes[j] != b' ' {
                prev = bytes[j];
            }
            j += 1;
        }
        if has_arith && depth == 0 {
            return true;
        }
    }
    false
}

fn check_o1(code: &str) -> Option<String> {
    O1_TOKENS
        .iter()
        .find(|t| code.contains(*t))
        .map(|t| format!("`{}` writes directly to the console; library code must emit through `hc-obs` (spans/events/counters) or return data — only the hc-obs sink modules may print", t.trim_end_matches('(')))
}

fn check_h1(code: &str) -> Option<String> {
    // `forbid(unsafe_code)` attributes mention the lint name, not the
    // keyword with a block/fn shape; match the keyword only.
    let mut search = code;
    while let Some(pos) = search.find("unsafe") {
        let before_ok = pos == 0
            || !search.as_bytes()[pos - 1].is_ascii_alphanumeric()
                && search.as_bytes()[pos - 1] != b'_';
        let after = &search[pos + "unsafe".len()..];
        let after_ok = after
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok && !after.trim_start().starts_with("_code") {
            return Some(
                "`unsafe` is forbidden workspace-wide; every invariant must be checkable"
                    .to_string(),
            );
        }
        search = &search[pos + "unsafe".len()..];
    }
    None
}

// ---------------------------------------------------------------------------
// File scan (phase 1: per-line findings + allow directives)
// ---------------------------------------------------------------------------

/// One candidate finding before allow resolution.
#[derive(Debug, Clone)]
pub(crate) struct Finding {
    pub(crate) rule: &'static str,
    pub(crate) severity: Severity,
    pub(crate) line: usize,
    pub(crate) message: String,
}

/// Everything phase 1 learns about one file.
struct FileScan {
    kind: FileKind,
    findings: Vec<Finding>,
    allows: Vec<Allow>,
    /// Per line: whether it sits inside a `#[cfg(test)]` module.
    test_lines: Vec<bool>,
}

/// Lexes one file and runs the per-line rules, collecting findings and
/// allow directives without resolving them against each other.
fn scan_file(lexed: &[LexedLine], rel_path: &str, kind: FileKind) -> FileScan {
    let library = matches!(kind, FileKind::Library { .. });
    let core = matches!(kind, FileKind::Library { core: true });

    let mut scan = FileScan {
        kind,
        findings: Vec::new(),
        allows: Vec::new(),
        test_lines: vec![false; lexed.len()],
    };
    let mut pending_allows: Vec<Allow> = Vec::new();
    let mut depth: i64 = 0;
    let mut test_mod_depth: Option<i64> = None;
    let mut macro_depth: Option<i64> = None;
    let mut pending_cfg_test = false;
    let mut has_doc = false;

    for (idx, line) in lexed.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.trim();
        let comment_only = code.is_empty() && !line.comment.is_empty();

        // Allow directives: a trailing comment guards its own line; a
        // standalone comment line guards the next code line. Doc comments
        // are prose (they may *mention* the syntax), never directives.
        let mut line_allows = if line.is_doc {
            Vec::new()
        } else {
            parse_allows(&line.comment, lineno)
        };
        if comment_only {
            pending_allows.append(&mut line_allows);
            has_doc |= line.is_doc;
            continue;
        }
        for mut a in pending_allows.drain(..) {
            a.guard_line = lineno;
            line_allows.push(a);
        }

        // Track #[cfg(test)] module spans so test code is exempt from
        // the library-only rules.
        let depth_before = depth;
        for b in line.code.bytes() {
            match b {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(entry) = test_mod_depth {
            if depth <= entry {
                test_mod_depth = None;
            }
        }
        if let Some(entry) = macro_depth {
            if depth <= entry {
                macro_depth = None;
            }
        }
        let in_test_mod = test_mod_depth.is_some();
        // `macro_rules!` bodies are token templates (`pub struct $name`):
        // item-shape rules like H2 cannot read them reliably.
        let in_macro = macro_depth.is_some();
        if macro_depth.is_none() && line.code.contains("macro_rules!") && line.code.contains('{') {
            macro_depth = Some(depth_before);
        }
        if code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        } else if pending_cfg_test && (code.starts_with("mod ") || code.starts_with("pub mod ")) {
            if line.code.contains('{') {
                test_mod_depth = Some(depth_before);
            }
            pending_cfg_test = false;
        } else if !code.starts_with("#[") && !code.is_empty() {
            pending_cfg_test = false;
        }
        scan.test_lines[idx] = in_test_mod || test_mod_depth.is_some();

        // H2 doc-state machine: docs survive attribute lines, anything
        // else resets them.
        let is_attr = code.starts_with("#[") || code.starts_with("#![");
        let lib_rules_apply = library && !in_test_mod;

        let mut push = |rule: &'static str, message: String| {
            scan.findings.push(Finding {
                rule,
                severity: Severity::Error,
                line: lineno,
                message,
            });
        };
        let front_shim = serve_front_exempt(rel_path);
        if lib_rules_apply {
            if !front_shim {
                if let Some(m) = check_d1(&line.code) {
                    push("D1", m);
                }
            }
            if let Some(m) = check_d2(&line.code) {
                push("D2", m);
            }
            if !d3_exempt(rel_path) && !front_shim {
                if let Some(m) = check_d3(&line.code) {
                    push("D3", m);
                }
            }
            if let Some(m) = check_p1(&line.code) {
                push("P1", m);
            }
            if !o1_exempt(rel_path) && !front_shim {
                if let Some(m) = check_o1(&line.code) {
                    push("O1", m);
                }
            }
        }
        if let Some(m) = check_h1(&line.code) {
            push("H1", m);
        }
        if core && !in_test_mod && !in_macro && is_undocumented_pub(code, has_doc) {
            push(
                "H2",
                "public item in hc-core lacks a doc comment".to_string(),
            );
        }

        if line.is_doc {
            has_doc = true;
        } else if !is_attr {
            has_doc = false;
        }

        scan.allows.append(&mut line_allows);
    }
    // Trailing standalone allows with no code line after them guard
    // nothing (guard_line stays on the comment; nothing fires there).
    scan.allows.append(&mut pending_allows);
    scan
}

/// Resolves a file's findings against its allow directives (phase 2),
/// emitting final diagnostics: suppressions, A1 for unjustified-but-
/// firing allows, and W1 for stale ones.
fn resolve_file(rel_path: &str, mut scan: FileScan, report: &mut Report) {
    for finding in scan.findings {
        let allow = scan
            .allows
            .iter_mut()
            .find(|a| a.guard_line == finding.line && a.rule.eq_ignore_ascii_case(finding.rule));
        match allow {
            Some(a) if a.justified => {
                a.used = true;
                report.allows_honored += 1;
            }
            Some(a) => {
                a.used = true;
                let rule = finding.rule;
                report.diagnostics.push(Diagnostic {
                    rule: "A1".to_string(),
                    severity: Severity::Error,
                    path: rel_path.to_string(),
                    line: a.line,
                    message: format!(
                        "allow({rule}) requires a justification: `// hc-analyze: allow({rule}): <why this is sound>`"
                    ),
                });
            }
            None => report.diagnostics.push(Diagnostic {
                rule: finding.rule.to_string(),
                severity: finding.severity,
                path: rel_path.to_string(),
                line: finding.line,
                message: finding.message,
            }),
        }
    }
    // W1: stale allows — directives that no longer suppress a live
    // diagnostic are errors, so the allowlist can only shrink.
    for allow in scan.allows.into_iter().filter(|a| !a.used) {
        report.diagnostics.push(Diagnostic {
            rule: "W1".to_string(),
            severity: Severity::Error,
            path: rel_path.to_string(),
            line: allow.line,
            message: format!(
                "stale allow({}) — no live diagnostic on the guarded line; delete the comment (the allowlist only shrinks)",
                allow.rule
            ),
        });
    }
}

/// Whether a code line declares an undocumented public item. `pub use`
/// re-exports and `pub(crate)`-style restricted visibility are exempt,
/// matching rustc's `missing_docs`.
fn is_undocumented_pub(code: &str, has_doc: bool) -> bool {
    if has_doc || !code.starts_with("pub ") {
        return false;
    }
    // `pub mod x;` is exempt: the module file carries its own `//!` docs,
    // which this per-file pass cannot see (rustc's `missing_docs` can).
    let item = code.trim_start_matches("pub ").trim_start();
    const DOCUMENTED_KINDS: [&str; 8] = [
        "fn ", "struct ", "enum ", "trait ", "type ", "const ", "static ", "union ",
    ];
    DOCUMENTED_KINDS.iter().any(|k| item.starts_with(k)) || is_public_field(item)
}

/// Struct fields also need docs: `name: Type,` with no keyword prefix.
fn is_public_field(item: &str) -> bool {
    let Some(colon) = item.find(':') else {
        return false;
    };
    // Exclude paths (`::`) and keyword starts already handled.
    let name = &item[..colon];
    !item[colon..].starts_with("::")
        && !name.is_empty()
        && name.chars().all(|c| c.is_alphanumeric() || c == '_')
}

// ---------------------------------------------------------------------------
// Whole-pass drivers
// ---------------------------------------------------------------------------

/// Runs the full pass (per-line rules, symbol graph, semantic rules,
/// allow resolution) over in-memory sources given as
/// `(workspace-relative path, source text)` pairs.
#[must_use]
pub fn analyze_sources(files: &[(String, String)]) -> Report {
    let mut report = Report::default();
    let mut units: Vec<SourceUnit> = Vec::with_capacity(files.len());
    let mut scans: Vec<FileScan> = Vec::with_capacity(files.len());
    for (rel_path, source) in files {
        let kind = classify(rel_path);
        let lexed = lex(source);
        scans.push(scan_file(&lexed, rel_path, kind));
        units.push(SourceUnit {
            rel_path: rel_path.clone(),
            code: lexed.iter().map(|l| l.code.clone()).collect(),
            parsed: parse::parse_items(&lexed),
        });
    }
    let kinds: Vec<FileKind> = scans.iter().map(|s| s.kind).collect();
    let test_lines: Vec<Vec<bool>> = scans.iter().map(|s| s.test_lines.clone()).collect();
    for (fi, finding) in rules::semantic_findings(&units, &kinds, &test_lines) {
        scans[fi].findings.push(finding);
    }
    for (unit, scan) in units.iter().zip(scans) {
        resolve_file(&unit.rel_path, scan, &mut report);
    }
    report.files_scanned = files.len();
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    report
}

/// Analyzes one file's source text under the given classification,
/// appending diagnostics to `report`. The semantic rules see only this
/// file (a single-file symbol graph); [`analyze_sources`] /
/// [`analyze_workspace`] give them the whole workspace.
pub fn analyze_source(source: &str, rel_path: &str, kind: FileKind, report: &mut Report) {
    let lexed = lex(source);
    let mut scan = scan_file(&lexed, rel_path, kind);
    scan.kind = kind;
    let units = [SourceUnit {
        rel_path: rel_path.to_string(),
        code: lexed.iter().map(|l| l.code.clone()).collect(),
        parsed: parse::parse_items(&lexed),
    }];
    let kinds = [kind];
    let test_lines = [scan.test_lines.clone()];
    for (_, finding) in rules::semantic_findings(&units, &kinds, &test_lines) {
        scan.findings.push(finding);
    }
    resolve_file(rel_path, scan, report);
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

/// Recursively collects every `.rs` file under `root`, skipping
/// [`SKIP_DIRS`], sorted for deterministic reports.
///
/// # Errors
///
/// Returns an IO error message if a directory cannot be read.
pub fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the full pass over a workspace root.
///
/// # Errors
///
/// Returns an error message when the tree cannot be walked or a source
/// file cannot be read.
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        files.push((rel, source));
    }
    Ok(analyze_sources(&files))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: FileKind = FileKind::Library { core: false };
    const CORE: FileKind = FileKind::Library { core: true };

    fn run(source: &str, kind: FileKind) -> Report {
        let mut report = Report::default();
        analyze_source(source, "test.rs", kind, &mut report);
        report
    }

    fn rules(report: &Report) -> Vec<(&str, usize)> {
        report
            .diagnostics
            .iter()
            .map(|d| (d.rule.as_str(), d.line))
            .collect()
    }

    #[test]
    fn d1_flags_wall_clock_and_entropy() {
        let r = run("fn f() { let t = std::time::SystemTime::now(); }\n", LIB);
        assert_eq!(rules(&r), vec![("D1", 1)]);
        let r = run("fn f() -> u64 { rand::random() }\n", LIB);
        assert_eq!(rules(&r), vec![("D1", 1)]);
    }

    #[test]
    fn d2_flags_hash_collections() {
        let r = run("use std::collections::HashMap;\n", LIB);
        assert_eq!(rules(&r), vec![("D2", 1)]);
    }

    #[test]
    fn d3_flags_threading_outside_the_pool() {
        let r = run("fn f() { std::thread::spawn(|| {}); }\n", LIB);
        assert_eq!(rules(&r), vec![("D3", 1)]);
        let r = run("use crossbeam::deque::Worker;\n", LIB);
        assert_eq!(rules(&r), vec![("D3", 1)]);
        let r = run("use std::sync::mpsc::channel;\n", LIB);
        assert_eq!(rules(&r), vec![("D3", 1)]);
        // The replication pool itself is the sanctioned exemption.
        let mut report = Report::default();
        analyze_source(
            "use crossbeam::deque::Worker;\n",
            "crates/sim/src/par.rs",
            LIB,
            &mut report,
        );
        assert_eq!(rules(&report), vec![]);
        // Tool crates (bench binaries, the analyzer) may thread freely.
        let r = run("fn f() { std::thread::spawn(|| {}); }\n", FileKind::Tool);
        assert_eq!(rules(&r), vec![]);
    }

    #[test]
    fn p1_flags_panicky_calls_and_computed_indexing() {
        let r = run("fn f(x: Option<u32>) -> u32 { x.unwrap() }\n", LIB);
        assert_eq!(rules(&r), vec![("P1", 1)]);
        let r = run("fn f(xs: &[u32], i: usize) -> u32 { xs[i - 1] }\n", LIB);
        assert_eq!(rules(&r), vec![("P1", 1)]);
        // Plain loop indexing and repeat literals are in-scope idioms.
        let r = run(
            "fn f(xs: &[u32], i: usize) -> u32 { xs[i] + [0u32; 2][0] }\n",
            LIB,
        );
        assert_eq!(rules(&r), vec![]);
        // A deref index is not arithmetic; a real product is.
        let r = run(
            "fn f(m: &mut [u32], e: &usize, c: usize) { m[*e % c] += 1; }\n",
            LIB,
        );
        assert_eq!(rules(&r), vec![]);
        let r = run(
            "fn f(xs: &[u32], i: usize, w: usize) -> u32 { xs[i * w] }\n",
            LIB,
        );
        assert_eq!(rules(&r), vec![("P1", 1)]);
    }

    #[test]
    fn o1_flags_direct_output_in_library_code() {
        let r = run("fn f() { println!(\"progress\"); }\n", LIB);
        assert_eq!(rules(&r), vec![("O1", 1)]);
        let r = run("fn f() { eprintln!(\"oops\"); }\n", LIB);
        assert_eq!(rules(&r), vec![("O1", 1)]);
        let r = run("fn f(x: u32) -> u32 { dbg!(x) }\n", LIB);
        assert_eq!(rules(&r), vec![("O1", 1)]);
        // The diagnostic names the token that actually appears.
        let r = run("fn f() { eprintln!(\"oops\"); }\n", LIB);
        assert!(r.diagnostics[0].message.contains("`eprintln!`"));
        // Tool crates and test modules may print freely.
        let r = run("fn f() { println!(\"ok\"); }\n", FileKind::Tool);
        assert_eq!(rules(&r), vec![]);
        // The hc-obs sink modules are the sanctioned output boundary.
        let mut report = Report::default();
        analyze_source(
            "fn f() { println!(\"line\"); }\n",
            "crates/obs/src/sink/jsonl.rs",
            LIB,
            &mut report,
        );
        assert_eq!(rules(&report), vec![]);
    }

    #[test]
    fn h1_flags_unsafe_but_not_the_lint_name() {
        let r = run("fn f() { unsafe { std::mem::zeroed() } }\n", FileKind::Tool);
        assert!(rules(&r).contains(&("H1", 1)));
        let r = run("#![forbid(unsafe_code)]\n", FileKind::Tool);
        assert_eq!(rules(&r), vec![]);
    }

    #[test]
    fn h2_requires_docs_on_core_pub_items() {
        let r = run("pub fn naked() {}\n", CORE);
        assert_eq!(rules(&r), vec![("H2", 1)]);
        let r = run("/// Documented.\npub fn covered() {}\n", CORE);
        assert_eq!(rules(&r), vec![]);
        // Attributes between doc and item keep the doc attached.
        let r = run(
            "/// Doc.\n#[must_use]\npub fn covered() -> u32 { 0 }\n",
            CORE,
        );
        assert_eq!(rules(&r), vec![]);
        // pub use re-exports are exempt; non-core libraries are exempt.
        let r = run("pub use std::fmt;\n", CORE);
        assert_eq!(rules(&r), vec![]);
        let r = run("pub fn naked() {}\n", LIB);
        assert_eq!(rules(&r), vec![]);
    }

    #[test]
    fn strings_and_comments_never_match() {
        let r = run(
            "fn f() -> &'static str { \"call .unwrap() on a HashMap\" }\n",
            LIB,
        );
        assert_eq!(rules(&r), vec![]);
        let r = run("// mentions .unwrap() and SystemTime\nfn f() {}\n", LIB);
        assert_eq!(rules(&r), vec![]);
        let r = run("/// doc example: `x.unwrap()`\nfn f() {}\n", LIB);
        assert_eq!(rules(&r), vec![]);
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_library_rules() {
        let src = "\
fn lib_code() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
fn more_lib(x: Option<u32>) -> u32 { x.expect(\"boom\") }
";
        let r = run(src, LIB);
        assert_eq!(rules(&r), vec![("P1", 7)]);
    }

    #[test]
    fn justified_allow_suppresses_and_counts() {
        let src = "\
// hc-analyze: allow(P1): the index is guarded one line up
fn f(xs: &[u32], i: usize) -> u32 { xs[i - 1] }
";
        let r = run(src, LIB);
        assert_eq!(rules(&r), vec![]);
        assert_eq!(r.allows_honored, 1);
        // Trailing same-line form.
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // hc-analyze: allow(P1): checked by caller\n";
        let r = run(src, LIB);
        assert_eq!(rules(&r), vec![]);
    }

    #[test]
    fn unjustified_allow_is_an_error() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // hc-analyze: allow(P1)\n";
        let r = run(src, LIB);
        assert_eq!(rules(&r), vec![("A1", 1)]);
        assert!(r.has_errors());
    }

    #[test]
    fn stale_allow_is_a_w1_error() {
        let src = "// hc-analyze: allow(D1): nothing here actually\nfn f() {}\n";
        let r = run(src, LIB);
        assert_eq!(rules(&r), vec![("W1", 1)]);
        assert!(r.has_errors());
    }

    #[test]
    fn r1_flags_unindexed_rng_in_shard_reachable_code() {
        let src = "\
pub struct Camp { factory: RngFactory }
impl ShardWorkload for Camp {
    fn shard_step(&self, sid: u32) -> u64 {
        let mut rng = self.factory.stream(\"bad\");
        helper(&mut rng)
    }
    fn hub_step(&mut self) -> u64 {
        let mut rng = self.factory.stream(\"hub-ok\");
        rng.gen()
    }
}
fn helper(rng: &mut SimRng) -> u64 { rng.gen() }
";
        let mut report = Report::default();
        analyze_source(src, "crates/games/src/shard.rs", LIB, &mut report);
        // Only the shard_step stream fires; hub_step is behind the barrier.
        assert_eq!(rules(&report), vec![("R1", 4)]);
    }

    #[test]
    fn r1_flags_cloned_and_struct_stored_rngs() {
        let src = "\
pub struct Camp { task_rng: SimRng }
impl ShardWorkload for Camp {
    fn shard_step(&self, sid: u32) -> u64 {
        let mut rng = self.task_rng.clone();
        rng.gen()
    }
}
";
        let mut report = Report::default();
        analyze_source(src, "crates/games/src/shard.rs", LIB, &mut report);
        // Line 4 carries both the struct-stored use and the clone; the
        // dedup keeps one R1 per (line, rule).
        assert_eq!(rules(&report), vec![("R1", 4)]);
    }

    #[test]
    fn r1_accepts_indexed_streams() {
        let src = "\
pub struct Camp { factory: RngFactory }
impl ShardWorkload for Camp {
    fn shard_step(&self, sid: u32) -> u64 {
        let mut rng = self.factory.indexed_stream(\"shard.session\", u64::from(sid));
        rng.gen()
    }
}
";
        let mut report = Report::default();
        analyze_source(src, "crates/games/src/shard.rs", LIB, &mut report);
        assert_eq!(rules(&report), vec![]);
    }

    #[test]
    fn r2_flags_insertion_order_iteration_into_a_sink() {
        let src = "\
pub struct Board { scores: DetMap<String, u64> }
impl Board {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.scores.iter() {
            out.push_str(&format!(\"{k}={v}\\n\"));
        }
        out
    }
}
";
        let mut report = Report::default();
        analyze_source(src, "crates/games/src/board.rs", LIB, &mut report);
        assert_eq!(rules(&report), vec![("R2", 5)]);
        assert!(!report.has_errors(), "R2 is a ratcheted warning");
    }

    #[test]
    fn r2_accepts_sorted_iteration_and_sink_free_flows() {
        let src = "\
pub struct Board { scores: DetMap<String, u64> }
impl Board {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.scores.iter_sorted() {
            out.push_str(&format!(\"{k}={v}\\n\"));
        }
        out
    }
    pub fn total(&self) -> u64 {
        self.scores.values().sum()
    }
}
";
        let mut report = Report::default();
        analyze_source(src, "crates/games/src/board.rs", LIB, &mut report);
        assert_eq!(rules(&report), vec![]);
    }

    #[test]
    fn r2_sees_multi_line_method_chains() {
        let src = "\
pub struct Board { scores: DetMap<String, u64> }
impl Board {
    pub fn render(&self) -> String {
        let joined: String = self.scores
            .iter()
            .map(|(k, v)| format!(\"{k}={v};\"))
            .collect();
        joined
    }
}
";
        let mut report = Report::default();
        analyze_source(src, "crates/games/src/board.rs", LIB, &mut report);
        assert_eq!(rules(&report), vec![("R2", 4)]);
    }

    #[test]
    fn r2_taint_tracks_let_bindings_until_sorted() {
        // Collect-then-sort is the sanctioned pattern: no finding.
        let src = "\
pub struct Board { scores: DetMap<String, u64> }
impl Board {
    pub fn rows(&self) -> Vec<String> {
        let mut rows: Vec<_> = self.scores.iter().collect();
        rows.sort_unstable_by(|a, b| a.0.cmp(b.0));
        rows.iter().map(|(k, v)| format!(\"{k}={v}\")).collect()
    }
}
";
        let mut report = Report::default();
        analyze_source(src, "crates/games/src/board.rs", LIB, &mut report);
        assert_eq!(rules(&report), vec![]);
        // Without the sort, the formatted use of the binding fires.
        let src = src.replace("        rows.sort_unstable_by(|a, b| a.0.cmp(b.0));\n", "");
        let mut report = Report::default();
        analyze_source(&src, "crates/games/src/board.rs", LIB, &mut report);
        assert_eq!(rules(&report), vec![("R2", 5)]);
    }

    #[test]
    fn classification_maps_paths_to_rule_sets() {
        assert_eq!(classify("crates/core/src/jobs.rs"), CORE);
        assert_eq!(classify("crates/sim/src/rng.rs"), LIB);
        assert_eq!(classify("crates/obs/src/collector.rs"), LIB);
        assert_eq!(classify("crates/serve/src/service.rs"), LIB);
        assert_eq!(classify("crates/serve/tests/lifecycle.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/src/lib.rs"), FileKind::Tool);
        assert_eq!(classify("crates/analyze/src/main.rs"), FileKind::Tool);
        assert_eq!(classify("crates/sim/tests/props.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/benches/b.rs"), FileKind::Test);
        assert_eq!(classify("src/lib.rs"), LIB);
        assert_eq!(classify("tests/properties.rs"), FileKind::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Tool);
    }

    #[test]
    fn the_serve_front_shim_is_exempt_from_io_rules() {
        let shim = "fn f() { let t = std::time::SystemTime::now(); \
                    std::thread::spawn(|| 0); eprintln!(\"bind\"); let _ = t; }\n";
        let mut report = Report::default();
        analyze_source(shim, "crates/serve/src/front.rs", LIB, &mut report);
        assert_eq!(rules(&report), vec![]);
        // The service core gets no such pass: the same line fires all
        // three rules there.
        let mut report = Report::default();
        analyze_source(shim, "crates/serve/src/service.rs", LIB, &mut report);
        assert_eq!(rules(&report), vec![("D1", 1), ("D3", 1), ("O1", 1)]);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = Report::default();
        analyze_source(
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            "a.rs",
            LIB,
            &mut report,
        );
        report.files_scanned = 1;
        let json = serde_json::to_string(&report).expect("serialize");
        let back: Report = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
    }
}
