//! Lexical pass: split Rust source into per-line *code* and *comment*
//! channels so rule text never matches inside string or comment content.
//!
//! The state machine understands line/block comments (nested, doc
//! variants), plain strings with escape sequences, byte strings,
//! multi-hash raw strings (`r##"…"##`, `br#"…"#`), char literals
//! (including escaped ones like `'\''` and `'\u{1F600}'`), and
//! lifetimes. String and char *contents* are blanked from the code
//! channel; their delimiters remain as token boundaries.

/// One source line after the lexical pass.
#[derive(Debug, Clone, Default)]
pub struct LexedLine {
    /// Code with string/char contents blanked and comments removed.
    pub code: String,
    /// Concatenated comment text on this line (without `//` markers).
    pub comment: String,
    /// Whether the line starts a doc comment (`///` or `//!`).
    pub is_doc: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Code,
    Str,
    RawStr { hashes: usize },
    BlockComment { depth: usize, doc: bool },
}

/// Splits source text into per-line code and comment channels. The code
/// channel keeps string delimiters (as token boundaries) but blanks
/// their contents; comments go to the comment channel.
pub fn lex(source: &str) -> Vec<LexedLine> {
    let mut lines = Vec::new();
    let mut state = LexState::Code;
    for raw_line in source.split('\n') {
        let mut line = LexedLine::default();
        let chars: Vec<char> = raw_line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                LexState::Code => match c {
                    '/' if next == Some('/') => {
                        let rest: String = chars[i..].iter().collect();
                        line.is_doc |= rest.starts_with("///") || rest.starts_with("//!");
                        let text = rest.trim_start_matches('/').trim_start_matches('!');
                        line.comment.push_str(text);
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        let rest: String = chars[i..].iter().collect();
                        let doc = rest.starts_with("/**") || rest.starts_with("/*!");
                        state = LexState::BlockComment { depth: 1, doc };
                        i += 2;
                    }
                    '"' => {
                        line.code.push('"');
                        state = LexState::Str;
                        i += 1;
                    }
                    'r' if next == Some('"') || next == Some('#') => {
                        // Possible raw string: r"..." or r#"..."# with any
                        // number of hashes.
                        let mut j = i + 1;
                        let mut hashes = 0;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            line.code.push_str("r\"");
                            state = LexState::RawStr { hashes };
                            i = j + 1;
                        } else {
                            line.code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime: a literal closes with a
                        // quote one or two chars later (escapes aside).
                        if next == Some('\\') {
                            // Escaped char literal: the escaped character
                            // itself may be a quote (`'\''`), so the scan
                            // for the closing quote starts *after* it.
                            let mut j = i + 3;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            line.code.push_str("' '");
                            i = j + 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            line.code.push_str("' '");
                            i += 3;
                        } else {
                            // Lifetime: keep as code.
                            line.code.push(c);
                            i += 1;
                        }
                    }
                    _ => {
                        line.code.push(c);
                        i += 1;
                    }
                },
                LexState::Str => match c {
                    '\\' => i += 2,
                    '"' => {
                        line.code.push('"');
                        state = LexState::Code;
                        i += 1;
                    }
                    _ => i += 1,
                },
                LexState::RawStr { hashes } => {
                    if c == '"' {
                        let closed = (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                        if closed {
                            line.code.push('"');
                            state = LexState::Code;
                            i += 1 + hashes;
                            continue;
                        }
                    }
                    i += 1;
                }
                LexState::BlockComment { depth, doc } => {
                    if c == '*' && next == Some('/') {
                        if depth == 1 {
                            state = LexState::Code;
                        } else {
                            state = LexState::BlockComment {
                                depth: depth - 1,
                                doc,
                            };
                        }
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = LexState::BlockComment {
                            depth: depth + 1,
                            doc,
                        };
                        i += 2;
                    } else {
                        line.is_doc |= doc;
                        line.comment.push(c);
                        i += 1;
                    }
                }
            }
        }
        if let LexState::BlockComment { doc, .. } = state {
            line.is_doc |= doc;
        }
        lines.push(line);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(source: &str) -> Vec<String> {
        lex(source).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn plain_strings_are_blanked_with_escapes() {
        let code = code_of(r#"let s = "call .unwrap() on a HashMap";"#);
        assert_eq!(code, vec![r#"let s = "";"#]);
        // An escaped quote does not terminate the string.
        let code = code_of(r#"let s = "say \".unwrap()\" loudly"; x();"#);
        assert_eq!(code, vec![r#"let s = ""; x();"#]);
        // An escaped backslash before the closing quote does terminate it.
        let code = code_of(r#"let s = "tail\\"; y();"#);
        assert_eq!(code, vec![r#"let s = ""; y();"#]);
    }

    #[test]
    fn byte_strings_are_blanked() {
        let code = code_of(r#"let b = b"thread_rng inside bytes";"#);
        assert_eq!(code, vec![r#"let b = b"";"#]);
    }

    #[test]
    fn raw_strings_with_multiple_hashes_are_blanked() {
        let code = code_of(r####"let s = r"no hash .expect(";"####);
        assert_eq!(code, vec![r#"let s = r"";"#]);
        let code = code_of(r####"let s = r#".unwrap() "quoted" inside"#;"####);
        assert_eq!(code, vec![r#"let s = r"";"#]);
        // Two hashes: a `"#` inside the string must NOT close it.
        let code = code_of(r####"let s = r##"has "# inside .unwrap()"##;"####);
        assert_eq!(code, vec![r#"let s = r"";"#]);
        // Raw byte string.
        let code = code_of(r####"let s = br#"HashMap bytes"#;"####);
        assert_eq!(code, vec![r#"let s = br"";"#]);
    }

    #[test]
    fn raw_strings_span_lines() {
        let code = code_of("let s = r#\"line one .unwrap()\nline two HashMap\"#; f();");
        assert_eq!(code, vec!["let s = r\"", "\"; f();"]);
    }

    #[test]
    fn char_literals_are_blanked() {
        let code = code_of("let c = 'x'; f();");
        assert_eq!(code, vec!["let c = ' '; f();"]);
        // Escaped char literals, including the escaped quote itself.
        let code = code_of(r"let c = '\n'; f();");
        assert_eq!(code, vec!["let c = ' '; f();"]);
        let code = code_of(r"let c = '\''; g('a');");
        assert_eq!(code, vec!["let c = ' '; g(' ');"]);
        let code = code_of(r"let c = '\\'; g();");
        assert_eq!(code, vec!["let c = ' '; g();"]);
        let code = code_of(r"let c = '\u{1F600}'; h();");
        assert_eq!(code, vec!["let c = ' '; h();"]);
    }

    #[test]
    fn lifetimes_stay_in_code() {
        let code = code_of("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(code, vec!["fn f<'a>(x: &'a str) -> &'a str { x }"]);
    }

    #[test]
    fn line_comments_go_to_the_comment_channel() {
        let lexed = lex("x(); // trailing .unwrap() note\n// full-line HashMap note");
        assert_eq!(lexed[0].code, "x(); ");
        assert_eq!(lexed[0].comment, " trailing .unwrap() note");
        assert_eq!(lexed[1].code, "");
        assert!(lexed[1].comment.contains("full-line HashMap note"));
    }

    #[test]
    fn doc_comments_are_marked() {
        let lexed = lex("/// summary\n//! module doc\n// plain");
        assert!(lexed[0].is_doc);
        assert!(lexed[1].is_doc);
        assert!(!lexed[2].is_doc);
    }

    #[test]
    fn block_comments_nest() {
        let lexed = lex("a(); /* outer /* inner .unwrap() */ still comment */ b();");
        assert_eq!(lexed[0].code, "a();  b();");
        assert!(lexed[0].comment.contains("inner .unwrap()"));
        // Multi-line block comment.
        let lexed = lex("a(); /* spans\nlines HashMap */ b();");
        assert_eq!(lexed[0].code, "a(); ");
        assert_eq!(lexed[1].code, " b();");
    }

    #[test]
    fn comment_markers_inside_strings_are_content() {
        let code = code_of(r#"let s = "// not a comment"; f();"#);
        assert_eq!(code, vec![r#"let s = ""; f();"#]);
        let code = code_of(r#"let s = "/* not open"; g();"#);
        assert_eq!(code, vec![r#"let s = ""; g();"#]);
    }

    #[test]
    fn string_markers_inside_comments_are_content() {
        let lexed = lex("f(); // has a \" quote\ng();");
        assert_eq!(lexed[0].code, "f(); ");
        assert_eq!(lexed[1].code, "g();");
    }
}
