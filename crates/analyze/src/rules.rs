//! Semantic rules on top of the symbol graph.
//!
//! **R1 (RNG discipline, error)** — inside code reachable from the
//! shard/task entry points (`hc-sim::par`, `hc-sim::shard`, and every
//! `ShardWorkload::shard_step` / `ShardGame::play` implementation),
//! every RNG must be derived through `indexed_stream`/`indexed_child`.
//! Un-indexed sources (`.stream(`, `.child(`, raw seeding), cloned
//! RNGs, and struct-stored RNG state are flagged. The serial hub
//! section (`hub_step` and everything only it calls) is a barrier: the
//! hub legitimately owns plain streams because it runs single-threaded
//! in lockstep.
//!
//! **R2 (iteration-order sensitivity, warning)** — a `DetMap`/`DetSet`
//! `.iter()`/`.keys()`/`.values()` (or `for … in &map`) iterates in
//! insertion order; when the result flows into serialization, an obs
//! sink, or `f64` accumulation within the same statement (or through a
//! `let` binding later in the function), the iteration must go through
//! `iter_sorted()` or carry a justified `allow(R2)` annotation. A
//! `sort`/`BTree` collect between iteration and sink sanitizes the
//! flow. `hc-collect` itself is exempt: it *defines* the order
//! semantics.

use crate::graph::{FnId, SourceUnit, SymbolGraph};
use crate::{FileKind, Finding, Severity};
use std::collections::BTreeSet;

/// Paths whose every function is an R1 reachability root: the two
/// parallel engines.
fn r1_engine_path(rel_path: &str) -> bool {
    rel_path == "crates/sim/src/par.rs"
        || rel_path.starts_with("crates/sim/src/par/")
        || rel_path == "crates/sim/src/shard.rs"
        || rel_path.starts_with("crates/sim/src/shard/")
}

/// The sanctioned derivation layer: `RngFactory` itself must seed RNGs,
/// so R1 never fires inside it.
fn r1_exempt(rel_path: &str) -> bool {
    rel_path == "crates/sim/src/rng.rs"
}

/// Serial hub sections the per-shard RNG discipline does not cover.
const HUB_BARRIERS: [&str; 1] = ["hub_step"];

/// `(trait, method)` pairs whose implementations run per-shard or
/// per-task and therefore root R1 reachability.
const R1_ROOT_METHODS: [(&str, &str); 2] = [("ShardWorkload", "shard_step"), ("ShardGame", "play")];

/// Tokens that create an RNG from an un-indexed source. `.stream(` and
/// `.child(` cannot false-match their indexed variants: the preceding
/// character there is `_`, not `.`.
const UNINDEXED_RNG_TOKENS: [&str; 5] = [
    ".stream(",
    ".child(",
    "seed_from_u64(",
    "from_seed(",
    "from_entropy(",
];

/// Runs R1 and R2 over every unit; returns `(unit index, finding)`.
pub(crate) fn semantic_findings(
    units: &[SourceUnit],
    kinds: &[FileKind],
    test_lines: &[Vec<bool>],
) -> Vec<(usize, Finding)> {
    let graph = SymbolGraph::build(units);
    let mut out = Vec::new();
    check_r1(units, kinds, test_lines, &graph, &mut out);
    check_r2(units, kinds, test_lines, &graph, &mut out);
    out.sort_by(|a, b| (a.0, a.1.line, a.1.rule).cmp(&(b.0, b.1.line, b.1.rule)));
    out.dedup_by(|a, b| a.0 == b.0 && a.1.line == b.1.line && a.1.rule == b.1.rule);
    out
}

// ---------------------------------------------------------------------------
// R1: RNG discipline in shard/task-reachable code
// ---------------------------------------------------------------------------

fn check_r1(
    units: &[SourceUnit],
    kinds: &[FileKind],
    test_lines: &[Vec<bool>],
    graph: &SymbolGraph,
    out: &mut Vec<(usize, Finding)>,
) {
    let mut roots: Vec<FnId> = Vec::new();
    for (fi, unit) in units.iter().enumerate() {
        let engine = r1_engine_path(&unit.rel_path);
        for (gi, f) in unit.parsed.fns.iter().enumerate() {
            if f.body.is_none() {
                continue;
            }
            let trait_root = f.trait_name.as_deref().is_some_and(|t| {
                R1_ROOT_METHODS
                    .iter()
                    .any(|(rt, rm)| *rt == t && *rm == f.name)
            });
            if engine || trait_root {
                roots.push((fi, gi));
            }
        }
    }
    if roots.is_empty() {
        return;
    }
    for (fi, gi) in graph.reachable(units, &roots, &HUB_BARRIERS) {
        let unit = &units[fi];
        if !matches!(kinds[fi], FileKind::Library { .. }) || r1_exempt(&unit.rel_path) {
            continue;
        }
        let f = &unit.parsed.fns[gi];
        let Some((start, end)) = f.body else { continue };
        let rng_names = rng_value_names(unit, gi);
        let rng_fields: BTreeSet<String> = f
            .impl_ty
            .as_deref()
            .and_then(|ty| graph.fields_of(ty))
            .map(|fields| {
                fields
                    .iter()
                    .filter(|fd| is_rng_ty(&fd.ty))
                    .map(|fd| fd.name.clone())
                    .collect()
            })
            .unwrap_or_default();
        for lineno in start..=end.min(unit.code.len()) {
            if test_lines[fi].get(lineno - 1).copied().unwrap_or(false) {
                continue;
            }
            let code = &unit.code[lineno - 1];
            if let Some(tok) = UNINDEXED_RNG_TOKENS.iter().find(|t| code.contains(*t)) {
                out.push((fi, Finding {
                    rule: "R1",
                    severity: Severity::Error,
                    line: lineno,
                    message: format!(
                        "`{}` creates an RNG from an un-indexed source in shard/task-reachable code (via `{}`); derive it with `indexed_stream`/`indexed_child` so every shard and task owns an index-keyed stream",
                        tok.trim_start_matches('.').trim_end_matches('('),
                        f.name,
                    ),
                }));
            }
            for recv in clone_receivers(code) {
                let is_rng = rng_names.contains(&recv)
                    || recv
                        .strip_prefix("self.")
                        .is_some_and(|field| rng_fields.contains(field));
                if is_rng {
                    out.push((fi, Finding {
                        rule: "R1",
                        severity: Severity::Error,
                        line: lineno,
                        message: format!(
                            "`{recv}.clone()` duplicates an RNG stream in shard/task-reachable code (via `{}`); two consumers of one stream destroy replay independence — derive a second indexed stream instead",
                            f.name,
                        ),
                    }));
                }
            }
            for field in &rng_fields {
                if contains_field_access(code, field) {
                    out.push((fi, Finding {
                        rule: "R1",
                        severity: Severity::Error,
                        line: lineno,
                        message: format!(
                            "struct-stored RNG `self.{field}` used in shard/task-reachable code (via `{}`); shared RNG state crosses shard boundaries from an un-indexed source — derive a per-shard `indexed_stream` instead",
                            f.name,
                        ),
                    }));
                }
            }
        }
    }
}

/// Value names (params and locals) holding an RNG inside one function.
fn rng_value_names(unit: &SourceUnit, fn_idx: usize) -> BTreeSet<String> {
    let f = &unit.parsed.fns[fn_idx];
    let mut names: BTreeSet<String> = f
        .params
        .iter()
        .filter(|p| is_rng_ty(&p.ty) || is_rng_name(&p.name))
        .map(|p| p.name.clone())
        .collect();
    if let Some((start, end)) = f.body {
        for code in &unit.code[start - 1..end.min(unit.code.len())] {
            let trimmed = code.trim_start();
            let Some(rest) = trimmed.strip_prefix("let ") else {
                continue;
            };
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            let rng_typed = is_rng_name(&name)
                || contains_word(code, "SimRng")
                || contains_word(code, "StdRng")
                || code.contains(".stream(")
                || code.contains("indexed_stream(");
            if rng_typed {
                names.insert(name);
            }
        }
    }
    names
}

/// Whether a type text names an RNG (`SimRng`, `StdRng`, `impl Rng`,
/// `&mut Rng` bounds) — `RngFactory` is *not* an RNG.
fn is_rng_ty(ty: &str) -> bool {
    contains_word(ty, "SimRng") || contains_word(ty, "StdRng") || contains_word(ty, "Rng")
}

/// Conventional RNG binding names (`rng`, `plan_rng`, `rng_pool`).
fn is_rng_name(name: &str) -> bool {
    name == "rng" || name.ends_with("_rng") || name.starts_with("rng_")
}

/// Word-boundary containment: `RngFactory` does not contain the word
/// `Rng`.
fn contains_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Receiver chains of `.clone()` calls on a line (`rng` in
/// `rng.clone()`, `self.match_rng` in `self.match_rng.clone()`).
fn clone_receivers(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(".clone()") {
        let dot = from + pos;
        let mut s = dot;
        while s > 0 && (is_ident_byte(bytes[s - 1]) || bytes[s - 1] == b'.') {
            s -= 1;
        }
        if s < dot {
            out.push(code[s..dot].to_string());
        }
        from = dot + ".clone()".len();
    }
    out
}

/// Whether `self.<field>` appears with word boundaries.
fn contains_field_access(code: &str, field: &str) -> bool {
    let needle = format!("self.{field}");
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(&needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]) && bytes[start - 1] != b'.';
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

// ---------------------------------------------------------------------------
// R2: iteration-order sensitivity
// ---------------------------------------------------------------------------

/// Insertion-order iteration entry points on `DetMap`/`DetSet`.
/// (`.iter_sorted(` and `.values_mut(` never match: the character after
/// `iter`/`values` there is `_`, not `(`.)
const R2_OPS: [&str; 3] = [".iter()", ".keys()", ".values()"];

/// Tokens that sanitize an insertion-order flow before it reaches a
/// sink: explicit sorting or collection into an ordered container.
const R2_SANITIZERS: [&str; 4] = ["sort", "iter_sorted", "BTreeMap", "BTreeSet"];

/// Sink token families; the matched family names the finding.
const R2_SINKS: [(&str, &[&str]); 3] = [
    (
        "serialization/formatting",
        &[
            "format!(",
            "write!(",
            "writeln!(",
            "serde_json",
            "push_str(",
            ".to_string(",
            "to_value(",
            "json!(",
        ],
    ),
    (
        "an obs sink",
        &["machine_stat", "hc_obs::", ".emit(", "record_event"],
    ),
    (
        "f64 accumulation",
        &[
            "sum::<f64>",
            ".fold(0.0",
            "as_hours_f64(",
            "as_secs_f64(",
            "as_f64(",
        ],
    ),
];

fn check_r2(
    units: &[SourceUnit],
    kinds: &[FileKind],
    test_lines: &[Vec<bool>],
    graph: &SymbolGraph,
    out: &mut Vec<(usize, Finding)>,
) {
    for (fi, unit) in units.iter().enumerate() {
        if !matches!(kinds[fi], FileKind::Library { .. })
            || unit.rel_path.starts_with("crates/collect/")
        {
            continue;
        }
        for (gi, f) in unit.parsed.fns.iter().enumerate() {
            let Some((start, end)) = f.body else { continue };
            let end = end.min(unit.code.len());
            let receivers = det_receivers(unit, gi, graph);
            if receivers.is_empty() {
                continue;
            }
            for lineno in start..=end {
                if test_lines[fi].get(lineno - 1).copied().unwrap_or(false) {
                    continue;
                }
                let code = &unit.code[lineno - 1];
                for recv in &receivers {
                    let mut sites = iteration_sites(code, recv);
                    // Multi-line chain: the receiver ends this line and
                    // the iteration op opens the next (`= map\n.iter()`).
                    if lineno < end && trailing_chain(code).as_deref() == Some(recv.as_str()) {
                        let next = unit.code[lineno].trim_start();
                        if let Some(op) = R2_OPS.iter().find(|op| next.starts_with(**op)) {
                            sites.push((code.len(), op));
                        }
                    }
                    for (site, op) in sites {
                        if let Some((sink_line, family)) =
                            sink_for_flow(&unit.code, lineno, end, code, site)
                        {
                            out.push((fi, Finding {
                                rule: "R2",
                                severity: Severity::Warning,
                                line: sink_line,
                                message: format!(
                                    "`{recv}{op}` iterates in insertion order and the result reaches {family}; use `iter_sorted()` or annotate `// hc-analyze: allow(R2): order-insensitive — <why>`",
                                ),
                            }));
                        }
                    }
                }
            }
        }
    }
}

/// `DetMap`/`DetSet`-typed receivers visible to one function: `self.x`
/// fields of the impl type, parameters, and `let` locals.
fn det_receivers(unit: &SourceUnit, fn_idx: usize, graph: &SymbolGraph) -> Vec<String> {
    let f = &unit.parsed.fns[fn_idx];
    let mut out = Vec::new();
    if let Some(fields) = f.impl_ty.as_deref().and_then(|ty| graph.fields_of(ty)) {
        for fd in fields {
            if is_det_ty(&fd.ty) {
                out.push(format!("self.{}", fd.name));
            }
        }
    }
    for p in &f.params {
        if is_det_ty(&p.ty) {
            out.push(p.name.clone());
        }
    }
    if let Some((start, end)) = f.body {
        for code in &unit.code[start - 1..end.min(unit.code.len())] {
            let trimmed = code.trim_start();
            let Some(rest) = trimmed.strip_prefix("let ") else {
                continue;
            };
            if !is_det_ty(code) {
                continue;
            }
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                out.push(name);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

fn is_det_ty(ty: &str) -> bool {
    ty.contains("DetMap") || ty.contains("DetSet")
}

/// Byte offsets (and the op text) where `recv` starts an
/// insertion-order iteration on this line: `recv.iter()`, `recv.keys()`,
/// `recv.values()`, or the for-loop sugar `in &recv` / `in &mut recv`.
fn iteration_sites(code: &str, recv: &str) -> Vec<(usize, &'static str)> {
    let mut sites = Vec::new();
    let bytes = code.as_bytes();
    for op in R2_OPS {
        let needle = format!("{recv}{op}");
        let mut from = 0;
        while let Some(pos) = code[from..].find(&needle) {
            let start = from + pos;
            let boundary = start == 0
                || !is_ident_byte(bytes[start - 1]) && bytes[start - 1] != b'.'
                || recv.starts_with("self.");
            if boundary {
                sites.push((start, op));
            }
            from = start + needle.len();
        }
    }
    for prefix in ["in &", "in &mut "] {
        let needle = format!("{prefix}{recv}");
        let mut from = 0;
        while let Some(pos) = code[from..].find(&needle) {
            let start = from + pos;
            let end = start + needle.len();
            let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
            let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]) && bytes[end] != b'.';
            if before_ok && after_ok {
                sites.push((start, "(for-loop iteration)"));
            }
            from = end;
        }
    }
    sites
}

/// The identifier/`.` chain a line ends with (`"= self.scores"` →
/// `self.scores`), for spotting receivers of a chain that continues on
/// the next line.
fn trailing_chain(code: &str) -> Option<String> {
    let t = code.trim_end();
    let bytes = t.as_bytes();
    let mut s = t.len();
    while s > 0 && (is_ident_byte(bytes[s - 1]) || bytes[s - 1] == b'.') {
        s -= 1;
    }
    if s < t.len() {
        Some(t[s..].to_string())
    } else {
        None
    }
}

/// Decides whether an iteration at `(op_line, op_col)` flows into a
/// sink. Returns the sink line and family label, or `None` when the
/// flow is sanitized or never reaches a sink.
fn sink_for_flow(
    code: &[String],
    op_line: usize,
    body_end: usize,
    op_code: &str,
    _op_col: usize,
) -> Option<(usize, &'static str)> {
    // Statement/block window: from the op line until the statement's
    // `;` or the block opened on the op line closes.
    let mut window = String::new();
    let mut brace: i32 = 0;
    let mut opened = false;
    let mut window_end = op_line;
    for lineno in op_line..=body_end.min(code.len()).min(op_line + 40) {
        let line = &code[lineno - 1];
        window.push_str(line);
        window.push('\n');
        window_end = lineno;
        for c in line.chars() {
            match c {
                '{' => {
                    brace += 1;
                    opened = true;
                }
                '}' => brace -= 1,
                _ => {}
            }
        }
        if brace < 0 || (opened && brace <= 0) || (!opened && line.trim_end().ends_with(';')) {
            break;
        }
    }
    if R2_SANITIZERS.iter().any(|s| window.contains(s)) {
        return None;
    }
    for (family, tokens) in R2_SINKS {
        if tokens.iter().any(|t| window.contains(t)) {
            return Some((op_line, family));
        }
    }
    // `let` taint: a binding of the iteration result checked against
    // later uses in the same body.
    let trimmed = op_code.trim_start();
    let binding = trimmed
        .strip_prefix("let ")
        .map(|rest| rest.strip_prefix("mut ").unwrap_or(rest))
        .map(|rest| {
            rest.chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<String>()
        })
        .filter(|name| !name.is_empty())?;
    for lineno in window_end + 1..=body_end.min(code.len()) {
        let line = &code[lineno - 1];
        if !contains_word(line, &binding) {
            continue;
        }
        if R2_SANITIZERS.iter().any(|s| line.contains(s)) {
            return None;
        }
        for (family, tokens) in R2_SINKS {
            if tokens.iter().any(|t| line.contains(t)) {
                return Some((lineno, family));
            }
        }
    }
    None
}
