//! The deterministic request/response core.
//!
//! [`Service`] is a synchronous state machine over the platform: one
//! [`Request`] in, one [`Response`] out, no clock, no I/O. All
//! randomness (matchmaker pairing, gold injection) comes from two
//! seeded streams derived from the service seed, and all time comes
//! from the requests themselves — so replaying a request log against a
//! fresh service with the same [`ServiceConfig`] reproduces the
//! response log byte for byte. Anything nondeterministic (sockets,
//! wall-clock latency) lives in the [`crate::front`] shim outside this
//! boundary.

use crate::wire::{
    AggregateRow, ExportedLabel, Request, Response, RoundOutcome, ServeError, SessionPhase,
};
use hc_aggregate::{Aggregator, AgreementThreshold, Assignment, LabelMatrix, MajorityVote};
use hc_collect::DetMap;
use hc_core::id::IdAllocator;
use hc_core::matchmaker::MatchDecision;
use hc_core::session::{RoundRecord, Session};
use hc_core::templates::TemplateKind;
use hc_core::{Answer, Label, Platform, PlatformConfig, PlayerId, SessionId, Stimulus, TaskId};
use hc_sim::{RngFactory, SimTime};

/// Service-level configuration: the platform config plus the seed the
/// service derives its internal RNG streams from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// The wrapped platform's configuration.
    pub platform: PlatformConfig,
    /// Master seed for pairing and gold-injection randomness.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            platform: PlatformConfig::default(),
            seed: 42,
        }
    }
}

/// One open round inside a live session.
#[derive(Debug, Clone)]
struct RoundAssign {
    /// 1-based round number.
    round: u32,
    task: TaskId,
    stimulus: Stimulus,
    taboo: Vec<Label>,
    issued_at: SimTime,
    /// Per-seat answers; a round resolves when both are present.
    answers: [Option<Answer>; 2],
}

/// A session currently being played through the service.
#[derive(Debug)]
struct LiveSession {
    players: [PlayerId; 2],
    session: Session,
    current: Option<RoundAssign>,
}

/// The task-lifecycle service: platform + matchmaker + sessions +
/// aggregation behind one request/response surface.
///
/// # Examples
///
/// ```
/// use hc_core::jobs::JobGoal;
/// use hc_core::Stimulus;
/// use hc_serve::{Request, Response, Service, ServiceConfig};
///
/// let mut svc = Service::new(ServiceConfig::default()).unwrap();
/// let resp = svc.handle(&Request::PublishBatch {
///     name: "animals".into(),
///     goal: JobGoal::OutputsPerTask(1),
///     stimuli: vec![Stimulus::Image(0), Stimulus::Image(1)],
/// });
/// assert!(matches!(resp, Response::BatchPublished { .. }));
/// ```
#[derive(Debug)]
pub struct Service {
    platform: Platform,
    /// Root of every service RNG draw: pairing and serving randomness
    /// derive per-request `indexed_stream`s keyed by the request
    /// sequence number, so every draw replays from the request log
    /// alone and no stream state lives across requests.
    rng: RngFactory,
    session_ids: IdAllocator<SessionId>,
    sessions: DetMap<SessionId, LiveSession>,
    players: DetMap<PlayerId, SessionPhase>,
    /// Raw submitted text answers per task, submission order — the
    /// input to the [`Request::Aggregate`] matrix.
    raw_answers: DetMap<TaskId, Vec<(PlayerId, Label)>>,
    sessions_recorded: u64,
    requests_handled: u64,
    now: SimTime,
}

impl Service {
    /// Builds a service over a fresh platform.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when the platform config
    /// fails validation.
    pub fn new(config: ServiceConfig) -> Result<Self, ServeError> {
        let platform = Platform::new(config.platform).map_err(map_core)?;
        Ok(Service {
            platform,
            rng: RngFactory::new(config.seed).child("serve"),
            session_ids: IdAllocator::new(),
            sessions: DetMap::new(),
            players: DetMap::new(),
            raw_answers: DetMap::new(),
            sessions_recorded: 0,
            requests_handled: 0,
            now: SimTime::ZERO,
        })
    }

    /// Read access to the wrapped platform.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Requests handled so far (including failed ones).
    #[must_use]
    pub fn requests_handled(&self) -> u64 {
        self.requests_handled
    }

    /// Handles one request. Never panics; failures come back as
    /// [`Response::Error`].
    pub fn handle(&mut self, request: &Request) -> Response {
        if let Some(at) = request.at() {
            self.now = self.now.max(at);
            self.platform.set_time(at);
        }
        self.requests_handled += 1;
        // A scope (not a leaf) span per request: anything the handler
        // emits — latency observations, future sub-spans — nests under
        // it, and the request itself nests under whatever scope the
        // caller holds open (e.g. a load-harness wave).
        let scope =
            hc_obs::active().then(|| hc_obs::enter("serve", request.kind_name(), self.now.ticks()));
        let response = match self.apply(request) {
            Ok(r) => r,
            Err(error) => Response::Error { error },
        };
        if let Some(scope) = scope {
            let t = self.now.ticks();
            hc_obs::counter("serve.requests", t, 1);
            if response.is_error() {
                hc_obs::counter("serve.errors", t, 1);
            }
            scope.exit(
                t,
                &[
                    ("seq", self.requests_handled.into()),
                    ("response", response.kind_name().into()),
                ],
            );
        }
        response
    }

    fn apply(&mut self, request: &Request) -> Result<Response, ServeError> {
        match request {
            Request::RegisterWorker => {
                let player = self.platform.register_player();
                self.players.insert(player, SessionPhase::Idle);
                Ok(Response::WorkerRegistered { player })
            }
            Request::PublishBatch {
                name,
                goal,
                stimuli,
            } => {
                if stimuli.is_empty() {
                    return Err(ServeError::EmptyBatch);
                }
                let tasks: Vec<TaskId> = stimuli
                    .iter()
                    .map(|s| self.platform.add_task(s.clone()))
                    .collect();
                let job = self
                    .platform
                    .open_job(name, *goal, tasks.clone())
                    .map_err(map_core)?;
                Ok(Response::BatchPublished { job, tasks })
            }
            Request::PublishGold { stimulus, accepted } => {
                if accepted.is_empty() {
                    return Err(ServeError::InvalidRequest {
                        reason: "a gold task needs at least one accepted label".to_string(),
                    });
                }
                let task = self
                    .platform
                    .add_gold_task(stimulus.clone(), accepted.iter().cloned());
                Ok(Response::GoldPublished { task })
            }
            Request::OpenSession { player, at } => self.open_session(*player, *at),
            Request::PollSession { player } => {
                let phase = *self
                    .players
                    .get(player)
                    .ok_or(ServeError::UnknownPlayer { player: *player })?;
                Ok(Response::SessionStatus {
                    player: *player,
                    phase,
                })
            }
            Request::RequestTask {
                session,
                player,
                at,
            } => self.request_task(*session, *player, *at),
            Request::SubmitAnswer {
                session,
                player,
                answer,
                at,
            } => self.submit_answer(*session, *player, answer, *at),
            Request::CloseSession { session, at } => self.close_session(*session, *at),
            Request::JobStatus { job } => {
                let j = self
                    .platform
                    .jobs()
                    .get(*job)
                    .ok_or(ServeError::UnknownJob { job: *job })?;
                Ok(Response::JobStatusReport {
                    job: *job,
                    state: j.state,
                    tasks: j.tasks().len() as u32,
                    outputs: j.total_outputs(),
                    progress_pct: percent(j.progress()),
                })
            }
            Request::TaskStatus { task } => {
                let t = self
                    .platform
                    .tasks()
                    .get(*task)
                    .ok_or(ServeError::UnknownTask { task: *task })?;
                Ok(Response::TaskStatusReport {
                    task: *task,
                    state: t.state,
                    times_served: t.times_served,
                    verified: t.verified_outputs,
                    taboo: t.taboo.clone(),
                })
            }
            Request::CancelJob { job, .. } => {
                self.platform.cancel_job(*job).map_err(map_core)?;
                Ok(Response::JobCancelled { job: *job })
            }
            Request::ExportResults { job } => {
                if self.platform.jobs().get(*job).is_none() {
                    return Err(ServeError::UnknownJob { job: *job });
                }
                let labels: Vec<ExportedLabel> = self
                    .platform
                    .verified_labels()
                    .iter()
                    .filter(|v| self.platform.jobs().job_of(v.task) == Some(*job))
                    .map(|v| ExportedLabel {
                        task: v.task,
                        label: v.label.clone(),
                        at: v.at,
                    })
                    .collect();
                Ok(Response::ResultsExported { job: *job, labels })
            }
            Request::Aggregate { job, threshold } => self.aggregate(*job, *threshold),
            Request::Metrics => Ok(Response::MetricsReport {
                players: self.players.len() as u64,
                waiting: self.platform.matchmaker().queue_len() as u32,
                live_sessions: self.sessions.len() as u32,
                sessions_recorded: self.sessions_recorded,
                verified_labels: self.platform.verified_labels().len() as u64,
                rejected_agreements: self.platform.rejected_agreements(),
            }),
        }
    }

    fn open_session(&mut self, player: PlayerId, at: SimTime) -> Result<Response, ServeError> {
        match self.players.get(&player) {
            None => return Err(ServeError::UnknownPlayer { player }),
            Some(SessionPhase::Waiting) => return Err(ServeError::AlreadyWaiting { player }),
            Some(SessionPhase::Seated { session }) => {
                return Err(ServeError::AlreadyInSession {
                    player,
                    session: *session,
                })
            }
            Some(SessionPhase::Idle) => {}
        }
        let mut rng = self.rng.indexed_stream("matchmaker", self.requests_handled);
        let decision = self
            .platform
            .matchmaker_mut()
            .on_arrival(at, player, &mut rng);
        match decision {
            MatchDecision::Queued => {
                self.players.insert(player, SessionPhase::Waiting);
                Ok(Response::SessionQueued {
                    player,
                    waiting: self.platform.matchmaker().queue_len() as u32,
                })
            }
            MatchDecision::Paired { partner, .. } => {
                let id = self.session_ids.next();
                // The earlier arrival takes the left seat.
                let players = [partner, player];
                let session = Session::new(id, players, at, self.platform.config().session);
                self.sessions.insert(
                    id,
                    LiveSession {
                        players,
                        session,
                        current: None,
                    },
                );
                self.players
                    .insert(partner, SessionPhase::Seated { session: id });
                self.players
                    .insert(player, SessionPhase::Seated { session: id });
                Ok(Response::SessionOpened {
                    session: id,
                    players,
                })
            }
        }
    }

    fn request_task(
        &mut self,
        session: SessionId,
        player: PlayerId,
        at: SimTime,
    ) -> Result<Response, ServeError> {
        let live = self
            .sessions
            .get(&session)
            .ok_or(ServeError::UnknownSession { session })?;
        seat_of(live.players, player).ok_or(ServeError::NotInSession { session, player })?;
        // Both seats poll for the round's task; the assignment is made
        // once and returned verbatim to the second asker.
        if let Some(current) = &live.current {
            return Ok(Response::TaskAssigned {
                session,
                round: current.round,
                task: current.task,
                stimulus: current.stimulus.clone(),
                taboo: current.taboo.clone(),
            });
        }
        if !live.session.can_play_more(at) {
            return Err(ServeError::SessionOver { session });
        }
        let players = live.players;
        let round = live.session.rounds_played() + 1;
        let mut rng = self.rng.indexed_stream("tasks", self.requests_handled);
        let Some(task) = self.platform.next_task_for(&players, &mut rng) else {
            return Err(ServeError::NoTaskAvailable { session });
        };
        self.platform.record_served(task, &players);
        let (stimulus, taboo) = match self.platform.tasks().get(task) {
            Some(t) => (t.stimulus.clone(), t.taboo.clone()),
            None => return Err(ServeError::UnknownTask { task }),
        };
        let assign = RoundAssign {
            round,
            task,
            stimulus: stimulus.clone(),
            taboo: taboo.clone(),
            issued_at: at,
            answers: [None, None],
        };
        if let Some(live) = self.sessions.get_mut(&session) {
            live.current = Some(assign);
        }
        Ok(Response::TaskAssigned {
            session,
            round,
            task,
            stimulus,
            taboo,
        })
    }

    fn submit_answer(
        &mut self,
        session: SessionId,
        player: PlayerId,
        answer: &Answer,
        at: SimTime,
    ) -> Result<Response, ServeError> {
        // Output-agreement rounds accept free text or an explicit pass.
        match answer {
            Answer::Text(label) => {
                if label.is_empty() {
                    return Err(ServeError::InvalidRequest {
                        reason: "empty label after normalization".to_string(),
                    });
                }
            }
            Answer::Pass => {}
            other => {
                return Err(ServeError::AnswerKindMismatch {
                    expected: "text or pass".to_string(),
                    got: other.kind_name().to_string(),
                })
            }
        }
        let live = self
            .sessions
            .get_mut(&session)
            .ok_or(ServeError::UnknownSession { session })?;
        let seat =
            seat_of(live.players, player).ok_or(ServeError::NotInSession { session, player })?;
        let Some(current) = live.current.as_mut() else {
            return Err(ServeError::NoAssignment { session });
        };
        if current.answers[seat].is_some() {
            return Err(ServeError::DuplicateAnswer { session, player });
        }
        if let Answer::Text(label) = answer {
            if current.taboo.contains(label) {
                return Err(ServeError::TabooLabel {
                    label: label.clone(),
                });
            }
        }
        current.answers[seat] = Some(answer.clone());
        let round = current.round;
        let both = match (&current.answers[0], &current.answers[1]) {
            (Some(a), Some(b)) => Some((a.clone(), b.clone())),
            _ => None,
        };
        let Some((left, right)) = both else {
            return Ok(Response::AnswerRecorded {
                session,
                round,
                outcome: RoundOutcome::Waiting,
            });
        };
        // Round resolution: both seats answered.
        let players = live.players;
        let task = current.task;
        let issued_at = current.issued_at;
        live.current = None;
        let outcome = match (&left, &right) {
            (Answer::Pass, Answer::Pass) => RoundOutcome::Passed,
            (Answer::Text(a), Answer::Text(b)) => {
                self.record_raw(task, players[0], a.clone());
                self.record_raw(task, players[1], b.clone());
                if a == b {
                    let promoted = self
                        .platform
                        .ingest_agreement(task, a.clone(), players[0], players[1])
                        .map_err(map_core)?;
                    RoundOutcome::Matched {
                        label: a.clone(),
                        promoted,
                    }
                } else {
                    RoundOutcome::Mismatched
                }
            }
            _ => {
                // One seat passed, the other answered: no agreement.
                if let Answer::Text(a) = &left {
                    self.record_raw(task, players[0], a.clone());
                }
                if let Answer::Text(b) = &right {
                    self.record_raw(task, players[1], b.clone());
                }
                RoundOutcome::Mismatched
            }
        };
        if hc_obs::active() {
            #[allow(clippy::cast_precision_loss)] // diagnostics only
            hc_obs::observe(
                "serve.round.latency_us",
                at.ticks(),
                at.saturating_since(issued_at).ticks() as f64,
            );
        }
        let matched = matches!(outcome, RoundOutcome::Matched { .. });
        let match_points = self.platform.score_rule().match_points;
        let points = if matched { match_points } else { 0 };
        if let Some(live) = self.sessions.get_mut(&session) {
            live.session.record_round(RoundRecord {
                template: TemplateKind::OutputAgreement,
                task,
                matched,
                candidate_outputs: u32::from(matched),
                duration: at.saturating_since(issued_at),
                points: [points, points],
            });
        }
        Ok(Response::AnswerRecorded {
            session,
            round,
            outcome,
        })
    }

    fn close_session(&mut self, session: SessionId, at: SimTime) -> Result<Response, ServeError> {
        let Some(live) = self.sessions.remove(&session) else {
            return Err(ServeError::UnknownSession { session });
        };
        let transcript = live.session.finish(at);
        self.platform.record_session(&transcript);
        self.sessions_recorded += 1;
        if hc_obs::active() {
            #[allow(clippy::cast_precision_loss)] // diagnostics only
            hc_obs::observe(
                "serve.session.length_us",
                at.ticks(),
                transcript.duration().ticks() as f64,
            );
        }
        for p in live.players {
            self.players.insert(p, SessionPhase::Idle);
        }
        Ok(Response::SessionClosed {
            session,
            rounds: transcript.rounds() as u32,
            matched: transcript.matched_count() as u32,
            points: transcript.total_points,
        })
    }

    fn record_raw(&mut self, task: TaskId, player: PlayerId, label: Label) {
        self.raw_answers
            .entry(task)
            .or_default()
            .push((player, label));
    }

    fn aggregate(&mut self, job: hc_core::JobId, threshold: u32) -> Result<Response, ServeError> {
        let tasks: Vec<TaskId> = self
            .platform
            .jobs()
            .get(job)
            .ok_or(ServeError::UnknownJob { job })?
            .tasks()
            .to_vec();
        // Map labels and workers to dense indices in first-seen order
        // (job-task enrollment order, submission order within a task),
        // so the matrix layout is a pure function of the request log.
        let mut classes: Vec<Label> = Vec::new();
        let mut workers: Vec<PlayerId> = Vec::new();
        let mut assignments: Vec<Assignment> = Vec::new();
        let mut answer_counts: Vec<u32> = vec![0; tasks.len()];
        for (ti, task) in tasks.iter().enumerate() {
            let Some(raw) = self.raw_answers.get(task) else {
                continue;
            };
            for (player, label) in raw {
                let class = match classes.iter().position(|c| c == label) {
                    Some(i) => i,
                    None => {
                        classes.push(label.clone());
                        classes.len() - 1
                    }
                };
                let worker = match workers.iter().position(|w| w == player) {
                    Some(i) => i,
                    None => {
                        workers.push(*player);
                        workers.len() - 1
                    }
                };
                assignments.push(Assignment {
                    task: ti,
                    worker,
                    class,
                });
                if let Some(slot) = answer_counts.get_mut(ti) {
                    *slot += 1;
                }
            }
        }
        let estimates: Vec<Option<usize>> = if classes.is_empty() {
            vec![None; tasks.len()]
        } else {
            let mut matrix = LabelMatrix::new(tasks.len(), classes.len());
            for a in assignments {
                matrix.push(a);
            }
            let est = if threshold <= 1 {
                MajorityVote.aggregate(&matrix)
            } else {
                AgreementThreshold::new(threshold as usize).aggregate(&matrix)
            };
            tasks
                .iter()
                .enumerate()
                .map(|(ti, _)| est.get(ti).copied().flatten())
                .collect()
        };
        let rows: Vec<AggregateRow> = tasks
            .iter()
            .enumerate()
            .map(|(ti, task)| {
                let label = estimates
                    .get(ti)
                    .copied()
                    .flatten()
                    .and_then(|class| classes.get(class).cloned());
                let support = match (&label, self.raw_answers.get(task)) {
                    (Some(l), Some(raw)) => raw.iter().filter(|(_, x)| x == l).count() as u32,
                    _ => 0,
                };
                AggregateRow {
                    task: *task,
                    label,
                    support,
                    answers: answer_counts.get(ti).copied().unwrap_or(0),
                }
            })
            .collect();
        Ok(Response::Aggregated { job, rows })
    }
}

/// Which seat (0 = left, 1 = right) a player holds, if any.
fn seat_of(players: [PlayerId; 2], player: PlayerId) -> Option<usize> {
    if players[0] == player {
        Some(0)
    } else if players[1] == player {
        Some(1)
    } else {
        None
    }
}

/// Progress as a whole percentage, clamped to 0–100.
fn percent(progress: f64) -> u32 {
    let pct = (progress * 100.0).round();
    if pct <= 0.0 {
        0
    } else if pct >= 100.0 {
        100
    } else {
        pct as u32
    }
}

/// Maps the platform's typed errors into wire errors.
fn map_core(e: hc_core::Error) -> ServeError {
    match e {
        hc_core::Error::UnknownTask(task) => ServeError::UnknownTask { task },
        hc_core::Error::UnknownPlayer(player) => ServeError::UnknownPlayer { player },
        hc_core::Error::UnknownJob(job) => ServeError::UnknownJob { job },
        hc_core::Error::EmptyJob => ServeError::EmptyBatch,
        other => ServeError::InvalidRequest {
            reason: other.to_string(),
        },
    }
}
