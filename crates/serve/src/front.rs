//! Thin socket front: line-delimited JSON over TCP.
//!
//! Everything in this module sits **outside** the determinism
//! boundary (see the crate docs): it owns the listener socket, blocks
//! on the network, and surfaces `std::io` errors. The protocol work —
//! decoding a [`Request`], producing a [`Response`] — is delegated to
//! the pure [`Service`] core, and the decode/encode halves are exposed
//! as plain functions ([`handle_line`], [`render_response`]) so tests
//! and the load harness can exercise the exact wire path with no
//! socket at all.
//!
//! Wire format: one JSON-encoded [`Request`] per line in, one
//! JSON-encoded [`Response`] per line out. Malformed input never kills
//! the connection; it yields a [`ServeError::InvalidRequest`] response
//! on its line and the stream continues.

use crate::service::Service;
use crate::wire::{Request, Response, ServeError};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

/// A blocking TCP front over a [`Service`].
#[derive(Debug)]
pub struct Front {
    listener: TcpListener,
}

impl Front {
    /// Binds the listener. Use port 0 to let the OS pick a free port.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Front> {
        Ok(Front {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The address the listener actually bound.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts one connection and serves it to EOF, returning the
    /// number of requests handled on it.
    ///
    /// # Errors
    ///
    /// Propagates accept/read/write failures.
    pub fn serve_one(&self, service: &mut Service) -> std::io::Result<u64> {
        let (stream, _) = self.listener.accept()?;
        serve_connection(stream, service)
    }
}

/// Serves a single already-accepted connection to EOF.
///
/// # Errors
///
/// Propagates read/write failures.
pub fn serve_connection(stream: TcpStream, service: &mut Service) -> std::io::Result<u64> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    let mut handled = 0u64;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(&line, service);
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        handled += 1;
    }
    writer.flush()?;
    Ok(handled)
}

/// Decodes one request line, runs it through the service, and encodes
/// the response. Malformed JSON becomes an [`ServeError::InvalidRequest`]
/// response rather than an error.
pub fn handle_line(line: &str, service: &mut Service) -> String {
    let response = match serde_json::from_str::<Request>(line) {
        Ok(request) => service.handle(&request),
        Err(e) => Response::Error {
            error: ServeError::InvalidRequest {
                reason: format!("malformed request: {e}"),
            },
        },
    };
    render_response(&response)
}

/// Encodes a response as a single JSON line (no trailing newline).
pub fn render_response(response: &Response) -> String {
    match serde_json::to_string(response) {
        Ok(s) => s,
        // Wire types are plain data; encoding cannot fail in practice.
        // Keep the front panic-free anyway.
        Err(_) => {
            r#"{"Error":{"error":{"InvalidRequest":{"reason":"encode failure"}}}}"#.to_string()
        }
    }
}
