//! Wire types — the serde-round-trippable request/response protocol.
//!
//! Every operation the platform's production surface supports is one
//! [`Request`] variant; every outcome is one [`Response`] variant. The
//! shapes mirror the MTurk HIT manager's publish / get-status / download
//! lifecycle layered over the GWAP session flow: a requester publishes
//! task batches and gold, workers register, open sessions, pull task
//! assignments, submit answers, and the requester polls job progress and
//! downloads verified labels or aggregated estimates.
//!
//! Time never comes from a clock: requests that advance platform state
//! carry their own [`SimTime`], so the same request log always replays
//! to the same response log.

use hc_core::jobs::{JobGoal, JobState};
use hc_core::{Answer, JobId, Label, PlayerId, SessionId, Stimulus, TaskId, TaskState};
use hc_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One request against the service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Registers a new worker; the service allocates the player id.
    RegisterWorker,
    /// Publishes a batch of tasks under a new labeling job.
    PublishBatch {
        /// Human-readable job name ("dresden-scans-vol2").
        name: String,
        /// Completion criterion for the job.
        goal: JobGoal,
        /// One stimulus per task to create.
        stimuli: Vec<Stimulus>,
    },
    /// Publishes a gold (known-answer) calibration task.
    PublishGold {
        /// What the players see.
        stimulus: Stimulus,
        /// Labels accepted as correct.
        accepted: Vec<Label>,
    },
    /// A worker asks to play: paired immediately or queued.
    OpenSession {
        /// The arriving worker.
        player: PlayerId,
        /// Arrival time.
        at: SimTime,
    },
    /// A queued worker polls for their pairing status.
    PollSession {
        /// The polling worker.
        player: PlayerId,
    },
    /// A seated worker asks for the current round's task.
    RequestTask {
        /// The session.
        session: SessionId,
        /// The requesting seat.
        player: PlayerId,
        /// Request time.
        at: SimTime,
    },
    /// A seated worker submits their answer for the current round.
    SubmitAnswer {
        /// The session.
        session: SessionId,
        /// The answering seat.
        player: PlayerId,
        /// The answer (free text or pass).
        answer: Answer,
        /// Submission time.
        at: SimTime,
    },
    /// Ends a session; its transcript feeds the platform ledgers.
    CloseSession {
        /// The session to close.
        session: SessionId,
        /// Close time.
        at: SimTime,
    },
    /// Queries one job's progress.
    JobStatus {
        /// The job.
        job: JobId,
    },
    /// Queries one task's lifecycle state.
    TaskStatus {
        /// The task.
        task: TaskId,
    },
    /// Administratively stops an active job.
    CancelJob {
        /// The job to cancel.
        job: JobId,
        /// Cancellation time.
        at: SimTime,
    },
    /// Downloads a job's verified labels (promotion order).
    ExportResults {
        /// The job.
        job: JobId,
    },
    /// Runs label aggregation over a job's raw submitted answers.
    Aggregate {
        /// The job.
        job: JobId,
        /// Minimum supporting answers per estimate; `<= 1` is plain
        /// majority vote.
        threshold: u32,
    },
    /// Queries platform-wide counters.
    Metrics,
}

impl Request {
    /// Short request-kind name for observability and logs.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::RegisterWorker => "register_worker",
            Request::PublishBatch { .. } => "publish_batch",
            Request::PublishGold { .. } => "publish_gold",
            Request::OpenSession { .. } => "open_session",
            Request::PollSession { .. } => "poll_session",
            Request::RequestTask { .. } => "request_task",
            Request::SubmitAnswer { .. } => "submit_answer",
            Request::CloseSession { .. } => "close_session",
            Request::JobStatus { .. } => "job_status",
            Request::TaskStatus { .. } => "task_status",
            Request::CancelJob { .. } => "cancel_job",
            Request::ExportResults { .. } => "export_results",
            Request::Aggregate { .. } => "aggregate",
            Request::Metrics => "metrics",
        }
    }

    /// The simulated time the request carries, if any.
    #[must_use]
    pub fn at(&self) -> Option<SimTime> {
        match self {
            Request::OpenSession { at, .. }
            | Request::RequestTask { at, .. }
            | Request::SubmitAnswer { at, .. }
            | Request::CloseSession { at, .. }
            | Request::CancelJob { at, .. } => Some(*at),
            _ => None,
        }
    }
}

/// Where a polled worker stands in the session lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionPhase {
    /// Registered but neither queued nor seated.
    Idle,
    /// In the matchmaker queue, waiting for a partner.
    Waiting,
    /// Seated in a live session.
    Seated {
        /// The live session.
        session: SessionId,
    },
}

/// How one round resolved after an answer submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RoundOutcome {
    /// The partner has not answered yet; the round is still open.
    Waiting,
    /// Both seats agreed on a label.
    Matched {
        /// The agreed label.
        label: Label,
        /// Whether the agreement promoted the label to verified.
        promoted: bool,
    },
    /// Both seats answered but disagreed.
    Mismatched,
    /// Both seats passed; the task was skipped.
    Passed,
}

/// One verified label in a results download.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExportedLabel {
    /// The task the label describes.
    pub task: TaskId,
    /// The promoted label.
    pub label: Label,
    /// Platform time at promotion.
    pub at: SimTime,
}

/// One task's aggregated estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateRow {
    /// The task.
    pub task: TaskId,
    /// The estimated label (`None` when the aggregator abstains).
    pub label: Option<Label>,
    /// Number of raw answers supporting the estimate.
    pub support: u32,
    /// Total raw answers submitted for the task.
    pub answers: u32,
}

/// One response from the service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A new worker was registered.
    WorkerRegistered {
        /// The allocated player id.
        player: PlayerId,
    },
    /// A task batch was published under a new job.
    BatchPublished {
        /// The new job.
        job: JobId,
        /// The created tasks, in stimulus order.
        tasks: Vec<TaskId>,
    },
    /// A gold task was published.
    GoldPublished {
        /// The created gold task.
        task: TaskId,
    },
    /// The worker was queued; no partner was available.
    SessionQueued {
        /// The queued worker.
        player: PlayerId,
        /// Queue length after the arrival.
        waiting: u32,
    },
    /// A session opened (pairing succeeded).
    SessionOpened {
        /// The new session.
        session: SessionId,
        /// The two seats, in seating order (earlier arrival first).
        players: [PlayerId; 2],
    },
    /// A poll result: where the worker stands.
    SessionStatus {
        /// The polled worker.
        player: PlayerId,
        /// Their current phase.
        phase: SessionPhase,
    },
    /// A round's task assignment (identical for both seats).
    TaskAssigned {
        /// The session.
        session: SessionId,
        /// 1-based round number within the session.
        round: u32,
        /// The served task.
        task: TaskId,
        /// What the players see.
        stimulus: Stimulus,
        /// Labels that are off-limits this round.
        taboo: Vec<Label>,
    },
    /// An answer was accepted.
    AnswerRecorded {
        /// The session.
        session: SessionId,
        /// 1-based round number.
        round: u32,
        /// How the round stands after this submission.
        outcome: RoundOutcome,
    },
    /// A session closed; its transcript fed the ledgers.
    SessionClosed {
        /// The closed session.
        session: SessionId,
        /// Rounds played.
        rounds: u32,
        /// Rounds that matched.
        matched: u32,
        /// Total points per seat.
        points: [u64; 2],
    },
    /// One job's progress snapshot.
    JobStatusReport {
        /// The job.
        job: JobId,
        /// Lifecycle state.
        state: JobState,
        /// Tasks enrolled.
        tasks: u32,
        /// Verified outputs credited so far.
        outputs: u64,
        /// Progress toward the goal, percent (0–100).
        progress_pct: u32,
    },
    /// One task's lifecycle snapshot.
    TaskStatusReport {
        /// The task.
        task: TaskId,
        /// Lifecycle state.
        state: TaskState,
        /// Rounds that served this task.
        times_served: u32,
        /// Verified outputs produced.
        verified: u32,
        /// Current taboo list.
        taboo: Vec<Label>,
    },
    /// A job was cancelled (idempotent for non-active jobs).
    JobCancelled {
        /// The job.
        job: JobId,
    },
    /// A job's verified labels, in promotion order.
    ResultsExported {
        /// The job.
        job: JobId,
        /// The verified labels.
        labels: Vec<ExportedLabel>,
    },
    /// Aggregated estimates over a job's raw answers.
    Aggregated {
        /// The job.
        job: JobId,
        /// One row per enrolled task, in enrollment order.
        rows: Vec<AggregateRow>,
    },
    /// Platform-wide counters.
    MetricsReport {
        /// Workers registered through the service.
        players: u64,
        /// Workers currently waiting for a partner.
        waiting: u32,
        /// Live (open) sessions.
        live_sessions: u32,
        /// Sessions closed and recorded.
        sessions_recorded: u64,
        /// Labels promoted to verified.
        verified_labels: u64,
        /// Agreements rejected by the trust gate.
        rejected_agreements: u64,
    },
    /// The request failed with a typed error.
    Error {
        /// What went wrong.
        error: ServeError,
    },
}

impl Response {
    /// Short response-kind name for observability and logs.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Response::WorkerRegistered { .. } => "worker_registered",
            Response::BatchPublished { .. } => "batch_published",
            Response::GoldPublished { .. } => "gold_published",
            Response::SessionQueued { .. } => "session_queued",
            Response::SessionOpened { .. } => "session_opened",
            Response::SessionStatus { .. } => "session_status",
            Response::TaskAssigned { .. } => "task_assigned",
            Response::AnswerRecorded { .. } => "answer_recorded",
            Response::SessionClosed { .. } => "session_closed",
            Response::JobStatusReport { .. } => "job_status_report",
            Response::TaskStatusReport { .. } => "task_status_report",
            Response::JobCancelled { .. } => "job_cancelled",
            Response::ResultsExported { .. } => "results_exported",
            Response::Aggregated { .. } => "aggregated",
            Response::MetricsReport { .. } => "metrics_report",
            Response::Error { .. } => "error",
        }
    }

    /// `true` for the error variant.
    #[must_use]
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }
}

/// Typed request failures. Every variant names the offending entity so
/// fronts can render actionable errors without string parsing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeError {
    /// The task id was never registered.
    UnknownTask {
        /// The missing task.
        task: TaskId,
    },
    /// The job id was never opened.
    UnknownJob {
        /// The missing job.
        job: JobId,
    },
    /// The player id was never registered.
    UnknownPlayer {
        /// The missing player.
        player: PlayerId,
    },
    /// The session id does not name a live session.
    UnknownSession {
        /// The missing session.
        session: SessionId,
    },
    /// The player is not seated in that session.
    NotInSession {
        /// The session.
        session: SessionId,
        /// The intruder.
        player: PlayerId,
    },
    /// The player is already waiting in the matchmaker queue.
    AlreadyWaiting {
        /// The player.
        player: PlayerId,
    },
    /// The player is already seated in a live session.
    AlreadyInSession {
        /// The player.
        player: PlayerId,
        /// Where they sit.
        session: SessionId,
    },
    /// No servable task remains for this pair.
    NoTaskAvailable {
        /// The session.
        session: SessionId,
    },
    /// An answer arrived with no round assignment open.
    NoAssignment {
        /// The session.
        session: SessionId,
    },
    /// The seat already answered this round.
    DuplicateAnswer {
        /// The session.
        session: SessionId,
        /// The repeating seat.
        player: PlayerId,
    },
    /// The submitted label is taboo for the assigned task.
    TabooLabel {
        /// The rejected label.
        label: Label,
    },
    /// Output-agreement rounds take free text or a pass.
    AnswerKindMismatch {
        /// What the round accepts.
        expected: String,
        /// What arrived.
        got: String,
    },
    /// The session's round or time budget is spent.
    SessionOver {
        /// The exhausted session.
        session: SessionId,
    },
    /// A batch must contain at least one stimulus.
    EmptyBatch,
    /// The request was structurally invalid.
    InvalidRequest {
        /// Why it was rejected.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTask { task } => write!(f, "unknown task {task}"),
            ServeError::UnknownJob { job } => write!(f, "unknown job {job}"),
            ServeError::UnknownPlayer { player } => write!(f, "unknown player {player}"),
            ServeError::UnknownSession { session } => write!(f, "unknown session {session}"),
            ServeError::NotInSession { session, player } => {
                write!(f, "{player} is not seated in {session}")
            }
            ServeError::AlreadyWaiting { player } => write!(f, "{player} is already queued"),
            ServeError::AlreadyInSession { player, session } => {
                write!(f, "{player} is already seated in {session}")
            }
            ServeError::NoTaskAvailable { session } => {
                write!(f, "no servable task for {session}")
            }
            ServeError::NoAssignment { session } => {
                write!(f, "no round assignment open in {session}")
            }
            ServeError::DuplicateAnswer { session, player } => {
                write!(f, "{player} already answered this round of {session}")
            }
            ServeError::TabooLabel { label } => write!(f, "label `{label}` is taboo"),
            ServeError::AnswerKindMismatch { expected, got } => {
                write!(f, "expected a {expected} answer, got {got}")
            }
            ServeError::SessionOver { session } => {
                write!(f, "{session} has exhausted its round or time budget")
            }
            ServeError::EmptyBatch => write!(f, "a batch needs at least one stimulus"),
            ServeError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}
