//! # hc-serve — the task-lifecycle service API
//!
//! This crate exposes the production surface the paper's systems ran
//! behind: publish task batches, open and assign two-player sessions,
//! ingest answers, query label status, and export or aggregate
//! results — all through one typed [`Request`]/[`Response`] protocol
//! handled by a [`Service`] state machine over the platform.
//!
//! ## Determinism boundary
//!
//! The crate is split in two along a hard determinism boundary:
//!
//! * [`service`] (plus [`wire`]) is the **pure core**: no clock, no
//!   I/O, no ambient randomness. Time arrives inside requests as
//!   [`hc_sim::SimTime`]; pairing and gold-injection randomness come
//!   from seeded streams derived from [`ServiceConfig::seed`]. Feeding
//!   the same request sequence to a service built from the same config
//!   reproduces the response sequence byte for byte — which is what
//!   the `hc-load` harness and the `serve-load` CI job assert.
//! * [`front`] is a **thin socket shim** — line-delimited JSON over
//!   TCP — that decodes requests, calls [`Service::handle`], and
//!   encodes responses. It is the only sanctioned home for
//!   nondeterminism (sockets, threads, wall-clock latency) and is
//!   exempted by name in `hc-analyze`.
//!
//! ## Example
//!
//! ```
//! use hc_core::jobs::JobGoal;
//! use hc_core::Stimulus;
//! use hc_serve::{Request, Response, Service, ServiceConfig};
//!
//! let mut svc = Service::new(ServiceConfig::default()).unwrap();
//! let resp = svc.handle(&Request::PublishBatch {
//!     name: "demo".into(),
//!     goal: JobGoal::OutputsPerTask(1),
//!     stimuli: vec![Stimulus::Image(7)],
//! });
//! let Response::BatchPublished { job, tasks } = resp else {
//!     panic!("publish failed");
//! };
//! assert_eq!(tasks.len(), 1);
//! let status = svc.handle(&Request::JobStatus { job });
//! assert!(matches!(status, Response::JobStatusReport { .. }));
//! ```

pub mod front;
pub mod service;
pub mod wire;

pub use service::{Service, ServiceConfig};
pub use wire::{
    AggregateRow, ExportedLabel, Request, Response, RoundOutcome, ServeError, SessionPhase,
};

/// Convenience re-exports for service consumers.
pub mod prelude {
    pub use crate::front::Front;
    pub use crate::service::{Service, ServiceConfig};
    pub use crate::wire::{
        AggregateRow, ExportedLabel, Request, Response, RoundOutcome, ServeError, SessionPhase,
    };
}
