//! Property tests for the service: random valid lifecycle scripts are
//! interpreted against a hand-derived oracle model, and the recorded
//! request log is replayed against a fresh service to prove the
//! response log is a pure function of (config, requests).

use hc_core::jobs::JobGoal;
use hc_core::matchmaker::MatchmakerConfig;
use hc_core::{Answer, JobId, Label, PlatformConfig, PlayerId, SessionId, Stimulus, TaskId};
use hc_serve::{Request, Response, RoundOutcome, ServeError, Service, ServiceConfig, SessionPhase};
use hc_sim::SimTime;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Fixed config the oracle is derived for: no gold injection (no
/// hidden RNG draws on the serving path), promote on first agreement,
/// and no rematch avoidance so one waiting player always pairs.
fn config() -> ServiceConfig {
    let mut platform = PlatformConfig {
        agreement_threshold: 1,
        gold_injection_rate: 0.0,
        ..PlatformConfig::default()
    };
    platform.matchmaker = MatchmakerConfig {
        avoid_rematch: false,
        ..MatchmakerConfig::default()
    };
    ServiceConfig { platform, seed: 7 }
}

const VOCAB: [&str; 4] = ["red", "blue", "green", "gold"];

/// One raw op drawn by proptest; the interpreter grounds it in current
/// model state so scripts are always structurally valid.
type RawOp = (u8, u64, u64);

/// The oracle's view of one live session.
#[derive(Debug, Default, Clone)]
struct ModelSession {
    players: [PlayerId; 2],
    rounds_played: u32,
    matched: u32,
    current: Option<ModelRound>,
}

#[derive(Debug, Clone)]
struct ModelRound {
    round: u32,
    task: TaskId,
    answers: [Option<Answer>; 2],
}

/// Hand-derived model of the service under the fixed [`config`].
#[derive(Debug, Default)]
struct Model {
    players: Vec<PlayerId>,
    phases: BTreeMap<PlayerId, SessionPhase>,
    jobs: Vec<(JobId, Vec<TaskId>)>,
    waiting: Option<PlayerId>,
    sessions: BTreeMap<SessionId, ModelSession>,
    taboo: BTreeMap<TaskId, Vec<Label>>,
    raw_counts: BTreeMap<TaskId, u32>,
    /// (job, task, label, at) in promotion order.
    verified: Vec<(JobId, TaskId, Label, SimTime)>,
    next_player: u64,
    next_session: u64,
    next_job: u64,
    next_task: u64,
    sessions_recorded: u64,
}

impl Model {
    fn job_of(&self, task: TaskId) -> Option<JobId> {
        self.jobs
            .iter()
            .find(|(_, tasks)| tasks.contains(&task))
            .map(|(j, _)| *j)
    }

    fn live_sessions(&self) -> Vec<SessionId> {
        self.sessions.keys().copied().collect()
    }
}

/// Grounds one raw op into a concrete request, or `None` when the op
/// has no valid target in the current model state.
fn ground(op: RawOp, model: &Model, at: SimTime) -> Option<Request> {
    let (code, a, b) = op;
    match code % 10 {
        0 => Some(Request::RegisterWorker),
        1 => {
            let n = a % 3 + 1;
            Some(Request::PublishBatch {
                name: format!("job-{}", model.next_job),
                goal: JobGoal::OutputsPerTask(1),
                stimuli: (0..n).map(|i| Stimulus::Image(b * 10 + i)).collect(),
            })
        }
        2 => {
            if model.players.is_empty() {
                return None;
            }
            let player = model.players[(a as usize) % model.players.len()];
            Some(Request::OpenSession { player, at })
        }
        3 => {
            let live = model.live_sessions();
            if live.is_empty() {
                return None;
            }
            let session = live[(a as usize) % live.len()];
            let seat = (b as usize) % 2;
            let player = model.sessions[&session].players[seat];
            Some(Request::RequestTask {
                session,
                player,
                at,
            })
        }
        4 => {
            let live = model.live_sessions();
            if live.is_empty() {
                return None;
            }
            let session = live[(a as usize) % live.len()];
            let seat = (a as usize / 7) % 2;
            let player = model.sessions[&session].players[seat];
            let answer = match b % 5 {
                4 => Answer::Pass,
                i => Answer::text(VOCAB[i as usize]),
            };
            Some(Request::SubmitAnswer {
                session,
                player,
                answer,
                at,
            })
        }
        5 => {
            let live = model.live_sessions();
            if live.is_empty() {
                return None;
            }
            let session = live[(a as usize) % live.len()];
            Some(Request::CloseSession { session, at })
        }
        6 => {
            if model.jobs.is_empty() {
                return None;
            }
            let (job, _) = model.jobs[(a as usize) % model.jobs.len()];
            Some(Request::JobStatus { job })
        }
        7 => {
            if model.jobs.is_empty() {
                return None;
            }
            let (job, _) = model.jobs[(a as usize) % model.jobs.len()];
            Some(Request::ExportResults { job })
        }
        8 => {
            if model.players.is_empty() {
                return None;
            }
            let player = model.players[(a as usize) % model.players.len()];
            Some(Request::PollSession { player })
        }
        _ => Some(Request::Metrics),
    }
}

/// Applies one request to the model and returns what the oracle
/// expects back; `None` means "structurally valid but the exact
/// response depends on platform internals the oracle does not model"
/// (task selection), in which case the caller validates invariants and
/// adopts the observed assignment.
fn expect(model: &mut Model, request: &Request, response: &Response) -> Option<Response> {
    match request {
        Request::RegisterWorker => {
            let player = PlayerId::new(model.next_player);
            model.next_player += 1;
            model.players.push(player);
            model.phases.insert(player, SessionPhase::Idle);
            Some(Response::WorkerRegistered { player })
        }
        Request::PublishBatch { stimuli, .. } => {
            let job = JobId::new(model.next_job);
            model.next_job += 1;
            let tasks: Vec<TaskId> = (0..stimuli.len())
                .map(|_| {
                    let t = TaskId::new(model.next_task);
                    model.next_task += 1;
                    t
                })
                .collect();
            model.jobs.push((job, tasks.clone()));
            Some(Response::BatchPublished { job, tasks })
        }
        Request::OpenSession { player, at } => {
            match model.phases.get(player) {
                Some(SessionPhase::Waiting) => {
                    return Some(Response::Error {
                        error: ServeError::AlreadyWaiting { player: *player },
                    })
                }
                Some(SessionPhase::Seated { session }) => {
                    return Some(Response::Error {
                        error: ServeError::AlreadyInSession {
                            player: *player,
                            session: *session,
                        },
                    })
                }
                _ => {}
            }
            match model.waiting.take() {
                None => {
                    model.waiting = Some(*player);
                    model.phases.insert(*player, SessionPhase::Waiting);
                    Some(Response::SessionQueued {
                        player: *player,
                        waiting: 1,
                    })
                }
                Some(partner) => {
                    let session = SessionId::new(model.next_session);
                    model.next_session += 1;
                    let players = [partner, *player];
                    model.sessions.insert(
                        session,
                        ModelSession {
                            players,
                            ..ModelSession::default()
                        },
                    );
                    model
                        .phases
                        .insert(partner, SessionPhase::Seated { session });
                    model
                        .phases
                        .insert(*player, SessionPhase::Seated { session });
                    let _ = at;
                    Some(Response::SessionOpened { session, players })
                }
            }
        }
        Request::PollSession { player } => Some(Response::SessionStatus {
            player: *player,
            phase: *model.phases.get(player).expect("grounded on known player"),
        }),
        Request::RequestTask { session, .. } => {
            let s = model.sessions.get(session).expect("grounded on live");
            if let Some(cur) = &s.current {
                // Idempotent re-ask: the exact prior assignment.
                let taboo = model.taboo.get(&cur.task).cloned().unwrap_or_default();
                match response {
                    Response::TaskAssigned {
                        session: rs,
                        round,
                        task,
                        taboo: rt,
                        ..
                    } => {
                        assert_eq!(*rs, *session);
                        assert_eq!(*round, cur.round);
                        assert_eq!(*task, cur.task);
                        assert_eq!(*rt, taboo);
                    }
                    other => panic!("expected idempotent TaskAssigned, got {other:?}"),
                }
                return None;
            }
            if s.rounds_played >= 15 {
                return Some(Response::Error {
                    error: ServeError::SessionOver { session: *session },
                });
            }
            // Fresh assignment: the oracle does not model queue policy,
            // so validate invariants and adopt.
            match response {
                Response::TaskAssigned {
                    session: rs,
                    round,
                    task,
                    taboo,
                    ..
                } => {
                    assert_eq!(*rs, *session);
                    assert_eq!(*round, s.rounds_played + 1);
                    assert!(
                        model.jobs.iter().any(|(_, ts)| ts.contains(task)),
                        "assigned task {task} was never published"
                    );
                    assert_eq!(
                        *taboo,
                        model.taboo.get(task).cloned().unwrap_or_default(),
                        "taboo list drifted for {task}"
                    );
                    let round = ModelRound {
                        round: *round,
                        task: *task,
                        answers: [None, None],
                    };
                    if let Some(s) = model.sessions.get_mut(session) {
                        s.current = Some(round);
                    }
                }
                Response::Error {
                    error: ServeError::NoTaskAvailable { .. },
                } => {}
                other => panic!("expected TaskAssigned or NoTaskAvailable, got {other:?}"),
            }
            None
        }
        Request::SubmitAnswer {
            session,
            player,
            answer,
            at,
        } => {
            let s = model.sessions.get(session).expect("grounded on live");
            let seat = if s.players[0] == *player { 0 } else { 1 };
            let Some(cur) = s.current.clone() else {
                return Some(Response::Error {
                    error: ServeError::NoAssignment { session: *session },
                });
            };
            if cur.answers[seat].is_some() {
                return Some(Response::Error {
                    error: ServeError::DuplicateAnswer {
                        session: *session,
                        player: *player,
                    },
                });
            }
            if let Answer::Text(label) = answer {
                if model
                    .taboo
                    .get(&cur.task)
                    .is_some_and(|t| t.contains(label))
                {
                    return Some(Response::Error {
                        error: ServeError::TabooLabel {
                            label: label.clone(),
                        },
                    });
                }
            }
            let mut answers = cur.answers.clone();
            answers[seat] = Some(answer.clone());
            let (both, outcome) = match (&answers[0], &answers[1]) {
                (Some(a), Some(b)) => {
                    let outcome = match (a, b) {
                        (Answer::Pass, Answer::Pass) => RoundOutcome::Passed,
                        (Answer::Text(x), Answer::Text(y)) if x == y => RoundOutcome::Matched {
                            label: x.clone(),
                            promoted: true,
                        },
                        _ => RoundOutcome::Mismatched,
                    };
                    (true, outcome)
                }
                _ => (false, RoundOutcome::Waiting),
            };
            // Book-keeping on resolution.
            if both {
                for ans in &answers {
                    if let Some(Answer::Text(_)) = ans {
                        *model.raw_counts.entry(cur.task).or_default() += 1;
                    }
                }
                if let RoundOutcome::Matched { label, .. } = &outcome {
                    model.taboo.entry(cur.task).or_default().push(label.clone());
                    let job = model.job_of(cur.task).expect("task has a job");
                    model.verified.push((job, cur.task, label.clone(), *at));
                }
                if let Some(s) = model.sessions.get_mut(session) {
                    s.current = None;
                    s.rounds_played += 1;
                    if matches!(outcome, RoundOutcome::Matched { .. }) {
                        s.matched += 1;
                    }
                }
            } else if let Some(s) = model.sessions.get_mut(session) {
                if let Some(cur) = s.current.as_mut() {
                    cur.answers = answers;
                }
            }
            Some(Response::AnswerRecorded {
                session: *session,
                round: cur.round,
                outcome,
            })
        }
        Request::CloseSession { session, .. } => {
            let s = model.sessions.remove(session).expect("grounded on live");
            for p in s.players {
                model.phases.insert(p, SessionPhase::Idle);
            }
            model.sessions_recorded += 1;
            let points = u64::from(s.matched) * 100;
            Some(Response::SessionClosed {
                session: *session,
                rounds: s.rounds_played,
                matched: s.matched,
                points: [points, points],
            })
        }
        Request::JobStatus { job } => {
            // progress_pct depends on goal internals; assert the rest.
            match response {
                Response::JobStatusReport {
                    job: rj,
                    tasks,
                    outputs,
                    progress_pct,
                    ..
                } => {
                    assert_eq!(*rj, *job);
                    let expected_tasks = model
                        .jobs
                        .iter()
                        .find(|(j, _)| j == job)
                        .map(|(_, ts)| ts.len() as u32)
                        .expect("grounded on known job");
                    assert_eq!(*tasks, expected_tasks);
                    let expected_outputs =
                        model.verified.iter().filter(|(j, ..)| j == job).count() as u64;
                    assert_eq!(*outputs, expected_outputs);
                    assert!(*progress_pct <= 100);
                }
                other => panic!("expected JobStatusReport, got {other:?}"),
            }
            None
        }
        Request::ExportResults { job } => {
            let labels = model
                .verified
                .iter()
                .filter(|(j, ..)| j == job)
                .map(|(_, task, label, at)| hc_serve::ExportedLabel {
                    task: *task,
                    label: label.clone(),
                    at: *at,
                })
                .collect();
            Some(Response::ResultsExported { job: *job, labels })
        }
        Request::Metrics => Some(Response::MetricsReport {
            players: model.players.len() as u64,
            waiting: u32::from(model.waiting.is_some()),
            live_sessions: model.sessions.len() as u32,
            sessions_recorded: model.sessions_recorded,
            verified_labels: model.verified.len() as u64,
            rejected_agreements: 0,
        }),
        other => panic!("interpreter never grounds {other:?}"),
    }
}

fn render_log(responses: &[Response]) -> String {
    let mut out = String::new();
    for r in responses {
        out.push_str(&serde_json::to_string(r).expect("response encodes"));
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random scripts match the oracle, and replaying the request log
    /// reproduces the response log byte for byte.
    #[test]
    fn scripts_match_oracle_and_replay_bytes(
        ops in proptest::collection::vec((0u8..10, 0u64..1000, 0u64..1000), 1..60)
    ) {
        let mut svc = Service::new(config()).expect("config valid");
        let mut model = Model::default();
        let mut requests: Vec<Request> = Vec::new();
        let mut responses: Vec<Response> = Vec::new();

        for (step, op) in ops.iter().enumerate() {
            let at = SimTime::from_secs(step as u64 + 1);
            let Some(request) = ground(*op, &model, at) else { continue };
            let response = svc.handle(&request);
            if let Some(expected) = expect(&mut model, &request, &response) {
                prop_assert_eq!(
                    &response, &expected,
                    "oracle mismatch on {:?}", request
                );
            }
            requests.push(request);
            responses.push(response);
        }

        // Replay: a fresh service fed the recorded request log must
        // reproduce the response log exactly.
        let mut replay = Service::new(config()).expect("config valid");
        let replayed: Vec<Response> = requests.iter().map(|r| replay.handle(r)).collect();
        prop_assert_eq!(
            render_log(&responses),
            render_log(&replayed),
            "replay diverged"
        );
    }
}
