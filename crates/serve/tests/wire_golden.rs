//! Wire-protocol freeze: every `Request`, `Response`, and `ServeError`
//! variant round-trips through serde and renders to bytes pinned under
//! `tests/golden/wire.txt`. Any accidental wire-format change shows up
//! as a reviewable diff. Regenerate after an *intentional* change with
//!
//! ```text
//! cargo test -p hc-serve --test wire_golden -- --ignored regenerate
//! ```

use hc_core::jobs::{JobGoal, JobState};
use hc_core::{Answer, JobId, Label, PlayerId, SessionId, Stimulus, TaskId, TaskState};
use hc_serve::{
    AggregateRow, ExportedLabel, Request, Response, RoundOutcome, ServeError, SessionPhase,
};
use hc_sim::SimTime;
use std::path::PathBuf;

fn request_fixtures() -> Vec<Request> {
    vec![
        Request::RegisterWorker,
        Request::PublishBatch {
            name: "dresden-scans-vol2".into(),
            goal: JobGoal::OutputsPerTask(3),
            stimuli: vec![
                Stimulus::Image(11),
                Stimulus::Word("archive".into()),
                Stimulus::TextSnippet("ye olde print".into()),
            ],
        },
        Request::PublishGold {
            stimulus: Stimulus::Image(42),
            accepted: vec![Label::new("cat"), Label::new("kitten")],
        },
        Request::OpenSession {
            player: PlayerId::new(4),
            at: SimTime::from_secs(10),
        },
        Request::PollSession {
            player: PlayerId::new(4),
        },
        Request::RequestTask {
            session: SessionId::new(2),
            player: PlayerId::new(4),
            at: SimTime::from_secs(11),
        },
        Request::SubmitAnswer {
            session: SessionId::new(2),
            player: PlayerId::new(4),
            answer: Answer::text("tabby"),
            at: SimTime::from_secs(12),
        },
        Request::SubmitAnswer {
            session: SessionId::new(2),
            player: PlayerId::new(5),
            answer: Answer::Pass,
            at: SimTime::from_secs(13),
        },
        Request::CloseSession {
            session: SessionId::new(2),
            at: SimTime::from_secs(14),
        },
        Request::JobStatus { job: JobId::new(0) },
        Request::TaskStatus {
            task: TaskId::new(9),
        },
        Request::CancelJob {
            job: JobId::new(0),
            at: SimTime::from_secs(15),
        },
        Request::ExportResults { job: JobId::new(0) },
        Request::Aggregate {
            job: JobId::new(0),
            threshold: 2,
        },
        Request::Metrics,
    ]
}

fn error_fixtures() -> Vec<ServeError> {
    vec![
        ServeError::UnknownTask {
            task: TaskId::new(9),
        },
        ServeError::UnknownJob { job: JobId::new(1) },
        ServeError::UnknownPlayer {
            player: PlayerId::new(3),
        },
        ServeError::UnknownSession {
            session: SessionId::new(8),
        },
        ServeError::NotInSession {
            session: SessionId::new(8),
            player: PlayerId::new(3),
        },
        ServeError::AlreadyWaiting {
            player: PlayerId::new(3),
        },
        ServeError::AlreadyInSession {
            player: PlayerId::new(3),
            session: SessionId::new(8),
        },
        ServeError::NoTaskAvailable {
            session: SessionId::new(8),
        },
        ServeError::NoAssignment {
            session: SessionId::new(8),
        },
        ServeError::DuplicateAnswer {
            session: SessionId::new(8),
            player: PlayerId::new(3),
        },
        ServeError::TabooLabel {
            label: Label::new("cat"),
        },
        ServeError::AnswerKindMismatch {
            expected: "text or pass".into(),
            got: "verdict".into(),
        },
        ServeError::SessionOver {
            session: SessionId::new(8),
        },
        ServeError::EmptyBatch,
        ServeError::InvalidRequest {
            reason: "empty label after normalization".into(),
        },
    ]
}

fn response_fixtures() -> Vec<Response> {
    let mut out = vec![
        Response::WorkerRegistered {
            player: PlayerId::new(4),
        },
        Response::BatchPublished {
            job: JobId::new(0),
            tasks: vec![TaskId::new(0), TaskId::new(1), TaskId::new(2)],
        },
        Response::GoldPublished {
            task: TaskId::new(3),
        },
        Response::SessionQueued {
            player: PlayerId::new(4),
            waiting: 1,
        },
        Response::SessionOpened {
            session: SessionId::new(2),
            players: [PlayerId::new(4), PlayerId::new(5)],
        },
        Response::SessionStatus {
            player: PlayerId::new(4),
            phase: SessionPhase::Idle,
        },
        Response::SessionStatus {
            player: PlayerId::new(4),
            phase: SessionPhase::Waiting,
        },
        Response::SessionStatus {
            player: PlayerId::new(4),
            phase: SessionPhase::Seated {
                session: SessionId::new(2),
            },
        },
        Response::TaskAssigned {
            session: SessionId::new(2),
            round: 1,
            task: TaskId::new(0),
            stimulus: Stimulus::Image(11),
            taboo: vec![Label::new("cat")],
        },
        Response::AnswerRecorded {
            session: SessionId::new(2),
            round: 1,
            outcome: RoundOutcome::Waiting,
        },
        Response::AnswerRecorded {
            session: SessionId::new(2),
            round: 1,
            outcome: RoundOutcome::Matched {
                label: Label::new("tabby"),
                promoted: true,
            },
        },
        Response::AnswerRecorded {
            session: SessionId::new(2),
            round: 2,
            outcome: RoundOutcome::Mismatched,
        },
        Response::AnswerRecorded {
            session: SessionId::new(2),
            round: 3,
            outcome: RoundOutcome::Passed,
        },
        Response::SessionClosed {
            session: SessionId::new(2),
            rounds: 3,
            matched: 1,
            points: [100, 100],
        },
        Response::JobStatusReport {
            job: JobId::new(0),
            state: JobState::Active,
            tasks: 3,
            outputs: 1,
            progress_pct: 11,
        },
        Response::TaskStatusReport {
            task: TaskId::new(0),
            state: TaskState::InProgress,
            times_served: 2,
            verified: 1,
            taboo: vec![Label::new("tabby")],
        },
        Response::JobCancelled { job: JobId::new(0) },
        Response::ResultsExported {
            job: JobId::new(0),
            labels: vec![ExportedLabel {
                task: TaskId::new(0),
                label: Label::new("tabby"),
                at: SimTime::from_secs(13),
            }],
        },
        Response::Aggregated {
            job: JobId::new(0),
            rows: vec![
                AggregateRow {
                    task: TaskId::new(0),
                    label: Some(Label::new("tabby")),
                    support: 2,
                    answers: 2,
                },
                AggregateRow {
                    task: TaskId::new(1),
                    label: None,
                    support: 0,
                    answers: 1,
                },
            ],
        },
        Response::MetricsReport {
            players: 2,
            waiting: 0,
            live_sessions: 1,
            sessions_recorded: 3,
            verified_labels: 5,
            rejected_agreements: 1,
        },
    ];
    out.extend(
        error_fixtures()
            .into_iter()
            .map(|error| Response::Error { error }),
    );
    out
}

/// Renders every fixture as `kind<TAB>json`, one per line — the frozen
/// wire image.
fn render_all() -> String {
    let mut out = String::new();
    for req in request_fixtures() {
        out.push_str(req.kind_name());
        out.push('\t');
        out.push_str(&serde_json::to_string(&req).expect("request encodes"));
        out.push('\n');
    }
    for resp in response_fixtures() {
        out.push_str(resp.kind_name());
        out.push('\t');
        out.push_str(&serde_json::to_string(&resp).expect("response encodes"));
        out.push('\n');
    }
    out
}

#[test]
fn every_request_variant_is_covered() {
    let kinds: Vec<&str> = request_fixtures().iter().map(|r| r.kind_name()).collect();
    let expected = [
        "register_worker",
        "publish_batch",
        "publish_gold",
        "open_session",
        "poll_session",
        "request_task",
        "submit_answer",
        "close_session",
        "job_status",
        "task_status",
        "cancel_job",
        "export_results",
        "aggregate",
        "metrics",
    ];
    for kind in expected {
        assert!(kinds.contains(&kind), "missing request fixture for {kind}");
    }
}

#[test]
fn every_response_variant_is_covered() {
    let kinds: Vec<&str> = response_fixtures().iter().map(|r| r.kind_name()).collect();
    let expected = [
        "worker_registered",
        "batch_published",
        "gold_published",
        "session_queued",
        "session_opened",
        "session_status",
        "task_assigned",
        "answer_recorded",
        "session_closed",
        "job_status_report",
        "task_status_report",
        "job_cancelled",
        "results_exported",
        "aggregated",
        "metrics_report",
        "error",
    ];
    for kind in expected {
        assert!(kinds.contains(&kind), "missing response fixture for {kind}");
    }
    // All 15 error variants ride along as Response::Error fixtures.
    let errors = response_fixtures().iter().filter(|r| r.is_error()).count();
    assert_eq!(errors, 15);
}

#[test]
fn requests_round_trip_through_strings_and_values() {
    for req in request_fixtures() {
        let s = serde_json::to_string(&req).expect("encodes");
        let back: Request = serde_json::from_str(&s).expect("decodes");
        assert_eq!(back, req, "string round-trip changed {}", req.kind_name());
        let v = serde_json::to_value(&req).expect("to_value");
        let back: Request = serde_json::from_value(v).expect("from_value");
        assert_eq!(back, req, "value round-trip changed {}", req.kind_name());
    }
}

#[test]
fn responses_round_trip_through_strings_and_values() {
    for resp in response_fixtures() {
        let s = serde_json::to_string(&resp).expect("encodes");
        let back: Response = serde_json::from_str(&s).expect("decodes");
        assert_eq!(back, resp, "string round-trip changed {}", resp.kind_name());
        let v = serde_json::to_value(&resp).expect("to_value");
        let back: Response = serde_json::from_value(v).expect("from_value");
        assert_eq!(back, resp, "value round-trip changed {}", resp.kind_name());
    }
}

#[test]
fn wire_image_matches_golden() {
    assert_eq!(
        render_all(),
        include_str!("golden/wire.txt"),
        "wire format drifted; regenerate the golden file if intentional"
    );
}

/// Rewrites the golden file. Run explicitly after intentional changes:
/// `cargo test -p hc-serve --test wire_golden -- --ignored regenerate`.
#[test]
#[ignore = "regenerates golden files; run explicitly"]
fn regenerate() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("wire.txt");
    std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
    std::fs::write(&path, render_all()).expect("write golden");
}
