//! End-to-end lifecycle coverage: publish → pair → play → export,
//! plus the typed-error surface.

use hc_core::jobs::{JobGoal, JobState};
use hc_core::{Answer, Label, PlayerId, SessionId, Stimulus, TaskId};
use hc_serve::{Request, Response, RoundOutcome, ServeError, Service, ServiceConfig, SessionPhase};
use hc_sim::SimTime;

fn svc() -> Service {
    Service::new(ServiceConfig::default()).expect("default config is valid")
}

fn register(svc: &mut Service) -> PlayerId {
    match svc.handle(&Request::RegisterWorker) {
        Response::WorkerRegistered { player } => player,
        other => panic!("unexpected: {other:?}"),
    }
}

fn publish(svc: &mut Service, n: u64) -> (hc_core::JobId, Vec<TaskId>) {
    let stimuli: Vec<Stimulus> = (0..n).map(Stimulus::Image).collect();
    match svc.handle(&Request::PublishBatch {
        name: "batch".into(),
        goal: JobGoal::OutputsPerTask(1),
        stimuli,
    }) {
        Response::BatchPublished { job, tasks } => (job, tasks),
        other => panic!("unexpected: {other:?}"),
    }
}

/// Queues one player then pairs a second, returning the session.
fn seat_pair(svc: &mut Service, a: PlayerId, b: PlayerId, at: SimTime) -> SessionId {
    match svc.handle(&Request::OpenSession { player: a, at }) {
        Response::SessionQueued { waiting, .. } => assert_eq!(waiting, 1),
        other => panic!("unexpected: {other:?}"),
    }
    match svc.handle(&Request::OpenSession { player: b, at }) {
        Response::SessionOpened { session, players } => {
            assert_eq!(players, [a, b], "earlier arrival takes the left seat");
            session
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn full_lifecycle_produces_verified_labels() {
    let mut svc = svc();
    let (job, tasks) = publish(&mut svc, 3);
    assert_eq!(tasks.len(), 3);
    let a = register(&mut svc);
    let b = register(&mut svc);

    let t0 = SimTime::from_secs(1);
    let session = seat_pair(&mut svc, a, b, t0);

    // Both seats poll the same assignment.
    let assigned = svc.handle(&Request::RequestTask {
        session,
        player: a,
        at: t0,
    });
    let Response::TaskAssigned {
        round, task, taboo, ..
    } = assigned.clone()
    else {
        panic!("unexpected: {assigned:?}");
    };
    assert_eq!(round, 1);
    assert!(taboo.is_empty());
    let again = svc.handle(&Request::RequestTask {
        session,
        player: b,
        at: t0,
    });
    assert_eq!(
        assigned, again,
        "second asker sees the identical assignment"
    );

    // Agreement on "cat" promotes at the default threshold of 1.
    let r1 = svc.handle(&Request::SubmitAnswer {
        session,
        player: a,
        answer: Answer::text("Cat"),
        at: SimTime::from_secs(2),
    });
    assert!(matches!(
        r1,
        Response::AnswerRecorded {
            outcome: RoundOutcome::Waiting,
            ..
        }
    ));
    let r2 = svc.handle(&Request::SubmitAnswer {
        session,
        player: b,
        answer: Answer::text("cat"),
        at: SimTime::from_secs(3),
    });
    match r2 {
        Response::AnswerRecorded {
            outcome: RoundOutcome::Matched { label, promoted },
            ..
        } => {
            assert_eq!(label, Label::new("cat"));
            assert!(promoted);
        }
        other => panic!("unexpected: {other:?}"),
    }

    // The promoted label is now taboo on that task.
    match svc.handle(&Request::TaskStatus { task }) {
        Response::TaskStatusReport {
            verified, taboo, ..
        } => {
            assert_eq!(verified, 1);
            assert_eq!(taboo, vec![Label::new("cat")]);
        }
        other => panic!("unexpected: {other:?}"),
    }

    let closed = svc.handle(&Request::CloseSession {
        session,
        at: SimTime::from_secs(4),
    });
    match closed {
        Response::SessionClosed {
            rounds, matched, ..
        } => {
            assert_eq!(rounds, 1);
            assert_eq!(matched, 1);
        }
        other => panic!("unexpected: {other:?}"),
    }

    match svc.handle(&Request::JobStatus { job }) {
        Response::JobStatusReport { outputs, tasks, .. } => {
            assert_eq!(outputs, 1);
            assert_eq!(tasks, 3);
        }
        other => panic!("unexpected: {other:?}"),
    }

    match svc.handle(&Request::ExportResults { job }) {
        Response::ResultsExported { labels, .. } => {
            assert_eq!(labels.len(), 1);
            assert_eq!(labels[0].task, task);
            assert_eq!(labels[0].label, Label::new("cat"));
        }
        other => panic!("unexpected: {other:?}"),
    }

    match svc.handle(&Request::Aggregate { job, threshold: 1 }) {
        Response::Aggregated { rows, .. } => {
            assert_eq!(rows.len(), 3);
            let hit = rows.iter().find(|r| r.task == task).expect("row for task");
            assert_eq!(hit.label, Some(Label::new("cat")));
            assert_eq!(hit.support, 2);
            assert_eq!(hit.answers, 2);
        }
        other => panic!("unexpected: {other:?}"),
    }

    match svc.handle(&Request::Metrics) {
        Response::MetricsReport {
            players,
            waiting,
            live_sessions,
            sessions_recorded,
            verified_labels,
            ..
        } => {
            assert_eq!(players, 2);
            assert_eq!(waiting, 0);
            assert_eq!(live_sessions, 0);
            assert_eq!(sessions_recorded, 1);
            assert_eq!(verified_labels, 1);
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn poll_session_tracks_phases() {
    let mut svc = svc();
    publish(&mut svc, 1);
    let a = register(&mut svc);
    let b = register(&mut svc);
    let phase = |svc: &mut Service, p| match svc.handle(&Request::PollSession { player: p }) {
        Response::SessionStatus { phase, .. } => phase,
        other => panic!("unexpected: {other:?}"),
    };
    assert_eq!(phase(&mut svc, a), SessionPhase::Idle);
    svc.handle(&Request::OpenSession {
        player: a,
        at: SimTime::ZERO,
    });
    assert_eq!(phase(&mut svc, a), SessionPhase::Waiting);
    let session = match svc.handle(&Request::OpenSession {
        player: b,
        at: SimTime::ZERO,
    }) {
        Response::SessionOpened { session, .. } => session,
        other => panic!("unexpected: {other:?}"),
    };
    assert_eq!(phase(&mut svc, a), SessionPhase::Seated { session });
    svc.handle(&Request::CloseSession {
        session,
        at: SimTime::from_secs(1),
    });
    assert_eq!(phase(&mut svc, a), SessionPhase::Idle);
    assert_eq!(phase(&mut svc, b), SessionPhase::Idle);
}

#[test]
fn mismatch_pass_and_taboo_paths() {
    let mut svc = svc();
    publish(&mut svc, 2);
    let a = register(&mut svc);
    let b = register(&mut svc);
    let session = seat_pair(&mut svc, a, b, SimTime::ZERO);
    let task = match svc.handle(&Request::RequestTask {
        session,
        player: a,
        at: SimTime::ZERO,
    }) {
        Response::TaskAssigned { task, .. } => task,
        other => panic!("unexpected: {other:?}"),
    };

    // Round 1: disagreement.
    svc.handle(&Request::SubmitAnswer {
        session,
        player: a,
        answer: Answer::text("dog"),
        at: SimTime::from_secs(1),
    });
    let r = svc.handle(&Request::SubmitAnswer {
        session,
        player: b,
        answer: Answer::text("fish"),
        at: SimTime::from_secs(1),
    });
    assert!(matches!(
        r,
        Response::AnswerRecorded {
            outcome: RoundOutcome::Mismatched,
            ..
        }
    ));
    match svc.handle(&Request::TaskStatus { task }) {
        Response::TaskStatusReport { verified, .. } => assert_eq!(verified, 0),
        other => panic!("unexpected: {other:?}"),
    }

    // Round 2: both pass.
    svc.handle(&Request::RequestTask {
        session,
        player: a,
        at: SimTime::from_secs(2),
    });
    svc.handle(&Request::SubmitAnswer {
        session,
        player: a,
        answer: Answer::Pass,
        at: SimTime::from_secs(2),
    });
    let r = svc.handle(&Request::SubmitAnswer {
        session,
        player: b,
        answer: Answer::Pass,
        at: SimTime::from_secs(2),
    });
    assert!(matches!(
        r,
        Response::AnswerRecorded {
            outcome: RoundOutcome::Passed,
            ..
        }
    ));
}

#[test]
fn typed_errors_cover_misuse() {
    let mut svc = svc();
    let err = |resp: Response| -> ServeError {
        match resp {
            Response::Error { error } => error,
            other => panic!("expected an error, got {other:?}"),
        }
    };

    // Unknown entities.
    assert!(matches!(
        err(svc.handle(&Request::PollSession {
            player: PlayerId::new(99)
        })),
        ServeError::UnknownPlayer { .. }
    ));
    assert!(matches!(
        err(svc.handle(&Request::JobStatus {
            job: hc_core::JobId::new(7)
        })),
        ServeError::UnknownJob { .. }
    ));
    assert!(matches!(
        err(svc.handle(&Request::TaskStatus {
            task: TaskId::new(7)
        })),
        ServeError::UnknownTask { .. }
    ));
    assert!(matches!(
        err(svc.handle(&Request::CloseSession {
            session: SessionId::new(3),
            at: SimTime::ZERO,
        })),
        ServeError::UnknownSession { .. }
    ));

    // Empty batch and empty gold.
    assert!(matches!(
        err(svc.handle(&Request::PublishBatch {
            name: "empty".into(),
            goal: JobGoal::OutputsPerTask(1),
            stimuli: vec![],
        })),
        ServeError::EmptyBatch
    ));
    assert!(matches!(
        err(svc.handle(&Request::PublishGold {
            stimulus: Stimulus::Image(0),
            accepted: vec![],
        })),
        ServeError::InvalidRequest { .. }
    ));

    // Double-open and in-session misuse.
    publish(&mut svc, 1);
    let a = register(&mut svc);
    let b = register(&mut svc);
    let c = register(&mut svc);
    svc.handle(&Request::OpenSession {
        player: a,
        at: SimTime::ZERO,
    });
    assert!(matches!(
        err(svc.handle(&Request::OpenSession {
            player: a,
            at: SimTime::ZERO,
        })),
        ServeError::AlreadyWaiting { .. }
    ));
    let session = match svc.handle(&Request::OpenSession {
        player: b,
        at: SimTime::ZERO,
    }) {
        Response::SessionOpened { session, .. } => session,
        other => panic!("unexpected: {other:?}"),
    };
    assert!(matches!(
        err(svc.handle(&Request::OpenSession {
            player: b,
            at: SimTime::ZERO,
        })),
        ServeError::AlreadyInSession { .. }
    ));
    assert!(matches!(
        err(svc.handle(&Request::RequestTask {
            session,
            player: c,
            at: SimTime::ZERO,
        })),
        ServeError::NotInSession { .. }
    ));

    // Answer without an assignment, then answer-kind and duplicate checks.
    assert!(matches!(
        err(svc.handle(&Request::SubmitAnswer {
            session,
            player: a,
            answer: Answer::text("x"),
            at: SimTime::ZERO,
        })),
        ServeError::NoAssignment { .. }
    ));
    svc.handle(&Request::RequestTask {
        session,
        player: a,
        at: SimTime::ZERO,
    });
    assert!(matches!(
        err(svc.handle(&Request::SubmitAnswer {
            session,
            player: a,
            answer: Answer::Choice(2),
            at: SimTime::ZERO,
        })),
        ServeError::AnswerKindMismatch { .. }
    ));
    svc.handle(&Request::SubmitAnswer {
        session,
        player: a,
        answer: Answer::text("x"),
        at: SimTime::ZERO,
    });
    assert!(matches!(
        err(svc.handle(&Request::SubmitAnswer {
            session,
            player: a,
            answer: Answer::text("y"),
            at: SimTime::ZERO,
        })),
        ServeError::DuplicateAnswer { .. }
    ));
}

#[test]
fn taboo_label_is_rejected_on_resubmission() {
    let mut svc = svc();
    publish(&mut svc, 1);
    let a = register(&mut svc);
    let b = register(&mut svc);
    let session = seat_pair(&mut svc, a, b, SimTime::ZERO);
    svc.handle(&Request::RequestTask {
        session,
        player: a,
        at: SimTime::ZERO,
    });
    svc.handle(&Request::SubmitAnswer {
        session,
        player: a,
        answer: Answer::text("sun"),
        at: SimTime::ZERO,
    });
    svc.handle(&Request::SubmitAnswer {
        session,
        player: b,
        answer: Answer::text("sun"),
        at: SimTime::ZERO,
    });
    // Same task comes back only to a fresh pair; instead drive a second
    // pair onto the single (now-tabooed) task.
    let c = register(&mut svc);
    let d = register(&mut svc);
    let s2 = seat_pair(&mut svc, c, d, SimTime::from_secs(5));
    let taboo = match svc.handle(&Request::RequestTask {
        session: s2,
        player: c,
        at: SimTime::from_secs(5),
    }) {
        Response::TaskAssigned { taboo, .. } => taboo,
        other => panic!("unexpected: {other:?}"),
    };
    assert_eq!(taboo, vec![Label::new("sun")]);
    let r = svc.handle(&Request::SubmitAnswer {
        session: s2,
        player: c,
        answer: Answer::text("Sun"),
        at: SimTime::from_secs(6),
    });
    match r {
        Response::Error {
            error: ServeError::TabooLabel { label },
        } => assert_eq!(label, Label::new("sun")),
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn cancel_job_stops_it_and_is_idempotent() {
    let mut svc = svc();
    let (job, _) = publish(&mut svc, 2);
    let r = svc.handle(&Request::CancelJob {
        job,
        at: SimTime::from_secs(9),
    });
    assert!(matches!(r, Response::JobCancelled { .. }));
    match svc.handle(&Request::JobStatus { job }) {
        Response::JobStatusReport { state, .. } => assert_eq!(state, JobState::Cancelled),
        other => panic!("unexpected: {other:?}"),
    }
    // Second cancel is a no-op, not an error.
    let r = svc.handle(&Request::CancelJob {
        job,
        at: SimTime::from_secs(10),
    });
    assert!(matches!(r, Response::JobCancelled { .. }));
}
