//! Socket-front coverage: the line-JSON shim decodes requests, runs
//! the pure core, and encodes responses — including malformed input.

use hc_core::jobs::JobGoal;
use hc_core::Stimulus;
use hc_serve::front::{handle_line, render_response, Front};
use hc_serve::{Request, Response, Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

#[test]
fn handle_line_round_trips_the_wire_path() {
    let mut svc = Service::new(ServiceConfig::default()).expect("config valid");
    let line = serde_json::to_string(&Request::RegisterWorker).expect("encodes");
    let reply = handle_line(&line, &mut svc);
    let parsed: Response = serde_json::from_str(&reply).expect("reply decodes");
    assert!(matches!(parsed, Response::WorkerRegistered { .. }));
}

#[test]
fn malformed_lines_become_invalid_request_responses() {
    let mut svc = Service::new(ServiceConfig::default()).expect("config valid");
    let reply = handle_line("{not json", &mut svc);
    let parsed: Response = serde_json::from_str(&reply).expect("reply decodes");
    assert!(parsed.is_error());
    // The broken line did not corrupt the service.
    let ok = handle_line(
        &serde_json::to_string(&Request::Metrics).expect("encodes"),
        &mut svc,
    );
    let parsed: Response = serde_json::from_str(&ok).expect("reply decodes");
    assert!(matches!(parsed, Response::MetricsReport { .. }));
}

#[test]
fn render_response_is_parseable_json() {
    let rendered = render_response(&Response::MetricsReport {
        players: 0,
        waiting: 0,
        live_sessions: 0,
        sessions_recorded: 0,
        verified_labels: 0,
        rejected_agreements: 0,
    });
    let parsed: Response = serde_json::from_str(&rendered).expect("decodes");
    assert!(matches!(parsed, Response::MetricsReport { .. }));
}

#[test]
fn tcp_front_serves_a_connection_to_eof() {
    let front = Front::bind("127.0.0.1:0").expect("bind");
    let addr = front.local_addr().expect("addr");
    let client = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let requests = [
            serde_json::to_string(&Request::RegisterWorker).expect("encodes"),
            serde_json::to_string(&Request::PublishBatch {
                name: "tcp".into(),
                goal: JobGoal::OutputsPerTask(1),
                stimuli: vec![Stimulus::Image(1)],
            })
            .expect("encodes"),
            "???".to_string(),
            serde_json::to_string(&Request::Metrics).expect("encodes"),
        ];
        for r in &requests {
            writeln!(writer, "{r}").expect("write");
        }
        // Half-close the write side so the server sees EOF.
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown");
        let reader = BufReader::new(stream);
        let replies: Vec<Response> = reader
            .lines()
            .map(|l| serde_json::from_str(&l.expect("read")).expect("decodes"))
            .collect();
        replies
    });

    let mut svc = Service::new(ServiceConfig::default()).expect("config valid");
    let handled = front.serve_one(&mut svc).expect("serve");
    assert_eq!(handled, 4);

    let replies = client.join().expect("client thread");
    assert_eq!(replies.len(), 4);
    assert!(matches!(replies[0], Response::WorkerRegistered { .. }));
    assert!(matches!(replies[1], Response::BatchPublished { .. }));
    assert!(replies[2].is_error());
    match &replies[3] {
        Response::MetricsReport { players, .. } => assert_eq!(*players, 1),
        other => panic!("unexpected: {other:?}"),
    }
}
