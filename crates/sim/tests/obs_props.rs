//! Property tests for the observability layer's determinism contract:
//! recording must never change what a replication run computes, and the
//! deterministic part of a merged trace must be byte-identical at any
//! `--threads` value (only the machine section may differ).

use hc_sim::{run_seeded_replications, OnlineStats, RngFactory, SimRng};
use proptest::prelude::*;
use rand::Rng;

/// A replication job with data-dependent cost that also emits spans,
/// counters and histogram observations — collected under a recording
/// scope, no-ops otherwise. Serializing the summary makes "equal
/// results" mean equal RNG streams, not just equal lengths.
fn stats_job(index: usize, mut rng: SimRng) -> String {
    let mut stats = OnlineStats::new();
    let draws = 8 + (index % 7) * 5;
    let base_us = index as u64 * 1_000;
    for _ in 0..draws {
        let x = rng.gen::<f64>();
        stats.push(x);
        hc_obs::observe("job.samples", base_us, x);
    }
    hc_obs::counter("job.draws", base_us + draws as u64, draws as u64);
    hc_obs::span(
        "test",
        "job",
        base_us,
        base_us + draws as u64,
        &[("index", index.into())],
    );
    let summary = vec![
        stats.count() as f64,
        stats.mean(),
        stats.std_dev(),
        stats.min().unwrap_or(f64::NAN),
        stats.max().unwrap_or(f64::NAN),
    ];
    serde_json::to_string(&summary).expect("stats serialize")
}

proptest! {
    #[test]
    fn recording_never_perturbs_results(
        jobs in 0usize..32,
        threads in 1usize..8,
        seed in 0u64..300,
    ) {
        let factory = RngFactory::new(seed);
        let plain = run_seeded_replications(&factory, "obs", jobs, threads, stats_job)
            .expect("plain run succeeds");
        let (recorded, trace) = hc_obs::record_scope(0, || {
            run_seeded_replications(&factory, "obs", jobs, threads, stats_job)
        });
        let recorded = recorded.expect("recorded run succeeds");
        prop_assert_eq!(plain, recorded, "a subscriber changed the results");
        // The trace really observed the jobs (per-task span + merged records).
        prop_assert_eq!(trace.metrics.counter("par.tasks"), jobs as u64);
    }

    #[test]
    fn merged_trace_is_thread_invariant(
        jobs in 0usize..32,
        threads in 2usize..8,
        seed in 0u64..300,
    ) {
        let factory = RngFactory::new(seed);
        let record = |t: usize| {
            let (out, trace) = hc_obs::record_scope(0, || {
                run_seeded_replications(&factory, "obs", jobs, t, stats_job)
            });
            out.expect("run succeeds");
            trace
        };
        let serial = record(1);
        let parallel = record(threads);
        // Byte-identical deterministic sections at any thread count…
        prop_assert_eq!(
            hc_obs::sink::jsonl::render_deterministic(&serial),
            hc_obs::sink::jsonl::render_deterministic(&parallel)
        );
        // …while worker/steal counts land in the machine section, which
        // is allowed to differ.
        prop_assert_eq!(serial.machine.get("par.workers"), Some(&1.0));
        if jobs > 0 {
            prop_assert!(parallel.machine.get("par.workers").copied().unwrap_or(0.0) >= 1.0);
        }
    }
}
