//! Property tests for the observability layer's determinism contract:
//! recording must never change what a replication run computes, the
//! deterministic part of a merged trace must be byte-identical at any
//! `--threads` value (only the machine section may differ), the
//! sharded engine's derived-metrics summary must be byte-identical at
//! any shard layout, and span trees built through the scope API must
//! be structurally sound (children inside parents, critical path
//! bounded by its root).

use hc_obs::analyze::{critical_path, DeriveAcc, SpanTree};
use hc_sim::shard::{
    run as run_shards, Addr, HubDecision, Mailbox, ShardConfig, ShardWorkload, WindowInfo,
};
use hc_sim::{run_seeded_replications, OnlineStats, RngFactory, SimDuration, SimRng, SimTime};
use proptest::prelude::*;
use rand::Rng;
use std::collections::BTreeMap;

/// A replication job with data-dependent cost that also emits a scope
/// span, leaf spans, counters and histogram observations — collected
/// under a recording scope, no-ops otherwise. Serializing the summary
/// makes "equal results" mean equal RNG streams, not just equal
/// lengths.
fn stats_job(index: usize, mut rng: SimRng) -> String {
    let mut stats = OnlineStats::new();
    let draws = 8 + (index % 7) * 5;
    let base_us = index as u64 * 1_000;
    let scope = hc_obs::enter("test", "job.scope", base_us);
    for _ in 0..draws {
        let x = rng.gen::<f64>();
        stats.push(x);
        hc_obs::observe("job.samples", base_us, x);
    }
    hc_obs::counter("job.draws", base_us + draws as u64, draws as u64);
    hc_obs::span(
        "test",
        "job",
        base_us,
        base_us + draws as u64,
        &[("index", index.into())],
    );
    scope.exit(base_us + draws as u64, &[]);
    let summary = vec![
        stats.count() as f64,
        stats.mean(),
        stats.std_dev(),
        stats.min().unwrap_or(f64::NAN),
        stats.max().unwrap_or(f64::NAN),
    ];
    serde_json::to_string(&summary).expect("stats serialize")
}

/// The shard module's toy token-passing workload, reduced to what the
/// layout-invariance property needs: every entity with tokens sends one
/// to the hub each window, which forwards it to a derived entity. All
/// hub decisions depend only on entity ids, never on the shard layout.
struct Toy {
    n: u64,
    k: usize,
    horizon: u64,
}

#[derive(Debug)]
enum ToyMsg {
    ToHub { from: u64 },
    Grant { to: u64 },
}

struct ToyShard {
    ids: Vec<u64>,
    tokens: BTreeMap<u64, u64>,
}

impl ShardWorkload for Toy {
    type Shard = ToyShard;
    type Msg = ToyMsg;

    fn shard_step(
        &self,
        _shard: usize,
        state: &mut ToyShard,
        win: &WindowInfo,
        inbox: Vec<(SimTime, ToyMsg)>,
        mail: &mut Mailbox<ToyMsg>,
    ) -> Option<SimTime> {
        for (_, msg) in inbox {
            if let ToyMsg::Grant { to } = msg {
                *state.tokens.entry(to).or_insert(0) += 1;
            }
        }
        if win.index < self.horizon {
            for &id in &state.ids {
                if state.tokens.get(&id).copied().unwrap_or(0) > 0 {
                    *state.tokens.get_mut(&id).expect("present") -= 1;
                    mail.send(
                        Addr::Hub,
                        win.start,
                        u128::from(id),
                        ToyMsg::ToHub { from: id },
                    );
                }
            }
        }
        (win.index + 1 < self.horizon).then_some(win.end)
    }

    fn hub_step(
        &mut self,
        win: &WindowInfo,
        inbox: Vec<(SimTime, ToyMsg)>,
        mail: &mut Mailbox<ToyMsg>,
    ) -> HubDecision {
        for (at, msg) in inbox {
            if let ToyMsg::ToHub { from } = msg {
                let to = (from * 31 + 17) % self.n;
                #[allow(clippy::cast_possible_truncation)] // toy entity counts are small
                mail.send(
                    Addr::Shard(to as usize % self.k),
                    at,
                    (u128::from(to) << 64) | u128::from(from),
                    ToyMsg::Grant { to },
                );
            }
        }
        HubDecision::running((win.index + 1 < self.horizon).then_some(win.end))
    }
}

/// Runs the toy under a recording scope at one shard layout and folds
/// the trace into its derived-metrics summary JSON.
fn toy_derived_summary(n: u64, k: usize, threads: usize, horizon: u64) -> String {
    let mut shards: Vec<ToyShard> = (0..k)
        .map(|s| {
            let ids: Vec<u64> = (0..n).filter(|i| (*i as usize) % k == s).collect();
            let tokens = ids.iter().map(|&i| (i, i % 7 + 1)).collect();
            ToyShard { ids, tokens }
        })
        .collect();
    let mut toy = Toy { n, k, horizon };
    let cfg = ShardConfig::new(threads, SimDuration::from_secs(10));
    let ((), trace) = hc_obs::record_scope(0, || {
        run_shards(&cfg, &mut toy, &mut shards).expect("toy runs");
    });
    let mut acc = DeriveAcc::new();
    for r in &trace.records {
        acc.add(r);
    }
    acc.finish().to_json()
}

proptest! {
    #[test]
    fn recording_never_perturbs_results(
        jobs in 0usize..32,
        threads in 1usize..8,
        seed in 0u64..300,
    ) {
        let factory = RngFactory::new(seed);
        let plain = run_seeded_replications(&factory, "obs", jobs, threads, stats_job)
            .expect("plain run succeeds");
        let (recorded, trace) = hc_obs::record_scope(0, || {
            run_seeded_replications(&factory, "obs", jobs, threads, stats_job)
        });
        let recorded = recorded.expect("recorded run succeeds");
        prop_assert_eq!(plain, recorded, "a subscriber changed the results");
        // The trace really observed the jobs (per-task span + merged records).
        prop_assert_eq!(trace.metrics.counter("par.tasks"), jobs as u64);
    }

    #[test]
    fn merged_trace_is_thread_invariant(
        jobs in 0usize..32,
        threads in 2usize..8,
        seed in 0u64..300,
    ) {
        let factory = RngFactory::new(seed);
        let record = |t: usize| {
            let (out, trace) = hc_obs::record_scope(0, || {
                run_seeded_replications(&factory, "obs", jobs, t, stats_job)
            });
            out.expect("run succeeds");
            trace
        };
        let serial = record(1);
        let parallel = record(threads);
        // Byte-identical deterministic sections at any thread count…
        prop_assert_eq!(
            hc_obs::sink::jsonl::render_deterministic(&serial),
            hc_obs::sink::jsonl::render_deterministic(&parallel)
        );
        // …while worker/steal counts land in the machine section, which
        // is allowed to differ.
        prop_assert_eq!(serial.machine.get("par.workers"), Some(&1.0));
        if jobs > 0 {
            prop_assert!(parallel.machine.get("par.workers").copied().unwrap_or(0.0) >= 1.0);
        }
    }

    #[test]
    fn shard_derived_summary_is_layout_invariant(
        n in 2u64..32,
        k in 1usize..5,
        threads in 1usize..4,
        horizon in 1u64..6,
    ) {
        let baseline = toy_derived_summary(n, 1, 1, horizon);
        let layout = toy_derived_summary(n, k, threads, horizon);
        prop_assert_eq!(baseline, layout, "derived summary depends on the shard layout");
    }

    #[test]
    fn span_trees_nest_and_bound_the_critical_path(
        ops in proptest::collection::vec((0u8..3, 1u64..1_000), 0..48),
    ) {
        // Random well-formed scope programs: enter a scope, emit a leaf,
        // or exit the innermost scope, with a forward-only clock.
        let ((), trace) = hc_obs::record_scope(0, || {
            let mut clock = 0u64;
            let mut stack: Vec<hc_obs::SpanScope> = Vec::new();
            for &(op, advance) in &ops {
                match op {
                    0 => stack.push(hc_obs::enter("prop", "scope", clock)),
                    1 => hc_obs::span("prop", "leaf", clock, clock + advance, &[]),
                    _ => {
                        if let Some(scope) = stack.pop() {
                            scope.exit(clock, &[]);
                        }
                    }
                }
                clock += advance;
            }
            while let Some(scope) = stack.pop() {
                scope.exit(clock, &[]);
            }
        });
        let tree = SpanTree::from_records(&trace.records);
        // Every child interval lies inside its parent's.
        let mut by_key: BTreeMap<(u32, u64), usize> = BTreeMap::new();
        for (i, s) in tree.spans.iter().enumerate() {
            by_key.insert((s.track, s.id), i);
        }
        for s in &tree.spans {
            if s.parent != 0 {
                let parent = by_key.get(&(s.track, s.parent)).map(|&i| &tree.spans[i]);
                prop_assert!(parent.is_some(), "parent {} missing on track {}", s.parent, s.track);
                let parent = parent.expect("checked above");
                prop_assert!(
                    s.start_us >= parent.start_us && s.end_us() <= parent.end_us(),
                    "child {}..{} escapes parent {}..{}",
                    s.start_us, s.end_us(), parent.start_us, parent.end_us()
                );
            }
        }
        // The critical path starts at a root, descends one child at a
        // time, and never claims more time than its root covers.
        if let Some(cp) = critical_path(&tree) {
            let max_root = tree
                .roots()
                .iter()
                .map(|&r| tree.spans[r].dur_us)
                .max()
                .unwrap_or(0);
            prop_assert!(cp.total_us <= max_root);
            let mut self_sum = 0u64;
            for (depth, step) in cp.steps.iter().enumerate() {
                prop_assert_eq!(step.depth, depth);
                self_sum += step.self_us;
            }
            prop_assert!(self_sum <= cp.total_us, "self times overrun the root");
            for pair in cp.steps.windows(2) {
                prop_assert!(tree.children(pair[0].span).contains(&pair[1].span));
            }
        } else {
            prop_assert!(tree.spans.is_empty());
        }
    }
}
