//! Model-based equivalence: [`WheelQueue`] vs the heap-backed
//! [`EventQueue`] it replaces. Any observable divergence — pop order,
//! FIFO stability within a timestamp, peek, horizon-bounded pops,
//! counters — under arbitrary interleavings of operations (including
//! pushes before already-popped times) is a determinism bug.

use hc_sim::{EventQueue, SimTime, WheelQueue};
use proptest::prelude::*;

/// One scripted operation against both queues. `value` parameterizes the
/// push time / horizon; tick values mix dense low ticks (forcing same-tick
/// FIFO collisions) with spread-out high ticks (forcing multi-level
/// cascades).
fn op_tick(raw: u64) -> u64 {
    match raw % 4 {
        0 => raw % 48,                // dense: same-tick collisions
        1 => (raw % 100_000) * 64,    // frame boundaries
        2 => raw % (1 << 40),         // deep levels
        _ => u64::MAX - (raw % 1000), // top of the range
    }
}

fn run_script(ops: &[(u8, u64)]) -> Result<(), TestCaseError> {
    let mut wheel: WheelQueue<u64> = WheelQueue::new();
    let mut heap: EventQueue<u64> = EventQueue::new();
    let mut payload = 0u64;
    for &(kind, raw) in ops {
        match kind % 6 {
            // Push dominates so the structures stay populated.
            0..=2 => {
                let at = SimTime::from_ticks(op_tick(raw));
                wheel.push(at, payload);
                heap.push(at, payload);
                payload += 1;
            }
            3 => {
                prop_assert_eq!(wheel.pop(), heap.pop());
            }
            4 => {
                let horizon = SimTime::from_ticks(op_tick(raw));
                prop_assert_eq!(wheel.pop_before(horizon), heap.pop_before(horizon));
            }
            _ => {
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            }
        }
        prop_assert_eq!(wheel.peek_time(), heap.peek_time());
        prop_assert_eq!(wheel.len(), heap.len());
        prop_assert_eq!(wheel.is_empty(), heap.is_empty());
        prop_assert_eq!(wheel.scheduled_count(), heap.scheduled_count());
        prop_assert_eq!(wheel.popped_count(), heap.popped_count());
    }
    // Drain both to the end: the full remaining order must match.
    loop {
        let (w, h) = (wheel.pop(), heap.pop());
        prop_assert_eq!(w, h);
        if h.is_none() {
            break;
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn wheel_matches_heap_model(ops in prop::collection::vec((0u8..6, 0u64..u64::MAX), 0..400)) {
        run_script(&ops)?;
    }

    #[test]
    fn wheel_matches_heap_on_dense_same_tick_bursts(
        ops in prop::collection::vec((0u8..6, 0u64..64), 0..200),
    ) {
        // All pushes land in a handful of ticks: maximal FIFO pressure.
        run_script(&ops)?;
    }

    #[test]
    fn drain_through_matches(
        ticks in prop::collection::vec(0u64..u64::MAX, 1..100),
        horizon_raw in 0u64..u64::MAX,
    ) {
        let mut wheel: WheelQueue<usize> = WheelQueue::new();
        let mut heap: EventQueue<usize> = EventQueue::new();
        for (i, &raw) in ticks.iter().enumerate() {
            let at = SimTime::from_ticks(op_tick(raw));
            wheel.push(at, i);
            heap.push(at, i);
        }
        let horizon = SimTime::from_ticks(op_tick(horizon_raw));
        prop_assert_eq!(wheel.drain_through(horizon), heap.drain_through(horizon));
        prop_assert_eq!(wheel.len(), heap.len());
    }
}
