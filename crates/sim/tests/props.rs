//! Property tests over the simulation kernel's distributions and
//! statistics — the numerical foundation every experiment rests on.

use hc_sim::dist::{Bernoulli, DiscreteDist, Exponential, Geometric, LogNormal, Zipf};
use hc_sim::{Histogram, OnlineStats, RateSeries, SampleSet, SimDuration, SimTime};
use proptest::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #[test]
    fn discrete_dist_pmf_sums_to_one(weights in prop::collection::vec(0.0f64..100.0, 1..20)) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let d = DiscreteDist::new(&weights).unwrap();
        let total: f64 = (0..d.len()).map(|i| d.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Zero-weight outcomes have zero mass.
        for (i, &w) in weights.iter().enumerate() {
            if w == 0.0 {
                prop_assert!(d.pmf(i).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn discrete_dist_never_samples_zero_weight(
        seed in 0u64..1000,
        nonzero in 1usize..6,
    ) {
        // Weights: `nonzero` ones followed by three zeros.
        let mut weights = vec![1.0; nonzero];
        weights.extend([0.0, 0.0, 0.0]);
        let d = DiscreteDist::new(&weights).unwrap();
        let mut r = rng(seed);
        for _ in 0..200 {
            prop_assert!(d.sample(&mut r) < nonzero);
        }
    }

    #[test]
    fn zipf_pmf_is_monotone_nonincreasing(n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s).unwrap();
        for k in 1..n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_samples_are_positive(rate in 0.001f64..1000.0, seed in 0u64..100) {
        let e = Exponential::new(rate).unwrap();
        let mut r = rng(seed);
        for _ in 0..100 {
            prop_assert!(e.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    fn lognormal_samples_are_positive(mu in -5.0f64..5.0, sigma in 0.0f64..2.0, seed in 0u64..100) {
        let ln = LogNormal::new(mu, sigma).unwrap();
        let mut r = rng(seed);
        for _ in 0..100 {
            prop_assert!(ln.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn geometric_support_is_positive_ints(p in 0.01f64..1.0, seed in 0u64..100) {
        let g = Geometric::new(p).unwrap();
        let mut r = rng(seed);
        for _ in 0..100 {
            prop_assert!(g.sample(&mut r) >= 1);
        }
    }

    #[test]
    fn bernoulli_respects_extremes(p in -1.0f64..2.0, seed in 0u64..100) {
        let b = Bernoulli::new(p);
        let mut r = rng(seed);
        let x = b.sample(&mut r);
        if p <= 0.0 {
            prop_assert!(!x);
        }
        if p >= 1.0 {
            prop_assert!(x);
        }
    }

    #[test]
    fn online_stats_bounds_hold(values in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let mut s = OnlineStats::new();
        for &v in &values {
            s.push(v);
        }
        let min = s.min().unwrap();
        let max = s.max().unwrap();
        prop_assert!(min <= s.mean() + 1e-6 && s.mean() <= max + 1e-6);
        prop_assert!(s.sample_variance() >= 0.0);
        prop_assert!(s.population_variance() <= s.sample_variance() + 1e-6 || values.len() == 1);
    }

    #[test]
    fn sample_set_quantiles_are_monotone(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut set = SampleSet::new();
        set.extend(values.iter().copied());
        let q25 = set.quantile(0.25).unwrap();
        let q50 = set.quantile(0.5).unwrap();
        let q75 = set.quantile(0.75).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q75);
        prop_assert!(set.quantile(0.0).unwrap() <= q25);
        prop_assert!(q75 <= set.quantile(1.0).unwrap());
    }

    #[test]
    fn histogram_conserves_mass(values in prop::collection::vec(-10.0f64..20.0, 0..200)) {
        let mut h = Histogram::new(0.0, 10.0, 7);
        for &v in &values {
            h.record(v);
        }
        let binned: u64 = (0..h.bin_len()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), h.total());
        prop_assert_eq!(h.total(), values.len() as u64);
    }

    #[test]
    fn rate_series_conserves_mass(
        events in prop::collection::vec((0u64..10_000, 1u64..5), 0..100),
    ) {
        let mut s = RateSeries::new(SimDuration::from_secs(60));
        let mut expected = 0;
        for &(at, n) in &events {
            s.record(SimTime::from_secs(at), n);
            expected += n;
        }
        prop_assert_eq!(s.total(), expected);
        let summed: u64 = (0..s.len()).map(|i| s.window_count(i)).sum();
        prop_assert_eq!(summed, expected);
    }
}
