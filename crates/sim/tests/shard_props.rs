//! Property tests for the sharded single-run engine: for *any* agent
//! population, shard count, thread count, and window length, the hub
//! must observe the exact same message sequence — byte-identical to a
//! hand-derived serial reference that re-implements the routing
//! contract (window assignment + `(window, key, src, seq)` merge)
//! without threads, mailboxes, or the engine itself.
//!
//! The synthetic workload is a two-hop relay exercising every route:
//!
//! * each agent owns a fixed calendar of `Fire` events (pure function
//!   of its parameters); its home shard drains the calendar per window
//!   and reports each firing to the hub (shard → hub, same window);
//! * the hub logs the firing and sends an `Ack` back to the agent's
//!   home shard at `t + delta` (hub → shard, next window at the
//!   earliest);
//! * the shard answers each `Ack` with a `Done` at the ack time
//!   (shard → hub again), which the hub also logs.
//!
//! The hub's log — every entry in processing order — is the observable.

use hc_sim::shard::{run, Addr, HubDecision, Mailbox, ShardConfig, ShardWorkload, WindowInfo};
use hc_sim::{EventQueue, SimDuration, SimTime};
use proptest::collection::vec;
use proptest::prelude::*;

const TAG_FIRE: u128 = 1 << 120;
const TAG_DONE: u128 = 2 << 120;

fn key(tag: u128, t: SimTime, agent: u64) -> u128 {
    tag | (u128::from(t.ticks()) << 64) | u128::from(agent)
}

/// One agent's pure schedule: `rounds` firings starting at `base`,
/// `step` apart, acked `delta` later.
#[derive(Debug, Clone)]
struct Agent {
    base: u64,
    step: u64,
    rounds: u64,
    delta: u64,
}

#[derive(Debug)]
enum Msg {
    Fire { agent: u64 },
    Ack { agent: u64 },
    Done { agent: u64 },
}

struct RelayShard {
    calendar: EventQueue<u64>,
}

struct Relay {
    agents: Vec<Agent>,
    shards: usize,
    /// `(ticks, agent, kind)` in hub processing order; kind 0 = fire,
    /// 1 = done.
    log: Vec<(u64, u64, u8)>,
}

impl ShardWorkload for Relay {
    type Shard = RelayShard;
    type Msg = Msg;

    fn shard_step(
        &self,
        _shard: usize,
        state: &mut RelayShard,
        win: &WindowInfo,
        inbox: Vec<(SimTime, Msg)>,
        mail: &mut Mailbox<Msg>,
    ) -> Option<SimTime> {
        for (at, msg) in inbox {
            match msg {
                Msg::Ack { agent } => {
                    mail.send(Addr::Hub, at, key(TAG_DONE, at, agent), Msg::Done { agent });
                }
                Msg::Fire { .. } | Msg::Done { .. } => panic!("hub-bound message on a shard"),
            }
        }
        while let Some((t, agent)) = state.calendar.pop_before(win.last_tick()) {
            mail.send(Addr::Hub, t, key(TAG_FIRE, t, agent), Msg::Fire { agent });
        }
        state.calendar.peek_time()
    }

    fn hub_step(
        &mut self,
        _win: &WindowInfo,
        inbox: Vec<(SimTime, Msg)>,
        mail: &mut Mailbox<Msg>,
    ) -> HubDecision {
        for (at, msg) in inbox {
            match msg {
                Msg::Fire { agent } => {
                    self.log.push((at.ticks(), agent, 0));
                    let delta = self.agents[agent as usize].delta;
                    let ack_at = at + SimDuration::from_ticks(delta);
                    let home = (agent as usize) % self.shards;
                    mail.send(
                        Addr::Shard(home),
                        ack_at,
                        key(TAG_FIRE, ack_at, agent),
                        Msg::Ack { agent },
                    );
                }
                Msg::Done { agent } => self.log.push((at.ticks(), agent, 1)),
                Msg::Ack { .. } => panic!("shard-bound message on the hub"),
            }
        }
        HubDecision::running(None)
    }
}

/// Runs the relay on the engine and returns the hub log.
fn engine_log(
    agents: &[Agent],
    shards: usize,
    threads: usize,
    window_ticks: u64,
) -> Vec<(u64, u64, u8)> {
    let mut states: Vec<RelayShard> = (0..shards)
        .map(|_| RelayShard {
            calendar: EventQueue::new(),
        })
        .collect();
    for (i, a) in agents.iter().enumerate() {
        for r in 0..a.rounds {
            states[i % shards]
                .calendar
                .push(SimTime::from_ticks(a.base + r * a.step), i as u64);
        }
    }
    let mut relay = Relay {
        agents: agents.to_vec(),
        shards,
        log: Vec::new(),
    };
    let cfg = ShardConfig::new(threads, SimDuration::from_ticks(window_ticks));
    run(&cfg, &mut relay, &mut states).expect("relay runs");
    relay.log
}

/// Hand-derived reference: re-implements the routing contract directly.
///
/// * A firing at `t` reaches the hub in `window_of(t)` (the shard
///   processes its calendar in the window containing `t`, and
///   shard → hub delivery stays in the sending window).
/// * Its ack is processed by the shard — and therefore its `Done`
///   reaches the hub — in `max(window_of(t + delta), window_of(t) + 1)`.
/// * Within one hub window, messages arrive in `(key, src, seq)` order;
///   the key's tag bits put every `Fire` (tag 1) before every `Done`
///   (tag 2), then time, then agent id. Key order subsumes src/seq here
///   because keys are unique per window.
fn reference_log(agents: &[Agent], window_ticks: u64) -> Vec<(u64, u64, u8)> {
    // (window, key) -> entry
    let mut entries: Vec<(u64, u128, (u64, u64, u8))> = Vec::new();
    for (i, a) in agents.iter().enumerate() {
        for r in 0..a.rounds {
            let t = a.base + r * a.step;
            let fire_win = t / window_ticks;
            entries.push((
                fire_win,
                key(TAG_FIRE, SimTime::from_ticks(t), i as u64),
                (t, i as u64, 0),
            ));
            let done_t = t + a.delta;
            let done_win = (done_t / window_ticks).max(fire_win + 1);
            entries.push((
                done_win,
                key(TAG_DONE, SimTime::from_ticks(done_t), i as u64),
                (done_t, i as u64, 1),
            ));
        }
    }
    entries.sort_by(|(wa, ka, _), (wb, kb, _)| (wa, ka).cmp(&(wb, kb)));
    entries.into_iter().map(|(_, _, e)| e).collect()
}

/// Raw agent draw: `(base, step, rounds, delta)` — the vendored
/// proptest has no `prop_map`, so tests build [`Agent`]s from tuples.
type AgentTuple = (u64, u64, u64, u64);

fn agent_strategy() -> (
    std::ops::Range<u64>,
    std::ops::Range<u64>,
    std::ops::Range<u64>,
    std::ops::Range<u64>,
) {
    (0u64..200, 1u64..60, 0u64..4, 0u64..90)
}

fn agents_of(raw: &[AgentTuple]) -> Vec<Agent> {
    raw.iter()
        .map(|&(base, step, rounds, delta)| Agent {
            base,
            step,
            rounds,
            delta,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_layout_matches_the_hand_reference(
        raw in vec(agent_strategy(), 1..10),
        shards in 1usize..5,
        threads in 1usize..5,
        window_ticks in 1u64..80,
    ) {
        let agents = agents_of(&raw);
        let expected = reference_log(&agents, window_ticks);
        let got = engine_log(&agents, shards, threads, window_ticks);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn every_layout_agrees_with_the_serial_engine(
        raw in vec(agent_strategy(), 1..12),
        window_ticks in 1u64..50,
    ) {
        let agents = agents_of(&raw);
        let serial = engine_log(&agents, 1, 1, window_ticks);
        for shards in [2usize, 3, 5] {
            for threads in [1usize, 4] {
                let log = engine_log(&agents, shards, threads, window_ticks);
                prop_assert_eq!(
                    &log,
                    &serial,
                    "shards={} threads={}",
                    shards,
                    threads
                );
            }
        }
    }
}
