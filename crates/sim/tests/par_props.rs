//! Property tests for the parallel replication pool: for *any* job
//! count and thread count, the parallel path must produce byte-identical
//! serialized statistics to the serial path, and a panicking replication
//! must surface as a typed error without poisoning later runs.

use hc_sim::{
    run_replications, run_seeded_replications, OnlineStats, ReplicationError, RngFactory, SimRng,
};
use proptest::prelude::*;
use rand::Rng;

/// A replication job with data-dependent cost: draws a per-index number
/// of samples and serializes the resulting summary statistics, so equal
/// outputs really mean equal streams, not just equal lengths.
fn stats_job(index: usize, mut rng: SimRng) -> String {
    let mut stats = OnlineStats::new();
    let draws = 8 + (index % 7) * 5;
    for _ in 0..draws {
        stats.push(rng.gen::<f64>());
    }
    let summary = vec![
        stats.count() as f64,
        stats.mean(),
        stats.std_dev(),
        stats.min().unwrap_or(f64::NAN),
        stats.max().unwrap_or(f64::NAN),
    ];
    serde_json::to_string(&summary).expect("stats serialize")
}

proptest! {
    #[test]
    fn parallel_matches_serial_for_any_grid_shape(
        jobs in 0usize..48,
        threads in 1usize..10,
        seed in 0u64..500,
    ) {
        let factory = RngFactory::new(seed);
        let serial = run_seeded_replications(&factory, "equiv", jobs, 1, stats_job)
            .expect("serial path never panics");
        let parallel = run_seeded_replications(&factory, "equiv", jobs, threads, stats_job)
            .expect("parallel path never panics");
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn unseeded_results_keep_index_order(
        jobs in 0usize..64,
        threads in 1usize..10,
    ) {
        let out = run_replications(jobs, threads, |i| i.wrapping_mul(2_654_435_761))
            .expect("pure jobs never panic");
        let expected: Vec<usize> = (0..jobs).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        prop_assert_eq!(out, expected);
    }
}

#[test]
fn a_panic_surfaces_as_error_and_does_not_poison_the_pool() {
    let err = run_replications(10, 4, |i| {
        assert!(i != 3, "replication 3 is rigged to fail");
        i
    })
    .expect_err("job 3 panics");
    match err {
        ReplicationError::Panicked { index, message } => {
            assert_eq!(index, 3);
            assert!(message.contains("rigged"), "unexpected message: {message}");
        }
        other => panic!("wrong variant: {other}"),
    }

    // The pool is a pure function — a failed batch must not affect the
    // next one (nothing is poisoned, no worker state leaks).
    let ok = run_replications(10, 4, |i| i).expect("clean batch succeeds after a failed one");
    assert_eq!(ok, (0..10).collect::<Vec<_>>());
}
