//! A hierarchical timing-wheel event queue.
//!
//! [`WheelQueue`] is a drop-in replacement for [`EventQueue`](crate::EventQueue)
//! with the same observable semantics — events pop in `(time, seq)` order, so
//! simultaneous events fire in FIFO (scheduling) order — but O(1) amortized
//! insert and pop instead of the heap's O(log n). The near-horizon events that
//! dominate session scheduling land in the lowest wheel level and never touch
//! a comparison-based structure.
//!
//! # Design
//!
//! The wheel has [`LEVELS`] levels of [`SLOTS`] slots each ([`BITS`] bits of
//! the tick count per level, covering the full `u64` tick range). A cursor
//! `now` tracks the earliest tick the wheel may still contain. An entry at
//! tick `t >= now` lives at the level of the highest 6-bit digit in which `t`
//! differs from `now`; its slot is `t`'s digit at that level. Level 0 slots
//! therefore hold **exactly one tick value each**, so popping from level 0
//! needs no comparisons and preserves insertion order within a tick.
//!
//! When a level-0 frame drains, the search advances `now` to the next
//! occupied slot (found via one occupancy bitmap word per level) and
//! *cascades*: the first occupied higher-level slot is drained and its
//! entries re-inserted relative to the new `now`, landing at strictly lower
//! levels. Each entry cascades at most `LEVELS - 1` times, giving O(1)
//! amortized pops. Slot storage is a `VecDeque` per slot which retains its
//! capacity across drains, so a steady-state simulation stops allocating.
//!
//! Pushes *before* `now` (possible because callers may schedule at times
//! already popped) go to a small overflow heap ordered by `(time, seq)`;
//! every overflow entry is strictly earlier than every wheel entry, so the
//! overflow heap always pops first and global FIFO-within-timestamp order is
//! preserved. The model-based property test in `tests/wheel_props.rs` pins
//! this equivalence against [`EventQueue`](crate::EventQueue).

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Bits of the tick count consumed per wheel level.
const BITS: u32 = 6;
/// Slots per level (`2^BITS`).
const SLOTS: usize = 1 << BITS;
/// Levels needed to cover a full `u64` tick range (`ceil(64 / BITS)`).
const LEVELS: usize = 11;

#[derive(Debug)]
struct Entry<E> {
    ticks: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.ticks == other.ticks && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ticks, self.seq).cmp(&(other.ticks, other.seq))
    }
}

/// A deterministic future-event list backed by a hierarchical timing wheel.
///
/// Mirrors the [`EventQueue`](crate::EventQueue) API exactly; see the module
/// docs for the data-structure design.
///
/// # Examples
///
/// ```
/// use hc_sim::{SimTime, WheelQueue};
///
/// let mut q = WheelQueue::new();
/// q.push(SimTime::from_secs(2), "b");
/// q.push(SimTime::from_secs(1), "a");
/// q.push(SimTime::from_secs(2), "c"); // same instant as "b", scheduled later
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct WheelQueue<E> {
    /// `LEVELS * SLOTS` slot queues, row-major by level.
    slots: Vec<VecDeque<Entry<E>>>,
    /// One occupancy bit per slot, one word per level.
    occ: [u64; LEVELS],
    /// Earliest tick the wheel may still contain; after [`Self::settle`],
    /// equal to the earliest occupied tick when the wheel is non-empty.
    now: u64,
    /// Cached earliest wheel tick (`None` when the wheel part is empty).
    wheel_next: Option<u64>,
    /// Entries pushed at ticks strictly before `now`.
    past: BinaryHeap<Reverse<Entry<E>>>,
    len: usize,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for WheelQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn digit(ticks: u64, level: usize) -> usize {
    ((ticks >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
}

#[inline]
fn level_of(now: u64, ticks: u64) -> usize {
    let diff = now ^ ticks;
    if diff == 0 {
        0
    } else {
        ((63 - diff.leading_zeros()) / BITS) as usize
    }
}

impl<E> WheelQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(LEVELS * SLOTS);
        slots.resize_with(LEVELS * SLOTS, VecDeque::new);
        WheelQueue {
            slots,
            occ: [0; LEVELS],
            now: 0,
            wheel_next: None,
            past: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
            popped: 0,
        }
    }

    /// Creates an empty queue pre-sized for roughly `cap` pending events.
    ///
    /// The hint is spread over the level-0 slots (where steady-state traffic
    /// lands); slot queues retain their capacity across drains, so this
    /// mostly pre-pays the first wheel rotation's growth.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        let per_slot = cap / SLOTS;
        if per_slot > 0 {
            for slot in q.slots.iter_mut().take(SLOTS) {
                slot.reserve(per_slot);
            }
        }
        q
    }

    /// Inserts an entry relative to the current `now`; caller guarantees
    /// `ticks >= self.now`. Does not touch `len`/`seq` bookkeeping.
    fn insert_wheel(&mut self, entry: Entry<E>) {
        debug_assert!(entry.ticks >= self.now);
        let level = level_of(self.now, entry.ticks);
        let slot = digit(entry.ticks, level);
        self.occ[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push_back(entry); // hc-analyze: allow(P1): level < LEVELS and slot < SLOTS by digit extraction, so the flat index is in bounds
    }

    /// Advances `now` to the earliest occupied tick, cascading higher-level
    /// slots down as frames are entered, and refreshes `wheel_next`.
    fn settle(&mut self) {
        'outer: loop {
            // Level 0 holds exact ticks; the first occupied slot at or after
            // the cursor's digit is the wheel minimum.
            let d0 = digit(self.now, 0);
            let avail = self.occ[0] & (!0u64 << d0);
            if avail != 0 {
                let j = u64::from(avail.trailing_zeros());
                let next = (self.now & !(SLOTS as u64 - 1)) | j;
                self.now = next;
                self.wheel_next = Some(next);
                return;
            }
            // Level 0 is empty past the cursor: enter the next occupied
            // frame of the lowest occupied level and cascade it down.
            for level in 1..LEVELS {
                let dl = digit(self.now, level);
                let mask = if dl + 1 >= SLOTS {
                    0
                } else {
                    !0u64 << (dl + 1)
                };
                let avail = self.occ[level] & mask;
                if avail == 0 {
                    continue;
                }
                let j = u64::from(avail.trailing_zeros());
                let shift = BITS * level as u32;
                let high = match shift.checked_add(BITS) {
                    Some(s) if s < 64 => !0u64 << s,
                    _ => 0,
                };
                // Everything between the old cursor and this frame is empty
                // (all lower levels were), so the jump skips nothing.
                self.now = (self.now & high) | (j << shift);
                self.occ[level] &= !(1 << j);
                let drained = std::mem::take(&mut self.slots[level * SLOTS + j as usize]); // hc-analyze: allow(P1): level < LEVELS and j < SLOTS from the bitmap scan, so the flat index is in bounds
                for entry in drained {
                    self.insert_wheel(entry);
                }
                continue 'outer;
            }
            self.wheel_next = None;
            return;
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let ticks = time.ticks();
        let entry = Entry {
            ticks,
            seq: self.next_seq,
            event,
        };
        self.next_seq += 1;
        if self.len == 0 {
            // Empty queue: re-anchor the cursor so re-use at earlier times
            // stays on the wheel instead of accumulating in the past heap.
            self.now = ticks;
        }
        self.len += 1;
        if ticks < self.now {
            self.past.push(Reverse(entry));
        } else {
            self.insert_wheel(entry);
            self.wheel_next = Some(self.wheel_next.map_or(ticks, |w| w.min(ticks)));
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Past-heap entries are all strictly earlier than `now <= wheel_next`,
        // so they drain first; within the heap, `(ticks, seq)` order matches
        // global FIFO-within-timestamp order.
        if let Some(Reverse(entry)) = self.past.pop() {
            self.len -= 1;
            self.popped += 1;
            return Some((SimTime::from_ticks(entry.ticks), entry.event));
        }
        self.settle();
        let next = self.wheel_next?;
        let slot = digit(next, 0);
        let queue = &mut self.slots[slot];
        let entry = queue.pop_front().expect("occupied level-0 slot"); // hc-analyze: allow(P1): settle() leaves wheel_next pointing at a non-empty level-0 slot
        debug_assert_eq!(entry.ticks, next);
        if queue.is_empty() {
            self.occ[0] &= !(1 << slot);
        }
        self.len -= 1;
        self.popped += 1;
        self.settle();
        Some((SimTime::from_ticks(entry.ticks), entry.event))
    }

    /// The firing time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(Reverse(entry)) = self.past.peek() {
            return Some(SimTime::from_ticks(entry.ticks));
        }
        self.wheel_next.map(SimTime::from_ticks)
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `horizon`; otherwise leaves the queue untouched.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= horizon {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events ever scheduled.
    #[must_use]
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Total events ever popped.
    #[must_use]
    pub fn popped_count(&self) -> u64 {
        self.popped
    }

    /// Discards all pending events (counters are retained).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.occ = [0; LEVELS];
        self.past.clear();
        self.wheel_next = None;
        self.now = 0;
        self.len = 0;
    }

    /// Drains all events firing at or before `horizon`, in order.
    pub fn drain_through(&mut self, horizon: SimTime) -> Vec<(SimTime, E)> {
        let mut out = Vec::new();
        while let Some(item) = self.pop_before(horizon) {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = WheelQueue::new();
        for s in [5u64, 1, 4, 2, 3] {
            q.push(t(s), s);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = WheelQueue::new();
        for label in ["first", "second", "third"] {
            q.push(t(7), label);
        }
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn push_before_cursor_uses_past_heap() {
        let mut q = WheelQueue::new();
        q.push(t(100), "late");
        assert_eq!(q.pop().unwrap().1, "late");
        // The cursor now sits at t=100; earlier pushes must still pop first,
        // in (time, seq) order.
        q.push(t(200), "future");
        q.push(t(5), "past-b");
        q.push(t(3), "past-a");
        q.push(t(5), "past-c");
        assert_eq!(q.pop().unwrap(), (t(3), "past-a"));
        assert_eq!(q.pop().unwrap(), (t(5), "past-b"));
        assert_eq!(q.pop().unwrap(), (t(5), "past-c"));
        assert_eq!(q.pop().unwrap(), (t(200), "future"));
    }

    #[test]
    fn cascades_across_levels() {
        let mut q = WheelQueue::new();
        // Spread entries across several wheel levels, including the top.
        let ticks = [
            0u64,
            1,
            63,
            64,
            65,
            4095,
            4096,
            1 << 20,
            (1 << 20) + 7,
            1 << 40,
            u64::MAX - 1,
            u64::MAX,
        ];
        for (i, &tk) in ticks.iter().enumerate() {
            q.push(SimTime::from_ticks(tk), i);
        }
        let mut sorted: Vec<u64> = ticks.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(at, _)| at.ticks())).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn peek_and_pop_before_respect_horizon() {
        let mut q = WheelQueue::new();
        q.push(t(10), "late");
        q.push(t(2), "early");
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop_before(t(5)), Some((t(2), "early")));
        assert_eq!(q.pop_before(t(5)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn counters_and_clear() {
        let mut q = WheelQueue::new();
        q.push(t(1), ());
        q.push(t(2), ());
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        assert_eq!(q.popped_count(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.scheduled_count(), 2);
        q.push(t(1), ());
        assert_eq!(q.pop(), Some((t(1), ())));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: WheelQueue<()> = WheelQueue::with_capacity(256);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert!(q.drain_through(SimTime::MAX).is_empty());
    }

    #[test]
    fn reanchors_after_draining() {
        let mut q = WheelQueue::new();
        q.push(SimTime::from_ticks(1 << 50), "far");
        assert!(q.pop().is_some());
        // Fully drained: a much earlier push should land on the wheel again.
        q.push(t(1), "near");
        assert_eq!(q.peek_time(), Some(t(1)));
        assert_eq!(q.pop().unwrap().1, "near");
    }
}
