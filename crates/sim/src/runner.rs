//! A minimal simulation driver.
//!
//! [`Simulation`] owns the clock and a [`WheelQueue`], and hands each event
//! to a caller-supplied handler which may schedule further events. This is
//! the conventional DES main loop, factored out so every experiment binary
//! does not re-implement (and subtly diverge on) horizon handling and event
//! budgets.

use crate::time::{SimDuration, SimTime};
use crate::wheel::WheelQueue;

/// Why a [`Simulation::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (runaway-loop backstop).
    BudgetExhausted,
}

/// A discrete-event simulation loop over events of type `E`.
///
/// # Examples
///
/// ```
/// use hc_sim::{Simulation, SimDuration, SimTime, StepOutcome};
///
/// // A self-perpetuating heartbeat that stops at the horizon.
/// let mut sim = Simulation::new();
/// sim.schedule(SimTime::ZERO, "beat");
/// let mut beats = 0;
/// let outcome = sim.run(SimTime::from_secs(10), |sim, now, _ev| {
///     beats += 1;
///     sim.schedule(now + SimDuration::from_secs(3), "beat");
/// });
/// assert_eq!(outcome, StepOutcome::HorizonReached);
/// assert_eq!(beats, 4); // t = 0, 3, 6, 9
/// ```
#[derive(Debug)]
pub struct Simulation<E> {
    queue: WheelQueue<E>,
    now: SimTime,
    event_budget: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates an empty simulation at `t = 0` with a default event budget of
    /// one billion events.
    #[must_use]
    pub fn new() -> Self {
        Simulation::with_capacity(64)
    }

    /// Creates an empty simulation whose event queue is pre-sized for
    /// `capacity` pending events (the queue still grows on demand).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Simulation {
            queue: WheelQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            event_budget: 1_000_000_000,
        }
    }

    /// Overrides the event budget (backstop against runaway self-scheduling).
    #[must_use]
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// The current simulated time (the timestamp of the last handled event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`. Events scheduled in the past
    /// fire "now" (at the current clock) rather than rewinding time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.queue.push(at.max(self.now), event);
    }

    /// Schedules `event` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        let at = self.now + delay;
        self.queue.push(at, event);
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total events handled so far.
    #[must_use]
    pub fn handled(&self) -> u64 {
        self.queue.popped_count()
    }

    /// Runs until the queue drains, `horizon` is passed, or the event budget
    /// runs out. The handler receives `(self, event_time, event)` and may
    /// schedule more events.
    ///
    /// When an `hc-obs` recording scope is active the loop additionally
    /// records a `sim.run` span, an events-dispatched counter, the
    /// queue-depth high-water gauge and the outcome — pure observation,
    /// checked once at entry so uninstrumented runs pay nothing inside
    /// the loop.
    pub fn run<F>(&mut self, horizon: SimTime, mut handler: F) -> StepOutcome
    where
        F: FnMut(&mut Simulation<E>, SimTime, E),
    {
        let tracing = hc_obs::active();
        let started = self.now;
        let handled_before = self.queue.popped_count();
        let mut queue_high_water = self.queue.len();
        let outcome = loop {
            if self.queue.popped_count() >= self.event_budget {
                break StepOutcome::BudgetExhausted;
            }
            match self.queue.peek_time() {
                None => break StepOutcome::Drained,
                Some(t) if t > horizon => {
                    self.now = horizon;
                    break StepOutcome::HorizonReached;
                }
                Some(_) => {
                    // The peek above saw an event, so the pop yields it.
                    if let Some((t, ev)) = self.queue.pop() {
                        self.now = t;
                        handler(self, t, ev);
                        if tracing {
                            queue_high_water = queue_high_water.max(self.queue.len());
                        }
                    }
                }
            }
        };
        if tracing {
            let dispatched = self.queue.popped_count().saturating_sub(handled_before);
            let outcome_label = match outcome {
                StepOutcome::Drained => "drained",
                StepOutcome::HorizonReached => "horizon",
                StepOutcome::BudgetExhausted => "budget",
            };
            hc_obs::counter("sim.events", self.now.ticks(), dispatched);
            hc_obs::gauge(
                "sim.queue_high_water",
                self.now.ticks(),
                queue_high_water as f64,
            );
            hc_obs::span(
                "sim",
                "run",
                started.ticks(),
                self.now.ticks(),
                &[
                    ("events", dispatched.into()),
                    ("outcome", outcome_label.into()),
                ],
            );
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_when_no_events_remain() {
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule(SimTime::from_secs(1), 1);
        sim.schedule(SimTime::from_secs(2), 2);
        let mut seen = Vec::new();
        let outcome = sim.run(SimTime::from_secs(100), |_, _, ev| seen.push(ev));
        assert_eq!(outcome, StepOutcome::Drained);
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        assert_eq!(sim.handled(), 2);
    }

    #[test]
    fn horizon_stops_with_pending_events() {
        let mut sim: Simulation<&str> = Simulation::new();
        sim.schedule(SimTime::from_secs(1), "in");
        sim.schedule(SimTime::from_secs(50), "out");
        let mut seen = Vec::new();
        let outcome = sim.run(SimTime::from_secs(10), |_, _, ev| seen.push(ev));
        assert_eq!(outcome, StepOutcome::HorizonReached);
        assert_eq!(seen, vec!["in"]);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn budget_backstops_runaway_loops() {
        let mut sim: Simulation<()> = Simulation::new().with_event_budget(100);
        sim.schedule(SimTime::ZERO, ());
        let outcome = sim.run(SimTime::MAX, |sim, now, ()| {
            sim.schedule(now, ()); // pathological: reschedules at same instant
        });
        assert_eq!(outcome, StepOutcome::BudgetExhausted);
        assert_eq!(sim.handled(), 100);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim: Simulation<&str> = Simulation::new();
        sim.schedule(SimTime::from_secs(5), "later");
        let mut times = Vec::new();
        sim.run(SimTime::from_secs(10), |sim, now, ev| {
            times.push((now, ev));
            if ev == "later" {
                // Attempt to schedule in the past; must fire at `now`.
                sim.schedule(SimTime::from_secs(1), "clamped");
            }
        });
        assert_eq!(times[1], (SimTime::from_secs(5), "clamped"));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut sim: Simulation<&str> = Simulation::new();
        sim.schedule(SimTime::from_secs(2), "first");
        let mut fired_at = None;
        sim.run(SimTime::from_secs(100), |sim, _, ev| {
            if ev == "first" {
                sim.schedule_in(SimDuration::from_secs(3), "second");
            } else {
                fired_at = Some(sim.now());
            }
        });
        assert_eq!(fired_at, Some(SimTime::from_secs(5)));
    }
}
