//! Virtual time for the simulation kernel.
//!
//! All simulated clocks in the workspace use [`SimTime`] (an absolute
//! instant) and [`SimDuration`] (a span). Both are backed by an integer
//! number of **microseconds** rather than a float so that event ordering is
//! exact, hashing is stable, and runs are reproducible across platforms —
//! floating-point time is the classic source of cross-machine divergence in
//! DES kernels.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds per second, the internal tick resolution.
pub const TICKS_PER_SECOND: u64 = 1_000_000;

/// An absolute instant on the simulated clock, counted in microseconds from
/// the start of the simulation.
///
/// `SimTime` is totally ordered and `Copy`; arithmetic against
/// [`SimDuration`] is saturating at zero on subtraction underflow (events
/// cannot be scheduled before the epoch).
///
/// # Examples
///
/// ```
/// use hc_sim::{SimDuration, SimTime};
/// let t = SimTime::from_secs_f64(1.5) + SimDuration::from_millis(250);
/// assert_eq!(t.as_secs_f64(), 1.75);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, counted in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microsecond ticks.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Builds an instant from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SECOND)
    }

    /// Builds an instant from fractional seconds, rounding to the nearest
    /// microsecond. Negative or non-finite input clamps to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_ticks(secs))
    }

    /// Raw microsecond ticks since the epoch.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (lossy beyond ~2^53 µs).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Hours since the epoch as a float; the natural unit for GWAP
    /// throughput ("problem instances per human-hour").
    #[must_use]
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] if
    /// `earlier` is later than `self`.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from raw microsecond ticks.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Builds a span from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * TICKS_PER_SECOND)
    }

    /// Builds a span from whole minutes.
    #[must_use]
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * TICKS_PER_SECOND)
    }

    /// Builds a span from whole hours.
    #[must_use]
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600 * TICKS_PER_SECOND)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// microsecond. Negative or non-finite input clamps to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_ticks(secs))
    }

    /// Raw microsecond ticks.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The span as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// The span as fractional minutes.
    #[must_use]
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// The span as fractional hours.
    #[must_use]
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// `true` when the span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

fn secs_to_ticks(secs: f64) -> u64 {
    if !secs.is_finite() || secs <= 0.0 {
        return 0;
    }
    let ticks = secs * TICKS_PER_SECOND as f64;
    if ticks >= u64::MAX as f64 {
        u64::MAX
    } else {
        ticks.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 3600.0 {
            write!(f, "{:.2}h", s / 3600.0)
        } else if s >= 60.0 {
            write!(f, "{:.2}min", s / 60.0)
        } else {
            write!(f, "{s:.3}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).ticks(), 3 * TICKS_PER_SECOND);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn fractional_seconds_round_to_microseconds() {
        let t = SimTime::from_secs_f64(0.1234567);
        assert_eq!(t.ticks(), 123_457);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn arithmetic_is_saturating() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(late - early, SimDuration::from_secs(4));
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_ticks(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn ordering_is_total_and_matches_ticks() {
        let a = SimTime::from_ticks(10);
        let b = SimTime::from_ticks(20);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats_scale_with_magnitude() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_mins(3).to_string(), "3.00min");
        assert_eq!(SimDuration::from_hours(2).to_string(), "2.00h");
    }

    #[test]
    fn hour_conversions() {
        assert!((SimTime::from_secs(7200).as_hours_f64() - 2.0).abs() < 1e-12);
        assert!((SimDuration::from_mins(90).as_hours_f64() - 1.5).abs() < 1e-12);
        assert!((SimDuration::from_secs(90).as_mins_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(SimDuration::from_secs(2) * 3, SimDuration::from_secs(6));
        assert_eq!(SimDuration::from_secs(6) / 3, SimDuration::from_secs(2));
        let mut d = SimDuration::from_secs(5);
        d -= SimDuration::from_secs(7);
        assert_eq!(d, SimDuration::ZERO);
    }
}
