//! Windowed time series — rates over simulated time.
//!
//! Campaign-level figures ("labels per hour as the deployment ages") need
//! event counts bucketed by simulated time. [`RateSeries`] accumulates
//! timestamped counts into fixed-width windows and reports per-window
//! rates; [`GaugeSeries`] records last-value-wins samples of a level
//! (queue depth, pending words) per window.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Counts events into fixed windows and reports rates.
///
/// # Examples
///
/// ```
/// use hc_sim::timeseries::RateSeries;
/// use hc_sim::{SimDuration, SimTime};
///
/// let mut s = RateSeries::new(SimDuration::from_secs(60));
/// s.record(SimTime::from_secs(10), 3);
/// s.record(SimTime::from_secs(59), 1);
/// s.record(SimTime::from_secs(61), 5);
/// assert_eq!(s.window_count(0), 4);
/// assert_eq!(s.window_count(1), 5);
/// // 4 events in a 60-second window = 4/min.
/// assert!((s.rate_per_sec(0) - 4.0 / 60.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSeries {
    window: SimDuration,
    counts: Vec<u64>,
}

impl RateSeries {
    /// Creates a series with the given window width.
    ///
    /// # Panics
    ///
    /// Panics on a zero window (setup error).
    #[must_use]
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        RateSeries {
            window,
            counts: Vec::new(),
        }
    }

    /// The window width.
    #[must_use]
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Records `n` events at time `at`.
    pub fn record(&mut self, at: SimTime, n: u64) {
        let idx = (at.ticks() / self.window.ticks()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
    }

    /// Number of windows touched so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Event count in window `i` (0 beyond the recorded range).
    #[must_use]
    pub fn window_count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Events per second within window `i`.
    #[must_use]
    pub fn rate_per_sec(&self, i: usize) -> f64 {
        self.window_count(i) as f64 / self.window.as_secs_f64()
    }

    /// Events per hour within window `i`.
    #[must_use]
    pub fn rate_per_hour(&self, i: usize) -> f64 {
        self.rate_per_sec(i) * 3600.0
    }

    /// `(window start, count)` pairs for all recorded windows.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (SimTime::from_ticks(self.window.ticks() * i as u64), c))
    }

    /// Total events recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Last-value-wins level samples per window (queue depth, backlog size).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSeries {
    window: SimDuration,
    values: Vec<Option<f64>>,
}

impl GaugeSeries {
    /// Creates a gauge series with the given window width.
    ///
    /// # Panics
    ///
    /// Panics on a zero window.
    #[must_use]
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        GaugeSeries {
            window,
            values: Vec::new(),
        }
    }

    /// Samples the gauge at `at` (later samples within a window win).
    pub fn sample(&mut self, at: SimTime, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = (at.ticks() / self.window.ticks()) as usize;
        if idx >= self.values.len() {
            self.values.resize(idx + 1, None);
        }
        self.values[idx] = Some(value);
    }

    /// The recorded value in window `i`; windows without samples inherit
    /// the most recent earlier value (`None` before the first sample).
    #[must_use]
    pub fn window_value(&self, i: usize) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let upto = i.min(self.values.len() - 1);
        self.values[..=upto].iter().rev().find_map(|v| *v)
    }

    /// Number of windows touched.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when nothing has been sampled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_bucket_by_window() {
        let mut s = RateSeries::new(SimDuration::from_secs(10));
        s.record(SimTime::from_secs(0), 1);
        s.record(SimTime::from_secs(9), 1);
        s.record(SimTime::from_secs(10), 1);
        s.record(SimTime::from_secs(35), 2);
        assert_eq!(s.window_count(0), 2);
        assert_eq!(s.window_count(1), 1);
        assert_eq!(s.window_count(2), 0);
        assert_eq!(s.window_count(3), 2);
        assert_eq!(s.len(), 4);
        assert_eq!(s.total(), 5);
        assert!((s.rate_per_hour(0) - 720.0).abs() < 1e-9);
        assert_eq!(s.window(), SimDuration::from_secs(10));
    }

    #[test]
    fn iter_reports_window_starts() {
        let mut s = RateSeries::new(SimDuration::from_secs(60));
        s.record(SimTime::from_secs(70), 4);
        let points: Vec<(SimTime, u64)> = s.iter().collect();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0], (SimTime::ZERO, 0));
        assert_eq!(points[1], (SimTime::from_secs(60), 4));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = RateSeries::new(SimDuration::ZERO);
    }

    #[test]
    fn empty_series() {
        let s = RateSeries::new(SimDuration::from_secs(1));
        assert!(s.is_empty());
        assert_eq!(s.window_count(5), 0);
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn gauge_last_value_wins_and_carries_forward() {
        let mut g = GaugeSeries::new(SimDuration::from_secs(10));
        g.sample(SimTime::from_secs(1), 5.0);
        g.sample(SimTime::from_secs(9), 7.0); // same window, overwrites
        g.sample(SimTime::from_secs(25), 3.0);
        assert_eq!(g.window_value(0), Some(7.0));
        assert_eq!(g.window_value(1), Some(7.0), "carried forward");
        assert_eq!(g.window_value(2), Some(3.0));
        assert_eq!(g.window_value(50), Some(3.0), "carries past the end");
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn gauge_ignores_non_finite_and_handles_empty() {
        let mut g = GaugeSeries::new(SimDuration::from_secs(10));
        assert!(g.is_empty());
        assert_eq!(g.window_value(0), None);
        g.sample(SimTime::ZERO, f64::NAN);
        assert!(g.is_empty());
    }
}
