//! # hc-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate under every experiment in the
//! `human-computation` workspace. The systems surveyed by the target paper
//! ("Human Computation", DAC 2009) were deployed as live web services with
//! real players; reproducing their *behavioural* results does not require
//! HTTP plumbing, only a faithful model of **when** players arrive, **how
//! long** they stay, and **in what order** platform events fire. A
//! discrete-event simulation (DES) kernel provides exactly that, with two
//! properties a live deployment cannot offer:
//!
//! * **Determinism** — every run is a pure function of its seed, so every
//!   table and figure in `EXPERIMENTS.md` regenerates bit-identically.
//! * **Time compression** — months of simulated play complete in seconds,
//!   which is what makes lifetime-play (ALP) measurements tractable.
//!
//! ## Module map
//!
//! | Module | Contents |
//! |---|---|
//! | [`time`] | [`SimTime`]/[`SimDuration`] — microsecond-resolution virtual clock types |
//! | [`event`] | [`EventQueue`] — a stable priority queue of timestamped events |
//! | [`rng`] | [`RngFactory`] — deterministic derivation of independent RNG streams |
//! | [`dist`] | Distributions not in `rand` core: exponential, log-normal, Zipf, geometric, discrete |
//! | [`arrival`] | Poisson and diurnal arrival processes |
//! | [`stats`] | Online statistics: Welford mean/variance, histograms, percentiles, confidence intervals |
//! | [`queue`] | FIFO waiting queues with sojourn-time accounting |
//! | [`runner`] | [`Simulation`] — a minimal driver looping an [`EventQueue`] to completion |
//! | [`par`] | Deterministic work-stealing replication pool: same bytes at any `--threads` |
//! | [`shard`] | Deterministic sharded single-run engine: lock-stepped windows + message exchange, same bytes at any `--shards`/`--threads` |
//!
//! ## Example
//!
//! ```
//! use hc_sim::prelude::*;
//!
//! // Deterministic two-stream simulation: arrivals + a measurement.
//! let factory = RngFactory::new(42);
//! let mut rng = factory.stream("arrivals");
//! let arrivals = PoissonProcess::new(2.0); // 2 events per simulated second
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//!
//! let mut t = SimTime::ZERO;
//! for _ in 0..10 {
//!     t = arrivals.next_after(t, &mut rng);
//!     queue.push(t, "player-arrival");
//! }
//! let mut stats = OnlineStats::new();
//! let mut last = SimTime::ZERO;
//! while let Some((when, _ev)) = queue.pop() {
//!     stats.push((when - last).as_secs_f64());
//!     last = when;
//! }
//! // Inter-arrival mean is ~1/rate.
//! assert!(stats.mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod dist;
pub mod event;
pub mod par;
pub mod queue;
pub mod rng;
pub mod runner;
pub mod shard;
pub mod stats;
pub mod time;
pub mod timeseries;
pub mod wheel;

pub use arrival::{ArrivalProcess, DiurnalProcess, PoissonProcess};
pub use dist::{Bernoulli, DiscreteDist, Exponential, Geometric, LogNormal, UniformRange, Zipf};
pub use event::EventQueue;
pub use par::{run_replications, run_seeded_replications, ReplicationError};
pub use queue::FifoQueue;
pub use rng::{RngFactory, SimRng};
pub use runner::{Simulation, StepOutcome};
pub use shard::{
    Addr, Control, HubDecision, Mailbox, ShardConfig, ShardError, ShardRunStats, ShardWorkload,
    WindowInfo,
};
pub use stats::{ConfidenceInterval, Histogram, OnlineStats, SampleSet};
pub use time::{SimDuration, SimTime};
pub use timeseries::{GaugeSeries, RateSeries};
pub use wheel::WheelQueue;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::arrival::{ArrivalProcess, DiurnalProcess, PoissonProcess};
    pub use crate::dist::{
        Bernoulli, DiscreteDist, Exponential, Geometric, LogNormal, UniformRange, Zipf,
    };
    pub use crate::event::EventQueue;
    pub use crate::par::{run_replications, run_seeded_replications, ReplicationError};
    pub use crate::queue::FifoQueue;
    pub use crate::rng::{RngFactory, SimRng};
    pub use crate::runner::{Simulation, StepOutcome};
    pub use crate::shard::{
        Addr, Control, HubDecision, Mailbox, ShardConfig, ShardError, ShardRunStats, ShardWorkload,
        WindowInfo,
    };
    pub use crate::stats::{ConfidenceInterval, Histogram, OnlineStats, SampleSet};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::timeseries::{GaugeSeries, RateSeries};
    pub use crate::wheel::WheelQueue;
    pub use rand::Rng;
}
