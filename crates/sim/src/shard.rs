//! Deterministic sharded single-run engine.
//!
//! [`par`](crate::par) parallelizes *across* replications; this module
//! parallelizes *within* one run. A simulation is partitioned into `K`
//! **shards** (by convention keyed `entity_id % K`) plus one **hub**
//! that owns whatever state is semantically global (matchmaking pools,
//! verification, ledgers). Time advances in lock-stepped **windows** of
//! fixed [`SimDuration`]; within a window every shard steps
//! independently on a worker thread, and all cross-shard traffic flows
//! through a message **exchange** that delivers each window's inbox in
//! a canonical order — so the run is byte-identical at any
//! `--shards` × `--threads` combination.
//!
//! ## Determinism contract
//!
//! 1. A message is sent with an explicit `(at, key)`: `at` is its
//!    simulated timestamp, `key` a caller-chosen `u128` that must be
//!    **unique per (window, destination)** and derived only from
//!    simulation state (ids, times) — never from the shard layout.
//!    Inboxes are sorted by `(key, src, seq)`; because keys are unique,
//!    the `(src, seq)` tie-breaker never decides between messages that
//!    exist under a different shard count, which is exactly what makes
//!    the merge `K`-invariant (debug builds assert key uniqueness).
//! 2. Shard steps may depend only on their own state, the shared
//!    workload (`&self`), and their inbox. All RNG must come from
//!    per-entity [`RngFactory`](crate::rng::RngFactory) streams, never
//!    from per-shard streams.
//! 3. Messages emitted by a shard **to the hub** are delivered in the
//!    *same* window (the hub phase runs after the shard phase); all
//!    other routes deliver in `max(window_of(at), current + 1)`.
//!
//! ## Window cycle
//!
//! ```text
//! window w:  [shard phase: all active shards step in parallel]
//!            [exchange: merge shard→hub messages by (key, src, seq)]
//!            [hub phase: hub steps serially on the calling thread]
//!            [route hub + shard messages into future windows]
//! ```
//!
//! A shard is *active* in a window when its inbox is non-empty or its
//! reported wake time falls inside the window. The run ends when no
//! messages are pending and neither the shards nor the hub report a
//! wake time (or the hub returns [`Control::Stop`]).

use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Where a message is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Addr {
    /// The serial hub that runs after every shard phase.
    Hub,
    /// Shard `i` (0-based).
    Shard(usize),
}

/// One lock-stepped time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowInfo {
    /// Window index (`start = index * window_len`).
    pub index: u64,
    /// Inclusive start of the window.
    pub start: SimTime,
    /// Exclusive end of the window.
    pub end: SimTime,
}

impl WindowInfo {
    /// `true` when `t` falls inside this window (`start <= t < end`).
    #[must_use]
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// The last instant that still belongs to this window.
    #[must_use]
    pub fn last_tick(&self) -> SimTime {
        SimTime::from_ticks(self.end.ticks().saturating_sub(1))
    }
}

/// Source tag used in the exchange's merge order; the hub sorts after
/// every shard.
const SRC_HUB: u32 = u32::MAX;

/// First trace track used for per-shard `layout.` lanes (shard `s`
/// records on track `SHARD_TRACK_BASE + s`), high enough to clear the
/// replication tracks the parallel pool hands out.
pub const SHARD_TRACK_BASE: u32 = 1 << 16;

#[derive(Debug)]
struct Envelope<M> {
    to: Addr,
    at: SimTime,
    key: u128,
    src: u32,
    seq: u32,
    msg: M,
}

/// Outgoing messages of one step. The engine assigns delivery windows:
/// shard→hub lands in the current window, everything else in
/// `max(window_of(at), current + 1)`.
#[derive(Debug)]
pub struct Mailbox<M> {
    origin: u32,
    window: u64,
    window_ticks: u64,
    seq: u32,
    out: Vec<Envelope<M>>,
}

impl<M> Mailbox<M> {
    /// `capacity` is a pre-sizing hint only (typically derived from the
    /// step's inbox or the previous window's traffic) — capacity is
    /// never observable, so it cannot affect determinism.
    fn new(origin: u32, window: u64, window_ticks: u64, capacity: usize) -> Self {
        Mailbox {
            origin,
            window,
            window_ticks,
            seq: 0,
            out: Vec::with_capacity(capacity),
        }
    }

    /// Queues `msg` for `to`, timestamped `at`, merged under `key`.
    ///
    /// `key` must be unique per (delivery window, destination) and a
    /// pure function of simulation state — see the module-level
    /// determinism contract.
    pub fn send(&mut self, to: Addr, at: SimTime, key: u128, msg: M) {
        self.out.push(Envelope {
            to,
            at,
            key,
            src: self.origin,
            seq: self.seq,
            msg,
        });
        self.seq += 1;
    }

    /// Number of messages queued so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// `true` when nothing has been queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Consumes the mailbox, tagging every envelope with its delivery
    /// window: shard→hub stays in the sending window, all other routes
    /// land in `max(window_of(at), sending_window + 1)`.
    fn into_routed(self) -> Vec<(u64, Envelope<M>)> {
        let Mailbox {
            origin,
            window,
            window_ticks,
            out,
            ..
        } = self;
        out.into_iter()
            .map(|env| {
                let dw = if origin != SRC_HUB && env.to == Addr::Hub {
                    window
                } else {
                    (env.at.ticks() / window_ticks).max(window + 1)
                };
                (dw, env)
            })
            .collect()
    }
}

/// Whether the hub wants the run to continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep processing windows while work remains.
    Continue,
    /// Stop immediately after this window (pending messages are dropped).
    Stop,
}

/// What the hub reports at the end of its phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HubDecision {
    /// Continue or stop the run.
    pub control: Control,
    /// Earliest time the hub wants a window even without messages
    /// (e.g. a pending timeout sweep). `None` when the hub is idle.
    pub next_wake: Option<SimTime>,
}

impl HubDecision {
    /// Continue, waking at `next_wake` if no messages arrive earlier.
    #[must_use]
    pub fn running(next_wake: Option<SimTime>) -> Self {
        HubDecision {
            control: Control::Continue,
            next_wake,
        }
    }

    /// Stop the run after this window.
    #[must_use]
    pub fn stop() -> Self {
        HubDecision {
            control: Control::Stop,
            next_wake: None,
        }
    }
}

/// A sharded simulation: `K` shard states stepped in parallel plus a
/// serial hub, exchanging messages of one type.
pub trait ShardWorkload {
    /// Per-shard state; moved across worker threads between windows.
    type Shard: Send;
    /// The cross-shard message type.
    type Msg: Send;

    /// Steps shard `shard` through `win`, consuming its inbox (already
    /// in canonical `(key, src, seq)` order). Returns the shard's next
    /// wake time, or `None` when it has no scheduled work left.
    fn shard_step(
        &self,
        shard: usize,
        state: &mut Self::Shard,
        win: &WindowInfo,
        inbox: Vec<(SimTime, Self::Msg)>,
        mail: &mut Mailbox<Self::Msg>,
    ) -> Option<SimTime>;

    /// Steps the hub through `win` after all shards, consuming the
    /// merged shard→hub inbox (canonical order).
    fn hub_step(
        &mut self,
        win: &WindowInfo,
        inbox: Vec<(SimTime, Self::Msg)>,
        mail: &mut Mailbox<Self::Msg>,
    ) -> HubDecision;
}

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Worker threads for the shard phase (`<= 1` runs inline).
    pub threads: usize,
    /// Window length; every shard sees the same lock-stepped grid.
    pub window: SimDuration,
    /// Safety cap on processed windows (a stuck workload errors out
    /// instead of spinning forever).
    pub max_windows: u64,
}

impl ShardConfig {
    /// A config with the given thread count and window length and no
    /// practical window cap.
    #[must_use]
    pub fn new(threads: usize, window: SimDuration) -> Self {
        ShardConfig {
            threads,
            window,
            max_windows: u64::MAX,
        }
    }
}

/// Deterministic facts about a finished run. Useful for assertions;
/// `shard_steps` depends on the shard count (not on threads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardRunStats {
    /// Windows processed.
    pub windows: u64,
    /// Total shard steps across all windows.
    pub shard_steps: u64,
    /// Total messages routed through the exchange.
    pub messages: u64,
}

/// Why a sharded run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A shard step panicked; `shard` is the lowest panicking shard
    /// index of the window, matching what a serial run would hit first.
    Panicked {
        /// Shard whose step panicked.
        shard: usize,
        /// Rendered panic payload.
        message: String,
    },
    /// The worker pool itself failed (a thread died outside a step).
    Pool {
        /// Description of the pool failure.
        message: String,
    },
    /// The engine was misconfigured (zero-length window, no shards).
    Config {
        /// What was wrong.
        message: String,
    },
    /// `max_windows` was reached before the workload quiesced.
    WindowCap {
        /// Windows processed before giving up.
        windows: u64,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Panicked { shard, message } => {
                write!(f, "shard {shard} panicked: {message}")
            }
            ShardError::Pool { message } => write!(f, "shard pool: {message}"),
            ShardError::Config { message } => write!(f, "shard config: {message}"),
            ShardError::WindowCap { windows } => {
                write!(f, "window cap reached after {windows} windows")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Renders a caught panic payload as a human-readable string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Sorts an inbox into canonical `(key, src, seq)` order and
/// (debug builds) asserts the key-uniqueness contract.
fn canonicalize<M>(inbox: &mut [Envelope<M>]) {
    inbox.sort_by_key(|e| (e.key, e.src, e.seq));
    debug_assert!(
        inbox.windows(2).all(|w| w[0].key != w[1].key),
        "duplicate exchange key within one (window, destination); \
         keys must be unique for the merge to be shard-count-invariant"
    );
}

type StepOutput<M> = (Mailbox<M>, Option<SimTime>);
/// A stepped shard's index paired with its outcome (or panic message).
type StepResults<M> = Vec<(usize, Result<StepOutput<M>, String>)>;
/// One active shard awaiting its step: `(index, state, inbox)`.
type ActiveShard<'a, W> = (
    usize,
    &'a mut <W as ShardWorkload>::Shard,
    Vec<(SimTime, <W as ShardWorkload>::Msg)>,
);

/// Runs one shard step under `catch_unwind`, mirroring the replication
/// pool's panic containment.
fn guarded_step<W: ShardWorkload>(
    workload: &W,
    shard: usize,
    state: &mut W::Shard,
    win: &WindowInfo,
    inbox: Vec<(SimTime, W::Msg)>,
    window_ticks: u64,
) -> Result<StepOutput<W::Msg>, String> {
    #[allow(clippy::cast_possible_truncation)] // shard counts are small
    // Steps mostly answer their inbox one-for-one (plus a bounded fan
    // of returns), so twice the inbox is a good steady-state fit.
    let mut mail = Mailbox::new(shard as u32, win.index, window_ticks, inbox.len() * 2);
    catch_unwind(AssertUnwindSafe(|| {
        workload.shard_step(shard, state, win, inbox, &mut mail)
    }))
    .map(|wake| (mail, wake))
    .map_err(|p| panic_message(p.as_ref()))
}

/// Runs `workload` over `shards` to quiescence.
///
/// Shard states are stepped in parallel (up to `cfg.threads` workers,
/// statically assigned round-robin) and the hub runs serially on the
/// calling thread — so hub state needs no `Send`/`Sync` and the hub
/// may freely talk to thread-local observability.
///
/// # Errors
///
/// [`ShardError::Panicked`] when a shard step panics (lowest shard
/// index of the window wins, so the error is deterministic),
/// [`ShardError::Pool`] on worker-pool failure, [`ShardError::Config`]
/// for invalid configs, and [`ShardError::WindowCap`] when
/// `cfg.max_windows` is exhausted.
pub fn run<W>(
    cfg: &ShardConfig,
    workload: &mut W,
    shards: &mut [W::Shard],
) -> Result<ShardRunStats, ShardError>
where
    W: ShardWorkload + Sync,
{
    if shards.is_empty() {
        return Err(ShardError::Config {
            message: "at least one shard is required".to_string(),
        });
    }
    if cfg.window.ticks() == 0 {
        return Err(ShardError::Config {
            message: "window length must be positive".to_string(),
        });
    }
    let window_ticks = cfg.window.ticks();
    let window_of = |t: SimTime| t.ticks() / window_ticks;
    let k = shards.len();

    // Tracing is observed-never-consulted: everything below that touches
    // hc-obs is emission-only and guarded on `traced`, so untraced runs
    // take the exact same path as before. All emission happens on the
    // calling thread (worker threads carry no collector), which keeps
    // the recorded trace byte-identical at any `cfg.threads`. Records
    // under the `layout.` prefix (per-shard lanes, the skew gauge) are
    // the only shard-count-dependent ones; derived-metrics summaries
    // exclude that prefix so they stay byte-identical across layouts.
    let traced = hc_obs::active();
    let run_scope = traced.then(|| {
        #[allow(clippy::cast_possible_truncation)] // shard counts are small
        for s in 0..k {
            hc_obs::name_track(SHARD_TRACK_BASE + s as u32, &format!("shard-{s}"));
        }
        hc_obs::enter("sim.shard", "run", 0)
    });

    let mut pending: BTreeMap<u64, Vec<Envelope<W::Msg>>> = BTreeMap::new();
    // Every shard and the hub get an initial step in window 0 so they
    // can seed their calendars before any messages exist.
    let mut wakes: Vec<Option<SimTime>> = vec![Some(SimTime::ZERO); k];
    let mut hub_wake: Option<SimTime> = Some(SimTime::ZERO);
    let mut last_window: Option<u64> = None;
    let mut stats = ShardRunStats::default();

    loop {
        // Next interesting window: earliest pending message or wake,
        // never re-running a processed window.
        let floor = last_window.map_or(0, |w| w + 1);
        let mut next: Option<u64> = pending.keys().next().copied();
        for wake in wakes.iter().chain(std::iter::once(&hub_wake)).flatten() {
            let cand = window_of(*wake).max(floor);
            next = Some(next.map_or(cand, |n| n.min(cand)));
        }
        let Some(wi) = next else { break };
        if stats.windows >= cfg.max_windows {
            return Err(ShardError::WindowCap {
                windows: stats.windows,
            });
        }
        last_window = Some(wi);
        stats.windows += 1;
        let win = WindowInfo {
            index: wi,
            start: SimTime::from_ticks(wi * window_ticks),
            end: SimTime::from_ticks((wi + 1) * window_ticks),
        };
        let win_scope = traced.then(|| hc_obs::enter("sim.shard", "window", win.start.ticks()));
        // Per-window exchange accounting, emitted at window close.
        let mut exchange_sent = 0u64;
        let mut exchange_deferred = 0u64;
        // Deterministic per-shard work units (inbox + emitted mail) for
        // the `layout.` lanes and skew gauge; never wall-clock (D1).
        let mut work: Vec<u64> = if traced { vec![0; k] } else { Vec::new() };
        let mut stepped: Vec<usize> = Vec::new();

        // Partition this window's messages by destination.
        let arrivals = pending.remove(&wi).unwrap_or_default();
        let delivered = arrivals.len() as u64;
        let mut shard_in: Vec<Vec<Envelope<W::Msg>>> = (0..k).map(|_| Vec::new()).collect();
        let mut hub_in: Vec<Envelope<W::Msg>> = Vec::new();
        for env in arrivals {
            match env.to {
                Addr::Shard(s) => shard_in[s].push(env),
                Addr::Hub => hub_in.push(env),
            }
        }

        // Shard phase: step every active shard.
        let mut outputs: StepResults<W::Msg> = Vec::new();
        {
            let workload_ref: &W = workload;
            let mut active: Vec<ActiveShard<'_, W>> = Vec::new();
            for (s, (state, inbox)) in shards.iter_mut().zip(shard_in.iter_mut()).enumerate() {
                let due = wakes[s].is_some_and(|t| t < win.end);
                if inbox.is_empty() && !due {
                    continue;
                }
                canonicalize(inbox);
                if traced {
                    work[s] = inbox.len() as u64;
                    stepped.push(s);
                }
                let inbox = std::mem::take(inbox)
                    .into_iter()
                    .map(|e| (e.at, e.msg))
                    .collect();
                active.push((s, state, inbox));
            }
            stats.shard_steps += active.len() as u64;
            let threads = cfg.threads.clamp(1, active.len().max(1));
            if threads <= 1 {
                for (s, state, inbox) in active {
                    let out = guarded_step(workload_ref, s, state, &win, inbox, window_ticks);
                    outputs.push((s, out));
                }
            } else {
                // Static round-robin buckets; bucket t owns every
                // active shard at position ≡ t (mod threads).
                let mut buckets: Vec<Vec<ActiveShard<'_, W>>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for (pos, item) in active.into_iter().enumerate() {
                    buckets[pos % threads].push(item);
                }
                let scope_result = crossbeam::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for bucket in buckets {
                        handles.push(scope.spawn(move |_| {
                            bucket
                                .into_iter()
                                .map(|(s, state, inbox)| {
                                    let out = guarded_step(
                                        workload_ref,
                                        s,
                                        state,
                                        &win,
                                        inbox,
                                        window_ticks,
                                    );
                                    (s, out)
                                })
                                .collect::<Vec<_>>()
                        }));
                    }
                    let mut per_worker = Vec::new();
                    for handle in handles {
                        per_worker.push(handle.join());
                    }
                    per_worker
                });
                let per_worker = match scope_result {
                    Ok(v) => v,
                    Err(_) => {
                        return Err(ShardError::Pool {
                            message: "worker scope panicked".to_string(),
                        })
                    }
                };
                for worker_result in per_worker {
                    match worker_result {
                        Ok(mut outs) => outputs.append(&mut outs),
                        Err(payload) => {
                            return Err(ShardError::Pool {
                                message: format!(
                                    "a worker thread died outside a step: {}",
                                    panic_message(payload.as_ref())
                                ),
                            })
                        }
                    }
                }
            }
        }

        // Surface the lowest panicking shard (deterministic), then
        // route every emitted message.
        outputs.sort_by_key(|(s, _)| *s);
        for (s, out) in outputs {
            match out {
                Err(message) => return Err(ShardError::Panicked { shard: s, message }),
                Ok((mail, wake)) => {
                    wakes[s] = wake;
                    let sent = mail.len() as u64;
                    stats.messages += sent;
                    if traced {
                        work[s] += sent;
                        exchange_sent += sent;
                    }
                    for (dw, env) in mail.into_routed() {
                        if traced && dw > wi {
                            exchange_deferred += 1;
                            #[allow(clippy::cast_precision_loss)] // diagnostics only
                            hc_obs::observe(
                                "shard.exchange.wait_us",
                                win.end.ticks(),
                                (dw * window_ticks).saturating_sub(env.at.ticks()) as f64,
                            );
                        }
                        if dw == wi && env.to == Addr::Hub {
                            hub_in.push(env);
                        } else {
                            pending.entry(dw).or_default().push(env);
                        }
                    }
                }
            }
        }

        // Hub phase (serial, calling thread).
        canonicalize(&mut hub_in);
        let hub_inbox: Vec<(SimTime, W::Msg)> = hub_in.into_iter().map(|e| (e.at, e.msg)).collect();
        let mut hub_mail = Mailbox::new(SRC_HUB, wi, window_ticks, hub_inbox.len());
        let decision = workload.hub_step(&win, hub_inbox, &mut hub_mail);
        let hub_sent = hub_mail.len() as u64;
        stats.messages += hub_sent;
        if traced {
            exchange_sent += hub_sent;
        }
        for (dw, env) in hub_mail.into_routed() {
            if traced && dw > wi {
                exchange_deferred += 1;
                #[allow(clippy::cast_precision_loss)] // diagnostics only
                hc_obs::observe(
                    "shard.exchange.wait_us",
                    win.end.ticks(),
                    (dw * window_ticks).saturating_sub(env.at.ticks()) as f64,
                );
            }
            pending.entry(dw).or_default().push(env);
        }

        if let Some(scope) = win_scope {
            // Per-shard lanes and the skew gauge are the shard-layout-
            // dependent view; the `layout.` prefix keeps them out of
            // derived-metrics summaries (they stay layout-invariant).
            #[allow(clippy::cast_possible_truncation)] // shard counts are small
            for &s in &stepped {
                hc_obs::span_on_track(
                    SHARD_TRACK_BASE + s as u32,
                    "layout.shard",
                    "window",
                    win.start.ticks(),
                    win.end.ticks(),
                    &[
                        ("shard", (s as u64).into()),
                        ("window", wi.into()),
                        ("work", work[s].into()),
                    ],
                );
            }
            let total_work: u64 = stepped.iter().map(|&s| work[s]).sum();
            if total_work > 0 {
                let max_work = stepped.iter().map(|&s| work[s]).max().unwrap_or(0);
                #[allow(clippy::cast_precision_loss)] // diagnostics only
                let skew = max_work as f64 * stepped.len() as f64 / total_work as f64;
                hc_obs::gauge("layout.shard.skew", win.end.ticks(), skew);
            }
            if exchange_sent > 0 {
                hc_obs::counter("shard.exchange.sent", win.end.ticks(), exchange_sent);
            }
            if exchange_deferred > 0 {
                hc_obs::counter(
                    "shard.exchange.deferred",
                    win.end.ticks(),
                    exchange_deferred,
                );
            }
            scope.exit(
                win.end.ticks(),
                &[
                    ("window", wi.into()),
                    ("delivered", delivered.into()),
                    ("stepped", (stepped.len() as u64).into()),
                ],
            );
        }

        hub_wake = decision.next_wake;
        if decision.control == Control::Stop {
            break;
        }
    }

    if let Some(scope) = run_scope {
        scope.close(&[
            ("windows", stats.windows.into()),
            ("steps", stats.shard_steps.into()),
            ("messages", stats.messages.into()),
        ]);
    }
    if hc_obs::active() {
        #[allow(clippy::cast_precision_loss)] // diagnostics only
        {
            hc_obs::machine_stat("shard.windows", stats.windows as f64);
            hc_obs::machine_stat("shard.steps", stats.shard_steps as f64);
            hc_obs::machine_stat("shard.messages", stats.messages as f64);
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy workload: each shard owns counters for entities
    /// `id % K == shard`; the hub redistributes "tokens" so every
    /// message crosses the exchange. Entity `i` starts with `i % 7 + 1`
    /// tokens; each window an entity holding tokens sends one to the
    /// hub, which forwards it to entity `(i * 31 + 17) % n`.
    struct Toy {
        n: u64,
        horizon: u64,
        received: Vec<u64>,
        forwarded: u64,
    }

    #[derive(Debug)]
    enum ToyMsg {
        ToHub { from: u64 },
        Grant { to: u64 },
    }

    struct ToyShard {
        ids: Vec<u64>,
        tokens: BTreeMap<u64, u64>,
    }

    impl ShardWorkload for Toy {
        type Shard = ToyShard;
        type Msg = ToyMsg;

        fn shard_step(
            &self,
            _shard: usize,
            state: &mut ToyShard,
            win: &WindowInfo,
            inbox: Vec<(SimTime, ToyMsg)>,
            mail: &mut Mailbox<ToyMsg>,
        ) -> Option<SimTime> {
            for (_, msg) in inbox {
                if let ToyMsg::Grant { to } = msg {
                    *state.tokens.entry(to).or_insert(0) += 1;
                }
            }
            if win.index < self.horizon {
                for &id in &state.ids {
                    if state.tokens.get(&id).copied().unwrap_or(0) > 0 {
                        *state.tokens.get_mut(&id).expect("present") -= 1;
                        mail.send(
                            Addr::Hub,
                            win.start,
                            u128::from(id),
                            ToyMsg::ToHub { from: id },
                        );
                    }
                }
            }
            (win.index + 1 < self.horizon).then_some(win.end)
        }

        fn hub_step(
            &mut self,
            win: &WindowInfo,
            inbox: Vec<(SimTime, ToyMsg)>,
            mail: &mut Mailbox<ToyMsg>,
        ) -> HubDecision {
            let k = self.received.len() as u64; // shard count via closure state
            for (at, msg) in inbox {
                if let ToyMsg::ToHub { from } = msg {
                    let to = (from * 31 + 17) % self.n;
                    self.received[(from % k) as usize] += 1;
                    self.forwarded += 1;
                    // Key carries (to, from): two sources may target the
                    // same entity in one window, and keys must be unique.
                    mail.send(
                        Addr::Shard((to % k) as usize),
                        at,
                        (u128::from(to) << 64) | u128::from(from),
                        ToyMsg::Grant { to },
                    );
                }
            }
            HubDecision::running((win.index + 1 < self.horizon).then_some(win.end))
        }
    }

    fn run_toy(n: u64, k: usize, threads: usize, horizon: u64) -> (Vec<u64>, u64, ShardRunStats) {
        let mut shards: Vec<ToyShard> = (0..k)
            .map(|s| {
                let ids: Vec<u64> = (0..n).filter(|i| (*i as usize) % k == s).collect();
                let tokens = ids.iter().map(|&i| (i, i % 7 + 1)).collect();
                ToyShard { ids, tokens }
            })
            .collect();
        let mut toy = Toy {
            n,
            horizon,
            received: vec![0; k],
            forwarded: 0,
        };
        let cfg = ShardConfig::new(threads, SimDuration::from_secs(10));
        let stats = run(&cfg, &mut toy, &mut shards).expect("toy runs");
        (toy.received, toy.forwarded, stats)
    }

    #[test]
    fn toy_total_is_shard_and_thread_invariant() {
        let (_, baseline, _) = run_toy(64, 1, 1, 12);
        assert!(baseline > 0);
        for k in [2, 3, 5] {
            for threads in [1, 2, 4] {
                let (_, forwarded, _) = run_toy(64, k, threads, 12);
                assert_eq!(forwarded, baseline, "k={k} threads={threads}");
            }
        }
    }

    #[test]
    fn stats_count_windows_and_steps() {
        // `horizon` sending windows plus one drain window for the last
        // grants the hub forwarded.
        let (_, _, stats) = run_toy(16, 2, 1, 5);
        assert_eq!(stats.windows, 6);
        assert!(stats.shard_steps >= 2);
        assert!(stats.messages > 0);
    }

    #[test]
    fn empty_shards_is_a_config_error() {
        struct Nop;
        impl ShardWorkload for Nop {
            type Shard = ();
            type Msg = ();
            fn shard_step(
                &self,
                _: usize,
                (): &mut (),
                _: &WindowInfo,
                _: Vec<(SimTime, ())>,
                _: &mut Mailbox<()>,
            ) -> Option<SimTime> {
                None
            }
            fn hub_step(
                &mut self,
                _: &WindowInfo,
                _: Vec<(SimTime, ())>,
                _: &mut Mailbox<()>,
            ) -> HubDecision {
                HubDecision::stop()
            }
        }
        let err = run(
            &ShardConfig::new(1, SimDuration::from_secs(1)),
            &mut Nop,
            &mut [],
        )
        .expect_err("no shards");
        assert!(matches!(err, ShardError::Config { .. }));
    }

    #[test]
    fn window_cap_errors_instead_of_spinning() {
        struct Spin;
        impl ShardWorkload for Spin {
            type Shard = ();
            type Msg = ();
            fn shard_step(
                &self,
                _: usize,
                (): &mut (),
                win: &WindowInfo,
                _: Vec<(SimTime, ())>,
                _: &mut Mailbox<()>,
            ) -> Option<SimTime> {
                Some(win.end)
            }
            fn hub_step(
                &mut self,
                _: &WindowInfo,
                _: Vec<(SimTime, ())>,
                _: &mut Mailbox<()>,
            ) -> HubDecision {
                HubDecision::running(None)
            }
        }
        let mut cfg = ShardConfig::new(1, SimDuration::from_secs(1));
        cfg.max_windows = 10;
        let err = run(&cfg, &mut Spin, &mut [()]).expect_err("spins");
        assert_eq!(err, ShardError::WindowCap { windows: 10 });
    }

    #[test]
    fn hub_stop_ends_the_run() {
        struct Stopper {
            windows_seen: u64,
        }
        impl ShardWorkload for Stopper {
            type Shard = ();
            type Msg = ();
            fn shard_step(
                &self,
                _: usize,
                (): &mut (),
                win: &WindowInfo,
                _: Vec<(SimTime, ())>,
                _: &mut Mailbox<()>,
            ) -> Option<SimTime> {
                Some(win.end)
            }
            fn hub_step(
                &mut self,
                win: &WindowInfo,
                _: Vec<(SimTime, ())>,
                _: &mut Mailbox<()>,
            ) -> HubDecision {
                self.windows_seen += 1;
                if win.index >= 3 {
                    HubDecision::stop()
                } else {
                    HubDecision::running(None)
                }
            }
        }
        let mut w = Stopper { windows_seen: 0 };
        let stats = run(
            &ShardConfig::new(1, SimDuration::from_secs(1)),
            &mut w,
            &mut [()],
        )
        .expect("runs");
        assert_eq!(w.windows_seen, 4);
        assert_eq!(stats.windows, 4);
    }

    #[test]
    fn a_panicking_shard_surfaces_deterministically() {
        struct Boom;
        impl ShardWorkload for Boom {
            type Shard = usize;
            type Msg = ();
            fn shard_step(
                &self,
                shard: usize,
                _: &mut usize,
                _: &WindowInfo,
                _: Vec<(SimTime, ())>,
                _: &mut Mailbox<()>,
            ) -> Option<SimTime> {
                if shard >= 1 {
                    panic!("shard {shard} exploded");
                }
                None
            }
            fn hub_step(
                &mut self,
                _: &WindowInfo,
                _: Vec<(SimTime, ())>,
                _: &mut Mailbox<()>,
            ) -> HubDecision {
                HubDecision::running(None)
            }
        }
        for threads in [1, 4] {
            let err = run(
                &ShardConfig::new(threads, SimDuration::from_secs(1)),
                &mut Boom,
                &mut [0, 1, 2, 3],
            )
            .expect_err("panics");
            match err {
                ShardError::Panicked { shard, message } => {
                    assert_eq!(shard, 1, "threads={threads}");
                    assert!(message.contains("exploded"), "message: {message}");
                }
                other => panic!("wrong variant: {other}"),
            }
        }
    }

    #[test]
    fn skips_empty_windows() {
        // One message far in the future: the engine must jump there
        // rather than grinding through every window in between.
        struct Jump;
        #[derive(Debug)]
        struct Ping;
        impl ShardWorkload for Jump {
            type Shard = bool;
            type Msg = Ping;
            fn shard_step(
                &self,
                _: usize,
                sent: &mut bool,
                win: &WindowInfo,
                inbox: Vec<(SimTime, Ping)>,
                mail: &mut Mailbox<Ping>,
            ) -> Option<SimTime> {
                if !*sent {
                    *sent = true;
                    mail.send(
                        Addr::Shard(0),
                        win.start + SimDuration::from_secs(100_000),
                        1,
                        Ping,
                    );
                }
                let _ = inbox;
                None
            }
            fn hub_step(
                &mut self,
                _: &WindowInfo,
                _: Vec<(SimTime, Ping)>,
                _: &mut Mailbox<Ping>,
            ) -> HubDecision {
                HubDecision::running(None)
            }
        }
        let stats = run(
            &ShardConfig::new(1, SimDuration::from_secs(1)),
            &mut Jump,
            &mut [false],
        )
        .expect("runs");
        assert_eq!(stats.windows, 2, "must jump over ~100k empty windows");
    }

    #[test]
    fn error_renders() {
        assert_eq!(
            ShardError::Panicked {
                shard: 2,
                message: "kaput".to_string()
            }
            .to_string(),
            "shard 2 panicked: kaput"
        );
        assert_eq!(
            ShardError::WindowCap { windows: 9 }.to_string(),
            "window cap reached after 9 windows"
        );
    }
}
