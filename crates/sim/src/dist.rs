//! Sampling distributions used across the workspace.
//!
//! Only `rand`'s core uniform machinery is assumed; everything else
//! (exponential, log-normal, geometric, Zipf, arbitrary discrete) is
//! implemented here so the workspace avoids an extra `rand_distr`
//! dependency (see DESIGN.md's dependency policy). Each distribution is a
//! small, `Copy`-or-cheaply-`Clone` value with a `sample(&mut impl Rng)`
//! method and validated constructor.
//!
//! Where these are used:
//!
//! * [`Exponential`] — inter-arrival times of players (Poisson processes).
//! * [`LogNormal`] — session lengths and lifetime play (heavy-tailed
//!   engagement, the empirical shape behind ALP).
//! * [`Zipf`] — word/tag frequency in player vocabularies, the standard
//!   model for label popularity in the ESP Game's folksonomy.
//! * [`Geometric`] — number of rounds until a player quits, retry counts.
//! * [`DiscreteDist`] — ground-truth label distributions of synthetic
//!   stimuli.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError {
    what: &'static str,
}

impl ParamError {
    fn new(what: &'static str) -> Self {
        ParamError { what }
    }
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

/// A closed–open uniform range `[lo, hi)` over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// Creates the range `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the bounds are non-finite or `lo >= hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, ParamError> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(ParamError::new("uniform range requires finite lo < hi"));
        }
        Ok(UniformRange { lo, hi })
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }
}

/// A Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a trial with success probability `p`, clamping to `[0, 1]`
    /// (non-finite `p` clamps to 0).
    #[must_use]
    pub fn new(p: f64) -> Self {
        let p = if p.is_finite() {
            p.clamp(0.0, 1.0)
        } else {
            0.0
        };
        Bernoulli { p }
    }

    /// The success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws one trial.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if self.p >= 1.0 {
            true
        } else if self.p <= 0.0 {
            false
        } else {
            rng.gen::<f64>() < self.p
        }
    }
}

/// An exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `rate` is not finite and positive.
    pub fn new(rate: f64) -> Result<Self, ParamError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(ParamError::new("exponential rate must be finite and > 0"));
        }
        Ok(Exponential { rate })
    }

    /// The rate parameter λ.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The mean `1/λ`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws one sample via inverse-CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // gen::<f64>() is in [0, 1); use 1-u to avoid ln(0).
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.rate
    }
}

/// A log-normal distribution: `exp(N(mu, sigma^2))`.
///
/// Session lengths and player lifetimes are strongly right-skewed; the
/// log-normal is the conventional fit and drives the ALP (average lifetime
/// play) measurements of experiment T1/F6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with the given log-space mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `mu` is non-finite or `sigma` is not finite
    /// and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(ParamError::new(
                "log-normal requires finite mu and sigma >= 0",
            ));
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Creates a log-normal from the *linear-space* mean and median:
    /// `median = exp(mu)` and `mean = exp(mu + sigma^2 / 2)`. Convenient for
    /// calibrating engagement models from published aggregate numbers.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `0 < median <= mean`.
    pub fn from_mean_median(mean: f64, median: f64) -> Result<Self, ParamError> {
        if !(mean.is_finite() && median.is_finite()) || median <= 0.0 || mean < median {
            return Err(ParamError::new(
                "log-normal calibration requires 0 < median <= mean",
            ));
        }
        let mu = median.ln();
        let sigma = (2.0 * (mean / median).ln()).max(0.0).sqrt();
        Ok(LogNormal { mu, sigma })
    }

    /// The linear-space mean `exp(mu + sigma^2/2)`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// The linear-space median `exp(mu)`.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Draws one sample (Box–Muller on the underlying normal).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Draws one standard-normal variate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        return r * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// A geometric distribution on `{1, 2, 3, ...}`: number of Bernoulli(`p`)
/// trials up to and including the first success.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric with success probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `0 < p <= 1`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !p.is_finite() || p <= 0.0 || p > 1.0 {
            return Err(ParamError::new("geometric requires 0 < p <= 1"));
        }
        Ok(Geometric { p })
    }

    /// The mean `1/p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// Draws one sample via inverse-CDF (capped at `u64::MAX`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        let u: f64 = rng.gen();
        // ceil(ln(1-u) / ln(1-p)); 1-u in (0,1].
        let k = ((1.0 - u).ln() / (1.0 - self.p).ln()).ceil();
        if k < 1.0 {
            1
        } else if k >= u64::MAX as f64 {
            u64::MAX
        } else {
            k as u64
        }
    }
}

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k+1)^s`.
///
/// Sampling is by binary search over a precomputed CDF — O(log n) per draw
/// and exact, which matters because player vocabularies are sampled billions
/// of times across a campaign sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipf over `n` ranks with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `n == 0` or `s` is not finite and
    /// non-negative (`s = 0` degenerates to uniform).
    pub fn new(n: usize, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::new("zipf requires n >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ParamError::new("zipf exponent must be finite and >= 0"));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding leaving the last entry below 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf { cdf, exponent: s })
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when there is a single rank (degenerate distribution).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false // constructor guarantees n >= 1
    }

    /// The exponent `s`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of a given rank, or 0 outside the support.
    #[must_use]
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        let hi = self.cdf[rank];
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] }; // hc-analyze: allow(P1): rank == 0 guard on this line bounds the subtraction
        hi - lo
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// An arbitrary discrete distribution over indices `0..n`, built from
/// non-negative weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteDist {
    cdf: Vec<f64>,
}

impl DiscreteDist {
    /// Creates a distribution proportional to `weights`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `weights` is empty, contains a negative or
    /// non-finite entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError::new("discrete distribution needs >= 1 weight"));
        }
        let mut acc = 0.0;
        let mut cdf = Vec::with_capacity(weights.len());
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(ParamError::new("weights must be finite and >= 0"));
            }
            acc += w;
            cdf.push(acc);
        }
        if acc <= 0.0 {
            return Err(ParamError::new("weights must not all be zero"));
        }
        for c in &mut cdf {
            *c /= acc;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(DiscreteDist { cdf })
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if there are no outcomes (never: constructor rejects empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of outcome `i`, or 0 outside the support.
    #[must_use]
    pub fn pmf(&self, i: usize) -> f64 {
        if i >= self.cdf.len() {
            return 0.0;
        }
        let hi = self.cdf[i];
        let lo = if i == 0 { 0.0 } else { self.cdf[i - 1] }; // hc-analyze: allow(P1): i == 0 guard on this line bounds the subtraction
        hi - lo
    }

    /// Draws one outcome index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xD15C)
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(UniformRange::new(1.0, 1.0).is_err());
        assert!(UniformRange::new(f64::NAN, 2.0).is_err());
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::new(0.0, -0.1).is_err());
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(DiscreteDist::new(&[]).is_err());
        assert!(DiscreteDist::new(&[0.0, 0.0]).is_err());
        assert!(DiscreteDist::new(&[1.0, -0.5]).is_err());
    }

    #[test]
    fn bernoulli_extremes_are_exact() {
        let mut r = rng();
        assert!(Bernoulli::new(1.0).sample(&mut r));
        assert!(!Bernoulli::new(0.0).sample(&mut r));
        assert_eq!(Bernoulli::new(2.0).p(), 1.0);
        assert_eq!(Bernoulli::new(f64::NAN).p(), 0.0);
    }

    #[test]
    fn bernoulli_mean_close_to_p() {
        let mut r = rng();
        let b = Bernoulli::new(0.3);
        let hits = (0..20_000).filter(|_| b.sample(&mut r)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = rng();
        let e = Exponential::new(2.0).unwrap();
        let mean: f64 = (0..50_000).map(|_| e.sample(&mut r)).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
        assert_eq!(e.mean(), 0.5);
    }

    #[test]
    fn lognormal_calibration_recovers_moments() {
        let ln = LogNormal::from_mean_median(91.0, 40.0).unwrap();
        assert!((ln.mean() - 91.0).abs() < 1e-9);
        assert!((ln.median() - 40.0).abs() < 1e-9);

        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| ln.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 91.0).abs() / 91.0 < 0.05, "sampled mean={mean}");
    }

    #[test]
    fn lognormal_rejects_mean_below_median() {
        assert!(LogNormal::from_mean_median(10.0, 20.0).is_err());
        assert!(LogNormal::from_mean_median(10.0, 0.0).is_err());
    }

    #[test]
    fn geometric_mean_matches() {
        let mut r = rng();
        let g = Geometric::new(0.25).unwrap();
        let mean: f64 = (0..50_000).map(|_| g.sample(&mut r) as f64).sum::<f64>() / 50_000.0;
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
        assert_eq!(Geometric::new(1.0).unwrap().sample(&mut r), 1);
    }

    #[test]
    fn geometric_support_starts_at_one() {
        let mut r = rng();
        let g = Geometric::new(0.9).unwrap();
        assert!((0..10_000).all(|_| g.sample(&mut r) >= 1));
    }

    #[test]
    fn zipf_pmf_is_normalized_and_monotone() {
        let z = Zipf::new(100, 1.07).unwrap();
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..100 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12, "pmf not monotone at {k}");
        }
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let mut r = rng();
        let z = Zipf::new(1000, 1.2).unwrap();
        let n = 50_000;
        let zero_hits = (0..n).filter(|_| z.sample(&mut r) == 0).count();
        let freq = zero_hits as f64 / n as f64;
        assert!(
            (freq - z.pmf(0)).abs() < 0.01,
            "freq={freq} pmf0={}",
            z.pmf(0)
        );
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn discrete_dist_matches_weights() {
        let d = DiscreteDist::new(&[1.0, 3.0, 0.0, 4.0]).unwrap();
        assert!((d.pmf(0) - 0.125).abs() < 1e-12);
        assert!((d.pmf(1) - 0.375).abs() < 1e-12);
        assert_eq!(d.pmf(2), 0.0);
        assert!((d.pmf(3) - 0.5).abs() < 1e-12);

        let mut r = rng();
        let n = 40_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[d.sample(&mut r)] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight outcome must never be drawn");
        assert!((counts[3] as f64 / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn uniform_range_bounds_respected() {
        let mut r = rng();
        let u = UniformRange::new(-2.0, 3.0).unwrap();
        for _ in 0..1000 {
            let x = u.sample(&mut r);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn param_error_displays() {
        let err = Exponential::new(-1.0).unwrap_err();
        assert!(err.to_string().contains("exponential"));
    }
}
