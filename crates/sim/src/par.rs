//! Deterministic parallel replication pool.
//!
//! Experiments fan the same simulation out over many independent
//! *replications* — seed variants, parameter-grid cells, or both. Each
//! replication is a pure function of its index, so the set can run on
//! any number of worker threads **without changing a single output
//! byte**: the pool assigns every replication a stable index, derives
//! its RNG from a per-index SplitMix stream ([`RngFactory::indexed_stream`]),
//! and merges results back in index order. `--threads 8` and
//! `--threads 1` are therefore byte-identical; threads only change how
//! long you wait.
//!
//! ## Determinism contract
//!
//! 1. The job closure must be a pure function of `(index, rng)` — no
//!    shared mutable state, no wall clock, no OS entropy (rules D1/D3
//!    of `hc-analyze` enforce the latter two).
//! 2. Results are returned as `Vec<T>` in replication-index order,
//!    regardless of completion order.
//! 3. A panicking replication surfaces as [`ReplicationError::Panicked`]
//!    carrying the **lowest** panicking index — the same index the
//!    serial path would report — instead of poisoning the pool.
//!
//! ## Scheduling
//!
//! Replications are pre-distributed round-robin onto per-worker FIFO
//! queues (the vendored `crossbeam::deque::Worker`); an idle worker
//! steals from the back of its peers' queues (`Stealer`), so a few
//! expensive cells cannot serialize the whole grid behind one thread.

use crate::rng::{RngFactory, SimRng};
use crossbeam::deque::{Steal, Stealer, Worker};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Why a replication run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationError {
    /// A replication job panicked. `index` is the lowest panicking
    /// replication index, matching what a serial run would hit first.
    Panicked {
        /// Replication index whose job panicked.
        index: usize,
        /// Rendered panic payload.
        message: String,
    },
    /// The worker pool itself failed (a worker thread died outside a
    /// job). This indicates a bug in the pool, not in a replication.
    Pool {
        /// Description of the pool failure.
        message: String,
    },
}

impl fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationError::Panicked { index, message } => {
                write!(f, "replication {index} panicked: {message}")
            }
            ReplicationError::Pool { message } => write!(f, "replication pool: {message}"),
        }
    }
}

impl std::error::Error for ReplicationError {}

/// Renders a caught panic payload as a human-readable string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Machine-dependent facts about one pool run — how many workers ran
/// and how many tasks moved between queues. Reported through
/// [`hc_obs::machine_stat`] only, never in deterministic trace records.
#[derive(Debug, Clone, Copy)]
struct PoolStats {
    workers: usize,
    steals: u64,
}

/// The untraced pool: runs the jobs and returns results in index order
/// plus the (machine-dependent) scheduling stats.
fn run_raw<T, F>(
    jobs: usize,
    threads: usize,
    job: F,
) -> Result<(Vec<T>, PoolStats), ReplicationError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, jobs.max(1));
    if threads <= 1 {
        let mut out = Vec::with_capacity(jobs);
        for index in 0..jobs {
            match catch_unwind(AssertUnwindSafe(|| job(index))) {
                Ok(t) => out.push(t),
                Err(payload) => {
                    return Err(ReplicationError::Panicked {
                        index,
                        message: panic_message(payload.as_ref()),
                    })
                }
            }
        }
        return Ok((
            out,
            PoolStats {
                workers: 1,
                steals: 0,
            },
        ));
    }

    // Pre-distribute indices round-robin onto per-worker FIFO queues.
    let workers: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();
    for index in 0..jobs {
        workers[index % threads].push(index);
    }

    type JobOutcomes<T> = Vec<(usize, Result<T, String>)>;
    let scope_result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (me, local) in workers.into_iter().enumerate() {
            let stealers = &stealers;
            let job = &job;
            handles.push(scope.spawn(move |_| {
                let mut outcomes: JobOutcomes<T> = Vec::new();
                let mut steals = 0u64;
                loop {
                    let index = match local.pop() {
                        Some(i) => i,
                        None => match steal_any(stealers, me) {
                            Some(i) => {
                                steals += 1;
                                i
                            }
                            None => break,
                        },
                    };
                    let result = catch_unwind(AssertUnwindSafe(|| job(index)))
                        .map_err(|p| panic_message(p.as_ref()));
                    outcomes.push((index, result));
                }
                (outcomes, steals)
            }));
        }
        let mut per_worker = Vec::new();
        for handle in handles {
            per_worker.push(handle.join());
        }
        per_worker
    });

    let per_worker = match scope_result {
        Ok(v) => v,
        Err(payload) => {
            return Err(ReplicationError::Pool {
                message: format!("worker scope panicked: {}", panic_message(payload.as_ref())),
            })
        }
    };

    // Merge back in index order; the lowest panicking index wins so the
    // error matches what a serial run would report.
    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    let mut first_panic: Option<(usize, String)> = None;
    let mut steals = 0u64;
    for worker_result in per_worker {
        let (outcomes, worker_steals) = match worker_result {
            Ok(o) => o,
            Err(payload) => {
                return Err(ReplicationError::Pool {
                    message: format!(
                        "a worker thread died outside a job: {}",
                        panic_message(payload.as_ref())
                    ),
                })
            }
        };
        steals += worker_steals;
        for (index, result) in outcomes {
            match result {
                Ok(t) => {
                    if let Some(slot) = slots.get_mut(index) {
                        *slot = Some(t);
                    }
                }
                Err(message) => {
                    let replace = first_panic.as_ref().is_none_or(|(i, _)| index < *i);
                    if replace {
                        first_panic = Some((index, message));
                    }
                }
            }
        }
    }
    if let Some((index, message)) = first_panic {
        return Err(ReplicationError::Panicked { index, message });
    }
    let mut out = Vec::with_capacity(jobs);
    for slot in slots {
        match slot {
            Some(t) => out.push(t),
            None => {
                return Err(ReplicationError::Pool {
                    message: "a replication produced no result".to_string(),
                })
            }
        }
    }
    Ok((
        out,
        PoolStats {
            workers: threads,
            steals,
        },
    ))
}

/// Runs `jobs` independent replications of `job` across `threads`
/// worker threads and returns their results **in index order**.
///
/// `threads` is clamped to `1..=jobs`; `threads <= 1` runs strictly
/// serially on the calling thread (no pool is built at all). Because
/// every job is a pure function of its index, the returned vector is
/// identical for every thread count.
///
/// ## Tracing
///
/// When an `hc-obs` recording scope is active on the *calling* thread,
/// every task runs inside its own buffered scope (track `index + 1`)
/// and the per-task traces are merged back into the caller **in index
/// order** — so the merged trace, like the results, is byte-identical
/// at any `--threads` value regardless of completion order. Worker and
/// steal counts are genuinely machine-dependent and are reported
/// separately via `machine_stat`, outside the deterministic sections.
///
/// # Errors
///
/// Returns [`ReplicationError::Panicked`] when any job panics (lowest
/// index wins, so the error is deterministic too), or
/// [`ReplicationError::Pool`] if a worker thread itself fails.
pub fn run_replications<T, F>(
    jobs: usize,
    threads: usize,
    job: F,
) -> Result<Vec<T>, ReplicationError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if !hc_obs::active() {
        return run_raw(jobs, threads, job).map(|(out, _)| out);
    }
    let job = &job;
    let (traced, stats) = run_raw(jobs, threads, |index: usize| {
        hc_obs::record_scope(index as u32 + 1, || {
            hc_obs::name_track(index as u32 + 1, &format!("rep-{index}"));
            // The task root scope: everything the job emits becomes a
            // child, and closing at the trace's sim-time high-water
            // mark gives the span its natural duration.
            let task = hc_obs::enter("sim.par", "task", 0);
            let out = job(index);
            task.close(&[("index", index.into())]);
            out
        })
    })?;
    let mut out = Vec::with_capacity(jobs);
    for (data, trace) in traced {
        hc_obs::merge_trace(trace);
        out.push(data);
    }
    hc_obs::counter_now("par.tasks", jobs as u64);
    hc_obs::machine_stat("par.workers", stats.workers as f64);
    hc_obs::machine_stat("par.steals", stats.steals as f64);
    Ok(out)
}

/// Runs `jobs` seeded replications: job `i` receives the RNG stream
/// `factory.indexed_stream(label, i)` — an independent, per-index
/// SplitMix-derived stream — so outputs depend only on `(factory seed,
/// label, index)`, never on the thread count or completion order.
///
/// # Errors
///
/// Propagates [`ReplicationError`] exactly as [`run_replications`].
pub fn run_seeded_replications<T, F>(
    factory: &RngFactory,
    label: &str,
    jobs: usize,
    threads: usize,
    job: F,
) -> Result<Vec<T>, ReplicationError>
where
    T: Send,
    F: Fn(usize, SimRng) -> T + Sync,
{
    run_replications(jobs, threads, |index| {
        job(index, factory.indexed_stream(label, index as u64))
    })
}

/// Steals one index from any peer's queue back-end, skipping our own.
fn steal_any(stealers: &[Stealer<usize>], me: usize) -> Option<usize> {
    loop {
        let mut retry = false;
        for (i, stealer) in stealers.iter().enumerate() {
            if i == me {
                continue;
            }
            match stealer.steal() {
                Steal::Success(index) => return Some(index),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let out = run_replications(17, threads, |i| i * i).expect("no panics");
            assert_eq!(
                out,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn zero_jobs_yield_an_empty_vec() {
        let out: Vec<u64> = run_replications(0, 4, |_| 7).expect("no panics");
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = run_replications(3, 64, |i| i + 1).expect("no panics");
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn a_panicking_replication_surfaces_as_an_error() {
        let err = run_replications(9, 3, |i| {
            if i == 5 {
                panic!("replication 5 exploded");
            }
            i
        })
        .expect_err("job 5 panics");
        match err {
            ReplicationError::Panicked { index, message } => {
                assert_eq!(index, 5);
                assert!(message.contains("exploded"), "message: {message}");
            }
            other => panic!("wrong error variant: {other}"),
        }
    }

    #[test]
    fn lowest_panicking_index_wins_even_in_parallel() {
        let err = run_replications(12, 4, |i| {
            if i % 3 == 1 {
                panic!("boom at {i}");
            }
            i
        })
        .expect_err("several jobs panic");
        match err {
            ReplicationError::Panicked { index, .. } => assert_eq!(index, 1),
            other => panic!("wrong error variant: {other}"),
        }
    }

    #[test]
    fn serial_panic_reports_the_same_index_as_parallel() {
        let serial = run_replications(12, 1, |i| {
            if i % 3 == 1 {
                panic!("boom");
            }
            i
        })
        .expect_err("panics");
        let parallel = run_replications(12, 4, |i| {
            if i % 3 == 1 {
                panic!("boom");
            }
            i
        })
        .expect_err("panics");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn seeded_replications_are_thread_count_invariant() {
        let factory = RngFactory::new(42);
        let draw =
            |_i: usize, mut rng: SimRng| -> Vec<u64> { (0..16).map(|_| rng.gen()).collect() };
        let serial = run_seeded_replications(&factory, "grid", 10, 1, draw).expect("serial clean");
        for threads in [2, 3, 4, 7] {
            let parallel =
                run_seeded_replications(&factory, "grid", 10, threads, draw).expect("par clean");
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn string_panic_payloads_are_preserved() {
        // `panic!("{}", x)` carries a `String` payload (vs the static
        // `&str` of a literal); both must survive into the error.
        for threads in [1, 4] {
            let err = run_replications(8, threads, |i| {
                if i == 2 {
                    panic!("made at index {i}");
                }
                i
            })
            .expect_err("job 2 panics");
            match err {
                ReplicationError::Panicked { index, message } => {
                    assert_eq!(index, 2);
                    assert_eq!(message, "made at index 2", "threads={threads}");
                }
                other => panic!("wrong error variant: {other}"),
            }
        }
    }

    #[test]
    fn error_renders_with_index_and_message() {
        let e = ReplicationError::Panicked {
            index: 3,
            message: "kaput".to_string(),
        };
        assert_eq!(e.to_string(), "replication 3 panicked: kaput");
        let p = ReplicationError::Pool {
            message: "gone".to_string(),
        };
        assert_eq!(p.to_string(), "replication pool: gone");
    }
}
