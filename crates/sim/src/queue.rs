//! FIFO waiting queues with sojourn-time accounting.
//!
//! The matchmaker (hc-core) holds players in a waiting queue until a partner
//! arrives; experiment F5 reports the waiting-time distribution. This queue
//! timestamps entries on `enqueue` and reports the waited duration on
//! `dequeue`, feeding an [`OnlineStats`]-style
//! accumulator without the caller having to track instants.

use crate::stats::OnlineStats;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A FIFO queue of items with enqueue timestamps and waiting statistics.
///
/// # Examples
///
/// ```
/// use hc_sim::{FifoQueue, SimTime};
///
/// let mut q = FifoQueue::new();
/// q.enqueue(SimTime::from_secs(1), "alice");
/// q.enqueue(SimTime::from_secs(2), "bob");
/// let (who, waited) = q.dequeue(SimTime::from_secs(5)).unwrap();
/// assert_eq!(who, "alice");
/// assert_eq!(waited.as_secs_f64(), 4.0);
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FifoQueue<T> {
    items: VecDeque<(SimTime, T)>,
    wait_stats: OnlineStats,
    peak_len: usize,
}

impl<T> Default for FifoQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FifoQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        FifoQueue {
            items: VecDeque::new(),
            wait_stats: OnlineStats::new(),
            peak_len: 0,
        }
    }

    /// Appends `item` at time `now`.
    pub fn enqueue(&mut self, now: SimTime, item: T) {
        self.items.push_back((now, item));
        self.peak_len = self.peak_len.max(self.items.len());
    }

    /// Removes the oldest item at time `now`, returning it with the duration
    /// it waited. Returns `None` when empty.
    pub fn dequeue(&mut self, now: SimTime) -> Option<(T, SimDuration)> {
        let (entered, item) = self.items.pop_front()?;
        let waited = now.saturating_since(entered);
        self.wait_stats.push(waited.as_secs_f64());
        Some((item, waited))
    }

    /// Removes a specific item matching `pred` (first match), *without*
    /// recording a wait — used for abandonment (a queued player quits).
    pub fn remove_where<F: FnMut(&T) -> bool>(&mut self, mut pred: F) -> Option<(SimTime, T)> {
        let idx = self.items.iter().position(|(_, item)| pred(item))?;
        self.items.remove(idx)
    }

    /// How long the oldest entry has been waiting as of `now`.
    #[must_use]
    pub fn head_wait(&self, now: SimTime) -> Option<SimDuration> {
        self.items
            .front()
            .map(|(entered, _)| now.saturating_since(*entered))
    }

    /// Current queue length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Largest length the queue ever reached.
    #[must_use]
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Waiting-time statistics (seconds) across completed dequeues.
    #[must_use]
    pub fn wait_stats(&self) -> &OnlineStats {
        &self.wait_stats
    }

    /// Iterates over waiting items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter().map(|(_, item)| item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = FifoQueue::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            q.enqueue(t(i as u64), *name);
        }
        assert_eq!(q.dequeue(t(10)).unwrap().0, "a");
        assert_eq!(q.dequeue(t(10)).unwrap().0, "b");
        assert_eq!(q.dequeue(t(10)).unwrap().0, "c");
        assert!(q.dequeue(t(10)).is_none());
    }

    #[test]
    fn wait_times_accumulate() {
        let mut q = FifoQueue::new();
        q.enqueue(t(0), 1);
        q.enqueue(t(2), 2);
        q.dequeue(t(4)); // waited 4
        q.dequeue(t(4)); // waited 2
        assert_eq!(q.wait_stats().count(), 2);
        assert!((q.wait_stats().mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn head_wait_reports_oldest() {
        let mut q = FifoQueue::new();
        assert_eq!(q.head_wait(t(5)), None);
        q.enqueue(t(1), ());
        q.enqueue(t(3), ());
        assert_eq!(q.head_wait(t(5)), Some(SimDuration::from_secs(4)));
    }

    #[test]
    fn remove_where_skips_wait_accounting() {
        let mut q = FifoQueue::new();
        q.enqueue(t(0), "stay");
        q.enqueue(t(0), "leave");
        let removed = q.remove_where(|x| *x == "leave").unwrap();
        assert_eq!(removed.1, "leave");
        assert_eq!(q.len(), 1);
        assert_eq!(q.wait_stats().count(), 0);
        assert!(q.remove_where(|x| *x == "ghost").is_none());
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = FifoQueue::new();
        q.enqueue(t(0), 1);
        q.enqueue(t(0), 2);
        q.enqueue(t(0), 3);
        q.dequeue(t(1));
        q.dequeue(t(1));
        q.enqueue(t(2), 4);
        assert_eq!(q.peak_len(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut q = FifoQueue::new();
        q.enqueue(t(0), 10);
        q.enqueue(t(1), 20);
        let seen: Vec<i32> = q.iter().copied().collect();
        assert_eq!(seen, vec![10, 20]);
    }
}
