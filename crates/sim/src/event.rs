//! A stable, deterministic event queue.
//!
//! [`EventQueue`] is the heart of the DES kernel: a min-priority queue keyed
//! on [`SimTime`]. Ties are broken by **insertion order** (a monotone
//! sequence number), which is what makes simulations deterministic — two
//! events scheduled for the same instant always fire in the order they were
//! scheduled, regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A timestamped entry in the queue; ordering is `(time, seq)` ascending.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: SimTime,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Key,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic future-event list.
///
/// Events of type `E` are scheduled at absolute [`SimTime`] instants and
/// popped in non-decreasing time order; simultaneous events pop in FIFO
/// (scheduling) order.
///
/// # Examples
///
/// ```
/// use hc_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "b");
/// q.push(SimTime::from_secs(1), "a");
/// q.push(SimTime::from_secs(2), "c"); // same instant as "b", scheduled later
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let key = Key {
            time,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { key, event }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.popped += 1;
        Some((entry.key.time, entry.event))
    }

    /// The firing time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.key.time)
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `horizon`; otherwise leaves the queue untouched.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= horizon {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled.
    #[must_use]
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Total events ever popped.
    #[must_use]
    pub fn popped_count(&self) -> u64 {
        self.popped
    }

    /// Discards all pending events (counters are retained).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Drains all events firing at or before `horizon`, in order.
    pub fn drain_through(&mut self, horizon: SimTime) -> Vec<(SimTime, E)> {
        let mut out = Vec::new();
        while let Some(item) = self.pop_before(horizon) {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for s in [5u64, 1, 4, 2, 3] {
            q.push(t(s), s);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.push(t(7), label);
        }
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_and_pop_before_respect_horizon() {
        let mut q = EventQueue::new();
        q.push(t(10), "late");
        q.push(t(2), "early");
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop_before(t(5)), Some((t(2), "early")));
        assert_eq!(q.pop_before(t(5)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_through_collects_in_order() {
        let mut q = EventQueue::new();
        for s in [3u64, 1, 2, 9] {
            q.push(t(s), s);
        }
        let drained: Vec<u64> = q.drain_through(t(3)).into_iter().map(|(_, e)| e).collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn counters_track_lifecycle() {
        let mut q = EventQueue::new();
        q.push(t(1), ());
        q.push(t(2), ());
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        assert_eq!(q.popped_count(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_count(), 2);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert!(q.drain_through(SimTime::MAX).is_empty());
    }
}
