//! Deterministic random-number streams.
//!
//! Reproducibility is a first-class requirement: every experiment in
//! `EXPERIMENTS.md` must regenerate identically from its seed. The classic
//! mistake is sharing a single RNG across subsystems, where any change to
//! *one* consumer's draw count perturbs *every* downstream number. The
//! [`RngFactory`] instead derives an **independent, labelled stream** per
//! subsystem (`"arrivals"`, `"esp.answers"`, `"ocr"`, ...), so adding a draw
//! in one module never disturbs another.
//!
//! Streams are derived by mixing the master seed with an FNV-1a hash of the
//! label through SplitMix64 — a standard seed-sequencing construction with
//! good avalanche behaviour.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG type used throughout the workspace (ChaCha-based [`StdRng`]:
/// portable, seedable, and stable across platforms).
pub type SimRng = StdRng;

/// Derives independent, labelled RNG streams from one master seed.
///
/// # Examples
///
/// ```
/// use hc_sim::RngFactory;
/// use rand::Rng;
///
/// let f = RngFactory::new(7);
/// let mut a1 = f.stream("arrivals");
/// let mut a2 = f.stream("arrivals");
/// let mut b = f.stream("answers");
///
/// // Same label => same stream; different label => different stream.
/// assert_eq!(a1.gen::<u64>(), a2.gen::<u64>());
/// let mut a3 = f.stream("arrivals");
/// assert_ne!(a3.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Creates a factory rooted at `master_seed`.
    #[must_use]
    pub const fn new(master_seed: u64) -> Self {
        RngFactory { master_seed }
    }

    /// The master seed this factory was built from.
    #[must_use]
    pub const fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Returns the RNG stream for `label`. Calling twice with the same label
    /// yields identical streams.
    #[must_use]
    pub fn stream(&self, label: &str) -> SimRng {
        SimRng::seed_from_u64(self.stream_seed(label))
    }

    /// Returns the RNG stream for `label` refined by a numeric index —
    /// convenient for per-player or per-task streams
    /// (`factory.indexed_stream("player", 42)`).
    #[must_use]
    pub fn indexed_stream(&self, label: &str, index: u64) -> SimRng {
        let base = self.stream_seed(label);
        SimRng::seed_from_u64(splitmix64(base ^ splitmix64(index)))
    }

    /// Derives a child factory, for handing an entire subsystem its own seed
    /// space (`factory.child("captcha")`).
    #[must_use]
    pub fn child(&self, label: &str) -> RngFactory {
        RngFactory {
            master_seed: self.stream_seed(label),
        }
    }

    /// Derives a child factory refined by a numeric index — the factory
    /// counterpart of [`indexed_stream`](Self::indexed_stream), used by
    /// the parallel replication pool to give grid task `(label, index)`
    /// its own SplitMix-derived seed space.
    #[must_use]
    pub fn indexed_child(&self, label: &str, index: u64) -> RngFactory {
        RngFactory {
            master_seed: splitmix64(self.stream_seed(label) ^ splitmix64(index)),
        }
    }

    fn stream_seed(&self, label: &str) -> u64 {
        splitmix64(self.master_seed ^ fnv1a(label.as_bytes()))
    }
}

/// 64-bit FNV-1a over bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// SplitMix64 finalizer (Steele, Lea & Flood 2014) — one full avalanche pass.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(123);
        let xs: Vec<u64> = f
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u64> = f
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_diverge() {
        let f = RngFactory::new(123);
        let a: u64 = f.stream("a").gen();
        let b: u64 = f.stream("b").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_master_seeds_diverge() {
        let a: u64 = RngFactory::new(1).stream("x").gen();
        let b: u64 = RngFactory::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_distinct_and_stable() {
        let f = RngFactory::new(9);
        let p0: u64 = f.indexed_stream("player", 0).gen();
        let p1: u64 = f.indexed_stream("player", 1).gen();
        let p0_again: u64 = f.indexed_stream("player", 0).gen();
        assert_ne!(p0, p1);
        assert_eq!(p0, p0_again);
    }

    #[test]
    fn indexed_children_are_distinct_and_stable() {
        let f = RngFactory::new(11);
        let a = f.indexed_child("cell", 0);
        let b = f.indexed_child("cell", 1);
        let a_again = f.indexed_child("cell", 0);
        assert_ne!(a.master_seed(), b.master_seed());
        assert_eq!(a.master_seed(), a_again.master_seed());
        // The indexed child's streams match indexed_stream's construction
        // seed-wise: both mix the label seed with splitmix64(index).
        let c: u64 = f.indexed_child("cell", 3).stream("x").gen();
        let d: u64 = f.indexed_child("other", 3).stream("x").gen();
        assert_ne!(c, d);
    }

    #[test]
    fn child_factories_are_independent_namespaces() {
        let f = RngFactory::new(5);
        let c1 = f.child("captcha");
        let c2 = f.child("games");
        assert_ne!(c1.master_seed(), c2.master_seed());
        // A child's stream differs from the parent's stream of the same name.
        let parent: u64 = f.stream("s").gen();
        let child: u64 = c1.stream("s").gen();
        assert_ne!(parent, child);
    }

    #[test]
    fn fnv_and_splitmix_known_behaviour() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        // SplitMix64 must not be the identity and must avalanche on 1 bit.
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 16, "poor avalanche: {:064b}", a ^ b);
    }
}
