//! Arrival processes — when do players show up?
//!
//! GWAP platforms live or die by concurrency: output-agreement games need
//! *pairs* of simultaneous players, so pairing latency and the replay-bot
//! fallback rate (experiment F5) are direct functions of the arrival
//! process. Two models are provided:
//!
//! * [`PoissonProcess`] — stationary Poisson arrivals at a constant rate;
//!   the workhorse for sweeps.
//! * [`DiurnalProcess`] — a non-homogeneous Poisson process with a 24-hour
//!   sinusoidal rate profile, sampled by Lewis–Shedler thinning; models the
//!   day/night traffic swing real game portals see.

use crate::dist::Exponential;
use crate::time::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A source of arrival instants.
pub trait ArrivalProcess {
    /// The first arrival strictly after `after`.
    fn next_after<R: Rng + ?Sized>(&self, after: SimTime, rng: &mut R) -> SimTime;

    /// All arrivals in `(from, until]`, in order.
    fn arrivals_between<R: Rng + ?Sized>(
        &self,
        from: SimTime,
        until: SimTime,
        rng: &mut R,
    ) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = from;
        loop {
            t = self.next_after(t, rng);
            if t > until {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// Stationary Poisson arrivals at `rate` events per simulated second.
///
/// # Examples
///
/// ```
/// use hc_sim::prelude::*;
/// use rand::SeedableRng;
///
/// let p = PoissonProcess::new(10.0); // 10 players/second
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let arrivals = p.arrivals_between(SimTime::ZERO, SimTime::from_secs(100), &mut rng);
/// // Expect ~1000 arrivals over 100 s.
/// assert!((800..1200).contains(&arrivals.len()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonProcess {
    rate_per_sec: f64,
}

impl PoissonProcess {
    /// Creates a process with `rate_per_sec` arrivals per second.
    /// Non-positive or non-finite rates are treated as "never arrives".
    #[must_use]
    pub fn new(rate_per_sec: f64) -> Self {
        let rate_per_sec = if rate_per_sec.is_finite() && rate_per_sec > 0.0 {
            rate_per_sec
        } else {
            0.0
        };
        PoissonProcess { rate_per_sec }
    }

    /// Creates a process from a per-minute rate.
    #[must_use]
    pub fn per_minute(rate_per_min: f64) -> Self {
        PoissonProcess::new(rate_per_min / 60.0)
    }

    /// Creates a process from a per-hour rate.
    #[must_use]
    pub fn per_hour(rate_per_hour: f64) -> Self {
        PoissonProcess::new(rate_per_hour / 3600.0)
    }

    /// The arrival rate in events per second.
    #[must_use]
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }
}

impl ArrivalProcess for PoissonProcess {
    fn next_after<R: Rng + ?Sized>(&self, after: SimTime, rng: &mut R) -> SimTime {
        if self.rate_per_sec <= 0.0 {
            return SimTime::MAX;
        }
        let exp = Exponential::new(self.rate_per_sec).expect("constructor validated rate"); // hc-analyze: allow(P1): rate checked positive two lines up
        let gap = exp.sample(rng).max(1e-6); // at least one tick
        after + SimDuration::from_secs_f64(gap)
    }
}

/// A non-homogeneous Poisson process with a sinusoidal 24-hour profile:
///
/// `rate(t) = base * (1 + amplitude * sin(2π (t - phase) / 24h))`
///
/// sampled by thinning against the peak rate. `amplitude` in `[0, 1]`
/// controls the day/night swing (0 = stationary, 1 = traffic dies at night).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProcess {
    base_rate_per_sec: f64,
    amplitude: f64,
    phase: SimDuration,
}

impl DiurnalProcess {
    /// Creates a diurnal process around `base_rate_per_sec`, with relative
    /// `amplitude` clamped to `[0, 1]` and peak offset `phase` into the day.
    #[must_use]
    pub fn new(base_rate_per_sec: f64, amplitude: f64, phase: SimDuration) -> Self {
        let base = if base_rate_per_sec.is_finite() && base_rate_per_sec > 0.0 {
            base_rate_per_sec
        } else {
            0.0
        };
        let amplitude = if amplitude.is_finite() {
            amplitude.clamp(0.0, 1.0)
        } else {
            0.0
        };
        DiurnalProcess {
            base_rate_per_sec: base,
            amplitude,
            phase,
        }
    }

    /// Instantaneous rate at `t`, events per second.
    #[must_use]
    pub fn rate_at(&self, t: SimTime) -> f64 {
        const DAY_SECS: f64 = 86_400.0;
        let secs = (t.as_secs_f64() - self.phase.as_secs_f64()).rem_euclid(DAY_SECS);
        let angle = 2.0 * std::f64::consts::PI * secs / DAY_SECS;
        self.base_rate_per_sec * (1.0 + self.amplitude * angle.sin())
    }

    /// Peak instantaneous rate (thinning envelope).
    #[must_use]
    pub fn peak_rate(&self) -> f64 {
        self.base_rate_per_sec * (1.0 + self.amplitude)
    }
}

impl ArrivalProcess for DiurnalProcess {
    fn next_after<R: Rng + ?Sized>(&self, after: SimTime, rng: &mut R) -> SimTime {
        let peak = self.peak_rate();
        if peak <= 0.0 {
            return SimTime::MAX;
        }
        let envelope = Exponential::new(peak).expect("peak > 0"); // hc-analyze: allow(P1): peak checked positive two lines up
        let mut t = after;
        // Lewis–Shedler thinning: propose from the homogeneous envelope,
        // accept with probability rate(t)/peak.
        for _ in 0..1_000_000 {
            let gap = envelope.sample(rng).max(1e-6);
            t += SimDuration::from_secs_f64(gap);
            let accept_p = self.rate_at(t) / peak;
            if rng.gen::<f64>() < accept_p {
                return t;
            }
        }
        SimTime::MAX // pathological parameters; treat as silence
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(777)
    }

    #[test]
    fn poisson_rate_is_respected() {
        let mut r = rng();
        let p = PoissonProcess::new(5.0);
        let n = p
            .arrivals_between(SimTime::ZERO, SimTime::from_secs(2000), &mut r)
            .len();
        let rate = n as f64 / 2000.0;
        assert!((rate - 5.0).abs() < 0.25, "rate={rate}");
    }

    #[test]
    fn poisson_unit_conversions() {
        assert!((PoissonProcess::per_minute(60.0).rate_per_sec() - 1.0).abs() < 1e-12);
        assert!((PoissonProcess::per_hour(3600.0).rate_per_sec() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_never_arrives() {
        let mut r = rng();
        assert_eq!(
            PoissonProcess::new(0.0).next_after(SimTime::ZERO, &mut r),
            SimTime::MAX
        );
        assert_eq!(
            PoissonProcess::new(f64::NAN).next_after(SimTime::ZERO, &mut r),
            SimTime::MAX
        );
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut r = rng();
        let p = PoissonProcess::new(100.0);
        let xs = p.arrivals_between(SimTime::ZERO, SimTime::from_secs(10), &mut r);
        assert!(xs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn diurnal_rate_profile_peaks_and_troughs() {
        let d = DiurnalProcess::new(10.0, 0.5, SimDuration::ZERO);
        // Peak at 6h into the cycle (sin = 1), trough at 18h (sin = -1).
        let peak = d.rate_at(SimTime::from_secs(6 * 3600));
        let trough = d.rate_at(SimTime::from_secs(18 * 3600));
        assert!((peak - 15.0).abs() < 1e-6, "peak={peak}");
        assert!((trough - 5.0).abs() < 1e-6, "trough={trough}");
        assert!((d.peak_rate() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn diurnal_total_volume_matches_base_rate() {
        let mut r = rng();
        // Over whole days the sinusoid integrates out: volume ≈ base * T.
        let d = DiurnalProcess::new(2.0, 0.9, SimDuration::from_hours(3));
        let day = SimTime::from_secs(86_400);
        let n = d.arrivals_between(SimTime::ZERO, day, &mut r).len();
        let expected = 2.0 * 86_400.0;
        assert!(
            (n as f64 - expected).abs() / expected < 0.05,
            "n={n} expected≈{expected}"
        );
    }

    #[test]
    fn diurnal_amplitude_clamps() {
        let d = DiurnalProcess::new(1.0, 5.0, SimDuration::ZERO);
        assert!((d.peak_rate() - 2.0).abs() < 1e-12);
        let d = DiurnalProcess::new(1.0, -3.0, SimDuration::ZERO);
        assert!((d.peak_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diurnal_arrivals_strictly_increasing_and_denser_at_peak() {
        let mut r = rng();
        let d = DiurnalProcess::new(1.0, 0.95, SimDuration::ZERO);
        let xs = d.arrivals_between(SimTime::ZERO, SimTime::from_secs(86_400), &mut r);
        assert!(xs.windows(2).all(|w| w[0] < w[1]));
        // Count arrivals in the peak half (0..12h) vs trough half (12..24h).
        let half = SimTime::from_secs(43_200);
        let peak_n = xs.iter().filter(|&&t| t <= half).count();
        let trough_n = xs.len() - peak_n;
        assert!(
            peak_n > trough_n * 2,
            "expected strong diurnal skew: peak={peak_n} trough={trough_n}"
        );
    }
}
