//! Online and batch statistics for experiment harnesses.
//!
//! Every experiment binary reports means, spreads, percentiles and
//! confidence intervals; this module provides the shared machinery:
//!
//! * [`OnlineStats`] — single-pass Welford mean/variance with min/max.
//! * [`SampleSet`] — a retained sample supporting exact quantiles.
//! * [`Histogram`] — fixed-width binning for distribution-shaped figures.
//! * [`ConfidenceInterval`] — normal-approximation CIs for means and
//!   proportions (Wald and Wilson).

use serde::{Deserialize, Serialize};

/// Single-pass running mean/variance (Welford's algorithm), plus min/max.
///
/// Numerically stable for long streams; used for inter-arrival gaps, queue
/// sojourns, scores, and every other streaming measurement in the workspace.
///
/// # Examples
///
/// ```
/// use hc_sim::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation. Non-finite values are ignored (and counted via
    /// [`OnlineStats::count`] staying unchanged) so one NaN cannot poison a
    /// whole experiment.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`), or 0 when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n-1`), or 0 with fewer than 2 samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observation, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of observations (`mean * n`).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// 95% normal-approximation confidence interval for the mean.
    #[must_use]
    pub fn mean_ci95(&self) -> ConfidenceInterval {
        ConfidenceInterval::for_mean(self.mean(), self.std_dev(), self.count)
    }
}

/// A retained sample supporting exact order statistics.
///
/// Unlike [`OnlineStats`] this stores all observations; use it where exact
/// medians/percentiles matter (latency figures) and sample counts are
/// bounded.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleSet {
    values: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// Creates an empty sample set.
    #[must_use]
    pub fn new() -> Self {
        SampleSet {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation (non-finite values ignored).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.values.push(x);
        self.sorted = false;
    }

    /// Extends from an iterator of observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Number of retained observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no observations have been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Exact quantile by linear interpolation between order statistics.
    /// `q` is clamped to `[0, 1]`. Returns `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.values[lo] * (1.0 - frac) + self.values[hi] * frac)
    }

    /// The median (50th percentile).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 95th percentile.
    pub fn p95(&mut self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Immutable view of the raw values (unspecified order).
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` or either bound is non-finite —
    /// these are programming errors, not data errors.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "histogram bounds must be finite with lo < hi"
        );
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bucket `i`.
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins.get(i).copied().unwrap_or(0)
    }

    /// Number of buckets.
    #[must_use]
    pub fn bin_len(&self) -> usize {
        self.bins.len()
    }

    /// `(lo, hi)` bounds of bucket `i`.
    #[must_use]
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Observations below `lo`.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded observations (including under/overflow).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of in-range mass in bucket `i`.
    #[must_use]
    pub fn bin_fraction(&self, i: usize) -> f64 {
        let in_range = self.total - self.underflow - self.overflow;
        if in_range == 0 {
            0.0
        } else {
            self.bin_count(i) as f64 / in_range as f64
        }
    }
}

/// A symmetric confidence interval `center ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub center: f64,
    /// Half-width of the interval.
    pub half_width: f64,
}

/// z-score for a two-sided 95% interval.
const Z95: f64 = 1.959_963_984_540_054;

impl ConfidenceInterval {
    /// 95% CI for a mean given its sample standard deviation and count
    /// (normal approximation; degenerate when `n < 2`).
    #[must_use]
    pub fn for_mean(mean: f64, std_dev: f64, n: u64) -> Self {
        let half_width = if n < 2 {
            0.0
        } else {
            Z95 * std_dev / (n as f64).sqrt()
        };
        ConfidenceInterval {
            center: mean,
            half_width,
        }
    }

    /// Wilson score 95% interval for a proportion with `successes` out of
    /// `trials`. Returns the interval *center and half-width* of the Wilson
    /// interval (better behaved than Wald at the extremes — exactly where
    /// CAPTCHA pass rates live).
    #[must_use]
    pub fn for_proportion(successes: u64, trials: u64) -> Self {
        if trials == 0 {
            return ConfidenceInterval {
                center: 0.0,
                half_width: 0.0,
            };
        }
        let n = trials as f64;
        let p = successes as f64 / n;
        let z2 = Z95 * Z95;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half_width = (Z95 / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
        ConfidenceInterval { center, half_width }
    }

    /// Lower bound of the interval.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.center - self.half_width
    }

    /// Upper bound of the interval.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.center + self.half_width
    }

    /// `true` if `x` lies inside the interval.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.center, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data = [1.5, 2.5, 3.5, 10.0, -4.0, 0.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), Some(-4.0));
        assert_eq!(s.max(), Some(10.0));
        assert!((s.sum() - data.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn welford_ignores_non_finite() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(3.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut s = SampleSet::new();
        s.extend([4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median(), Some(2.5));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(4.0));
        assert_eq!(s.quantile(2.0), Some(4.0)); // clamped
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn quantiles_on_empty_set() {
        let mut s = SampleSet::new();
        assert!(s.is_empty());
        assert_eq!(s.median(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn p95_on_uniform_ramp() {
        let mut s = SampleSet::new();
        s.extend((0..=100).map(f64::from));
        assert_eq!(s.p95(), Some(95.0));
        assert_eq!(s.p99(), Some(99.0));
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin_count(0), 2); // 0.0 and 1.9
        assert_eq!(h.bin_count(1), 1); // 2.0
        assert_eq!(h.bin_count(4), 1); // 9.99
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_bounds(1), (2.0, 4.0));
        assert!((h.bin_fraction(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn mean_ci_shrinks_with_n() {
        let wide = ConfidenceInterval::for_mean(5.0, 2.0, 10);
        let narrow = ConfidenceInterval::for_mean(5.0, 2.0, 1000);
        assert!(narrow.half_width < wide.half_width);
        assert!(wide.contains(5.0));
        assert_eq!(ConfidenceInterval::for_mean(5.0, 2.0, 1).half_width, 0.0);
    }

    #[test]
    fn wilson_interval_behaviour() {
        // 0/0 trials: degenerate.
        let ci = ConfidenceInterval::for_proportion(0, 0);
        assert_eq!(ci.center, 0.0);
        // 95/100: interval near 0.95 and inside [0, 1].
        let ci = ConfidenceInterval::for_proportion(95, 100);
        assert!(ci.lo() > 0.85 && ci.hi() <= 1.0);
        assert!(ci.contains(0.95));
        // Extreme 100/100 keeps the upper bound at most 1.
        let ci = ConfidenceInterval::for_proportion(100, 100);
        assert!(ci.hi() <= 1.0 + 1e-12);
        assert!(ci.lo() > 0.9);
    }

    #[test]
    fn ci_display() {
        let ci = ConfidenceInterval::for_mean(1.0, 0.5, 100);
        assert!(ci.to_string().contains('±'));
    }
}
