//! Label vocabularies and ground-truth label distributions.
//!
//! Player folksonomies are famously Zipf-shaped: a few labels ("dog",
//! "sky") dominate, with a long tail of rare ones. [`Vocabulary`] models
//! the *global* label space with Zipf popularity; [`LabelDistribution`]
//! models the ground truth of one stimulus — which labels a perfectly
//! attentive human could truthfully produce for it, with what propensity.
//! Behaviours (honest, noisy, …) sample through these.

use hc_core::Label;
use hc_sim::dist::{DiscreteDist, Zipf};
use rand::Rng;

/// The global label space: `size` synthetic labels with Zipf(`exponent`)
/// popularity. Label text is deterministic (`"w<rank>"`), so worlds built
/// from the same parameters are identical across runs.
///
/// # Examples
///
/// ```
/// use hc_crowd::Vocabulary;
/// use rand::SeedableRng;
///
/// let vocab = Vocabulary::new(1000, 1.07);
/// assert_eq!(vocab.len(), 1000);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let label = vocab.sample(&mut rng);
/// assert!(vocab.rank_of(&label).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Vocabulary {
    labels: Vec<Label>,
    zipf: Zipf,
}

impl Vocabulary {
    /// Builds a vocabulary of `size` labels with Zipf exponent `exponent`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `exponent` is negative/non-finite (these
    /// are programming errors in experiment setup).
    #[must_use]
    pub fn new(size: usize, exponent: f64) -> Self {
        let zipf = Zipf::new(size, exponent).expect("valid vocabulary parameters"); // hc-analyze: allow(P1): documented # Panics contract for size == 0 or bad exponent
        let labels = (0..size).map(|i| Label::new(&format!("w{i}"))).collect();
        Vocabulary { labels, zipf }
    }

    /// Number of labels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` for an empty vocabulary (never: constructor requires ≥ 1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label at a popularity rank (0 = most popular).
    #[must_use]
    pub fn label(&self, rank: usize) -> Option<&Label> {
        self.labels.get(rank)
    }

    /// The rank of a label, if it belongs to this vocabulary.
    #[must_use]
    pub fn rank_of(&self, label: &Label) -> Option<usize> {
        // Labels are "w<rank>"; parse rather than scan.
        let s = label.as_str();
        let rank: usize = s.strip_prefix('w')?.parse().ok()?;
        (rank < self.labels.len()).then_some(rank)
    }

    /// Samples a label with Zipf popularity (what a distracted player
    /// blurts out).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Label {
        self.labels[self.zipf.sample(rng)].clone()
    }

    /// Samples a label uniformly (pure noise).
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Label {
        self.labels[rng.gen_range(0..self.labels.len())].clone()
    }
}

/// The ground truth of one stimulus: labels a truthful observer could
/// produce, with propensities.
///
/// # Examples
///
/// ```
/// use hc_core::Label;
/// use hc_crowd::LabelDistribution;
/// use rand::SeedableRng;
///
/// let truth = LabelDistribution::new(
///     vec![(Label::new("dog"), 0.6), (Label::new("grass"), 0.4)],
/// ).unwrap();
/// assert!(truth.contains(&Label::new("dog")));
/// assert_eq!(truth.top(), &Label::new("dog"));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// assert!(truth.contains(&truth.sample(&mut rng)));
/// ```
#[derive(Debug, Clone)]
pub struct LabelDistribution {
    labels: Vec<Label>,
    dist: DiscreteDist,
}

impl LabelDistribution {
    /// Builds a distribution from `(label, weight)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error string when empty, when weights are invalid, or
    /// when a label normalizes to nothing.
    pub fn new(pairs: Vec<(Label, f64)>) -> Result<Self, String> {
        if pairs.iter().any(|(l, _)| l.is_empty()) {
            return Err("empty label in distribution".to_string());
        }
        let weights: Vec<f64> = pairs.iter().map(|(_, w)| *w).collect();
        let dist = DiscreteDist::new(&weights).map_err(|e| e.to_string())?;
        Ok(LabelDistribution {
            labels: pairs.into_iter().map(|(l, _)| l).collect(),
            dist,
        })
    }

    /// Builds a uniform distribution over `labels`.
    ///
    /// # Errors
    ///
    /// Returns an error string when `labels` is empty or contains an empty
    /// label.
    pub fn uniform(labels: Vec<Label>) -> Result<Self, String> {
        let n = labels.len();
        LabelDistribution::new(
            labels
                .into_iter()
                .map(|l| (l, 1.0 / n.max(1) as f64))
                .collect(),
        )
    }

    /// Number of truthful labels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when no labels exist (never: constructor rejects empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The labels, most-weighted first is **not** guaranteed; use
    /// [`LabelDistribution::top`] for the modal label.
    #[must_use]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, label: &Label) -> bool {
        self.labels.contains(label)
    }

    /// The modal (highest-weight) label.
    #[must_use]
    pub fn top(&self) -> &Label {
        let mut best = 0;
        for i in 1..self.labels.len() {
            if self.dist.pmf(i) > self.dist.pmf(best) {
                best = i;
            }
        }
        &self.labels[best]
    }

    /// Probability of a specific label (0 if absent).
    #[must_use]
    pub fn pmf_of(&self, label: &Label) -> f64 {
        self.labels
            .iter()
            .position(|l| l == label)
            .map_or(0.0, |i| self.dist.pmf(i))
    }

    /// Samples one truthful label.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Label {
        self.labels[self.dist.sample(rng)].clone()
    }

    /// Jaccard-style overlap with another distribution's support — how
    /// confusable two stimuli are for input-agreement verdicts.
    #[must_use]
    pub fn support_overlap(&self, other: &LabelDistribution) -> f64 {
        let a: std::collections::BTreeSet<&Label> = self.labels.iter().collect();
        let b: std::collections::BTreeSet<&Label> = other.labels.iter().collect();
        let inter = a.intersection(&b).count();
        let union = a.union(&b).count();
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    #[test]
    fn vocabulary_is_deterministic() {
        let a = Vocabulary::new(100, 1.0);
        let b = Vocabulary::new(100, 1.0);
        assert_eq!(a.label(0), b.label(0));
        assert_eq!(a.label(99), Some(&Label::new("w99")));
        assert_eq!(a.label(100), None);
        assert!(!a.is_empty());
    }

    #[test]
    fn vocabulary_rank_round_trips() {
        let v = Vocabulary::new(50, 1.2);
        for rank in [0usize, 1, 49] {
            let l = v.label(rank).unwrap().clone();
            assert_eq!(v.rank_of(&l), Some(rank));
        }
        assert_eq!(v.rank_of(&Label::new("w50")), None);
        assert_eq!(v.rank_of(&Label::new("dog")), None);
    }

    #[test]
    fn vocabulary_zipf_skews_to_low_ranks() {
        let v = Vocabulary::new(1000, 1.2);
        let mut r = rng();
        let n = 20_000;
        let low = (0..n)
            .filter(|_| v.rank_of(&v.sample(&mut r)).unwrap() < 10)
            .count();
        assert!(
            low as f64 / n as f64 > 0.3,
            "top-10 share too small: {}",
            low as f64 / n as f64
        );
    }

    #[test]
    fn uniform_sampling_covers_tail() {
        let v = Vocabulary::new(10, 2.0);
        let mut r = rng();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            seen.insert(v.sample_uniform(&mut r));
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn distribution_rejects_bad_input() {
        assert!(LabelDistribution::new(vec![]).is_err());
        assert!(LabelDistribution::new(vec![(Label::new("!!"), 1.0)]).is_err());
        assert!(LabelDistribution::new(vec![(Label::new("a"), -1.0)]).is_err());
        assert!(LabelDistribution::uniform(vec![]).is_err());
    }

    #[test]
    fn top_and_pmf() {
        let d = LabelDistribution::new(vec![
            (Label::new("rare"), 0.1),
            (Label::new("common"), 0.7),
            (Label::new("mid"), 0.2),
        ])
        .unwrap();
        assert_eq!(d.top(), &Label::new("common"));
        assert!((d.pmf_of(&Label::new("common")) - 0.7).abs() < 1e-12);
        assert_eq!(d.pmf_of(&Label::new("absent")), 0.0);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn sampling_matches_weights() {
        let d =
            LabelDistribution::new(vec![(Label::new("a"), 0.9), (Label::new("b"), 0.1)]).unwrap();
        let mut r = rng();
        let n = 10_000;
        let a_count = (0..n)
            .filter(|_| d.sample(&mut r) == Label::new("a"))
            .count();
        assert!((a_count as f64 / n as f64 - 0.9).abs() < 0.02);
    }

    #[test]
    fn support_overlap_cases() {
        let a = LabelDistribution::uniform(vec![Label::new("x"), Label::new("y")]).unwrap();
        let b = LabelDistribution::uniform(vec![Label::new("y"), Label::new("z")]).unwrap();
        let c = LabelDistribution::uniform(vec![Label::new("p")]).unwrap();
        assert!((a.support_overlap(&b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.support_overlap(&c), 0.0);
        assert!((a.support_overlap(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_distribution_is_uniform() {
        let d = LabelDistribution::uniform(vec![
            Label::new("a"),
            Label::new("b"),
            Label::new("c"),
            Label::new("d"),
        ])
        .unwrap();
        for l in d.labels() {
            assert!((d.pmf_of(l) - 0.25).abs() < 1e-12);
        }
    }
}
