//! Per-player profiles.

use crate::behavior::Behavior;
use crate::response::ResponseTimeModel;
use hc_core::PlayerId;
use serde::{Deserialize, Serialize};

/// Everything the simulation knows about one player.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlayerProfile {
    /// Platform identity.
    pub id: PlayerId,
    /// Perceptual/linguistic skill in `[0, 1]`: drives verdict accuracy
    /// and inversion-guess quality.
    pub skill: f64,
    /// Answer policy.
    pub behavior: Behavior,
    /// Latency model for producing answers.
    pub response: ResponseTimeModel,
}

impl PlayerProfile {
    /// Creates a profile, clamping `skill` into `[0, 1]`.
    #[must_use]
    pub fn new(id: PlayerId, skill: f64, behavior: Behavior, response: ResponseTimeModel) -> Self {
        PlayerProfile {
            id,
            skill: if skill.is_finite() {
                skill.clamp(0.0, 1.0)
            } else {
                0.5
            },
            behavior,
            response,
        }
    }

    /// Archetype name of the player's behaviour.
    #[must_use]
    pub fn archetype(&self) -> &'static str {
        self.behavior.name()
    }

    /// `true` when the player models a deliberate attacker.
    #[must_use]
    pub fn is_adversarial(&self) -> bool {
        self.behavior.is_adversarial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skill_is_clamped() {
        let p = PlayerProfile::new(
            PlayerId::new(1),
            1.7,
            Behavior::Honest,
            ResponseTimeModel::default(),
        );
        assert_eq!(p.skill, 1.0);
        let p = PlayerProfile::new(
            PlayerId::new(1),
            f64::NAN,
            Behavior::Honest,
            ResponseTimeModel::default(),
        );
        assert_eq!(p.skill, 0.5);
        let p = PlayerProfile::new(
            PlayerId::new(1),
            -3.0,
            Behavior::Honest,
            ResponseTimeModel::default(),
        );
        assert_eq!(p.skill, 0.0);
    }

    #[test]
    fn archetype_passthrough() {
        let p = PlayerProfile::new(
            PlayerId::new(1),
            0.8,
            Behavior::Random,
            ResponseTimeModel::default(),
        );
        assert_eq!(p.archetype(), "random");
        assert!(!p.is_adversarial());
    }
}
