//! Skill dynamics: practice and fatigue.
//!
//! The deployed games' skill ladders exist because players *improve* —
//! ESP throughput rises over a player's first sessions as they learn the
//! "obvious label first" strategy — and sag *within* a long sitting as
//! attention fades. [`SkillDynamics`] models both as a multiplicative
//! adjustment applied to a player's base skill:
//!
//! `effective = base × learning(rounds_lifetime) × fatigue(minutes_in_sitting)`
//!
//! * learning: `1 + gain × (1 − exp(−rounds/τ))` — saturating practice
//!   curve;
//! * fatigue: `1 − slope × max(0, minutes − onset)` (floored) — linear
//!   decline after an onset.
//!
//! The T1 throughput measurement and the F6 engagement sweeps compose
//! with this model; it is also reusable on its own for ablations.

use serde::{Deserialize, Serialize};

/// Parameters of the practice/fatigue adjustment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkillDynamics {
    /// Maximum relative improvement from practice (e.g. 0.25 = +25%).
    pub learning_gain: f64,
    /// Rounds to reach ~63% of the learning gain.
    pub learning_tau_rounds: f64,
    /// Minutes into a sitting before fatigue starts.
    pub fatigue_onset_mins: f64,
    /// Relative skill lost per minute past the onset.
    pub fatigue_slope_per_min: f64,
    /// Floor on the fatigue multiplier.
    pub fatigue_floor: f64,
}

impl Default for SkillDynamics {
    /// Mild practice gain (+20% saturating over ~60 rounds), fatigue
    /// setting in after 20 minutes at 1%/min, floored at 60%.
    fn default() -> Self {
        SkillDynamics {
            learning_gain: 0.20,
            learning_tau_rounds: 60.0,
            fatigue_onset_mins: 20.0,
            fatigue_slope_per_min: 0.01,
            fatigue_floor: 0.6,
        }
    }
}

impl SkillDynamics {
    /// A static model: no practice effect, no fatigue.
    #[must_use]
    pub fn none() -> Self {
        SkillDynamics {
            learning_gain: 0.0,
            learning_tau_rounds: 1.0,
            fatigue_onset_mins: f64::INFINITY,
            fatigue_slope_per_min: 0.0,
            fatigue_floor: 1.0,
        }
    }

    /// The practice multiplier after a lifetime total of `rounds` rounds.
    #[must_use]
    pub fn learning_multiplier(&self, rounds: u64) -> f64 {
        if self.learning_tau_rounds <= 0.0 {
            return 1.0 + self.learning_gain.max(0.0);
        }
        1.0 + self.learning_gain.max(0.0)
            * (1.0 - (-(rounds as f64) / self.learning_tau_rounds).exp())
    }

    /// The fatigue multiplier `minutes` into the current sitting.
    #[must_use]
    pub fn fatigue_multiplier(&self, minutes: f64) -> f64 {
        let past = (minutes - self.fatigue_onset_mins).max(0.0);
        (1.0 - self.fatigue_slope_per_min.max(0.0) * past).max(self.fatigue_floor.clamp(0.0, 1.0))
    }

    /// Effective skill (clamped to `[0, 1]`).
    #[must_use]
    pub fn effective_skill(&self, base: f64, lifetime_rounds: u64, sitting_minutes: f64) -> f64 {
        (base
            * self.learning_multiplier(lifetime_rounds)
            * self.fatigue_multiplier(sitting_minutes))
        .clamp(0.0, 1.0)
    }
}

/// Per-player running state for the dynamics: rounds played over the
/// lifetime and minutes into the current sitting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SkillState {
    /// Rounds played across all sittings.
    pub lifetime_rounds: u64,
    /// Minutes into the current sitting.
    pub sitting_minutes: f64,
}

impl SkillState {
    /// Records `rounds` more rounds taking `minutes` within the sitting.
    pub fn advance(&mut self, rounds: u64, minutes: f64) {
        self.lifetime_rounds += rounds;
        self.sitting_minutes += minutes.max(0.0);
    }

    /// Starts a fresh sitting (fatigue resets; practice persists).
    pub fn new_sitting(&mut self) {
        self.sitting_minutes = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learning_saturates_at_the_gain() {
        let d = SkillDynamics::default();
        assert!((d.learning_multiplier(0) - 1.0).abs() < 1e-12);
        let early = d.learning_multiplier(30);
        let late = d.learning_multiplier(600);
        assert!(early > 1.0 && early < late);
        assert!((late - 1.20).abs() < 0.01, "saturates near 1.2: {late}");
    }

    #[test]
    fn fatigue_kicks_in_after_onset_and_floors() {
        let d = SkillDynamics::default();
        assert_eq!(d.fatigue_multiplier(0.0), 1.0);
        assert_eq!(d.fatigue_multiplier(20.0), 1.0);
        assert!((d.fatigue_multiplier(30.0) - 0.9).abs() < 1e-12);
        assert_eq!(d.fatigue_multiplier(1e6), 0.6, "floored");
    }

    #[test]
    fn effective_skill_is_clamped() {
        let d = SkillDynamics {
            learning_gain: 10.0,
            ..SkillDynamics::default()
        };
        assert_eq!(d.effective_skill(0.9, 10_000, 0.0), 1.0);
        assert_eq!(d.effective_skill(0.0, 10_000, 0.0), 0.0);
    }

    #[test]
    fn none_is_the_identity() {
        let d = SkillDynamics::none();
        for rounds in [0u64, 10, 1000] {
            for mins in [0.0, 30.0, 500.0] {
                assert!((d.effective_skill(0.7, rounds, mins) - 0.7).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn practice_beats_fatigue_early_then_loses() {
        let d = SkillDynamics::default();
        // Fresh player, fresh sitting.
        let fresh = d.effective_skill(0.7, 0, 0.0);
        // Veteran in minute 10 of a sitting: learning only.
        let veteran = d.effective_skill(0.7, 500, 10.0);
        // Veteran deep in a marathon sitting: fatigue dominates.
        let tired = d.effective_skill(0.7, 500, 70.0);
        assert!(veteran > fresh);
        assert!(tired < veteran);
    }

    #[test]
    fn state_advances_and_resets() {
        let mut s = SkillState::default();
        s.advance(10, 5.0);
        s.advance(5, -3.0); // negative minutes ignored
        assert_eq!(s.lifetime_rounds, 15);
        assert!((s.sitting_minutes - 5.0).abs() < 1e-12);
        s.new_sitting();
        assert_eq!(s.sitting_minutes, 0.0);
        assert_eq!(s.lifetime_rounds, 15, "practice persists across sittings");
    }

    #[test]
    fn degenerate_tau_jumps_to_full_gain() {
        let d = SkillDynamics {
            learning_tau_rounds: 0.0,
            ..SkillDynamics::default()
        };
        assert!((d.learning_multiplier(0) - 1.2).abs() < 1e-12);
    }
}
