//! Population building: reproducible mixes of player archetypes.
//!
//! Experiments specify crowds declaratively — "85% honest, 10% noisy, 5%
//! colluders, skill ~ U(0.6, 0.95)" — and [`PopulationBuilder`] realizes
//! them deterministically from an [`RngFactory`](hc_sim::RngFactory)
//! stream, assigning platform [`PlayerId`]s in order.

use crate::behavior::Behavior;
use crate::player::PlayerProfile;
use crate::response::ResponseTimeModel;
use hc_core::{Label, PlayerId};
use hc_sim::dist::DiscreteDist;
use rand::Rng;

/// A weighted mix of behaviour archetypes.
#[derive(Debug, Clone)]
pub struct ArchetypeMix {
    entries: Vec<(Behavior, f64)>,
}

impl ArchetypeMix {
    /// A fully honest crowd.
    #[must_use]
    pub fn all_honest() -> Self {
        ArchetypeMix {
            entries: vec![(Behavior::Honest, 1.0)],
        }
    }

    /// The default "realistic web crowd" used by the experiments: mostly
    /// honest, some noisy and lazy, a pinch of pure noise.
    #[must_use]
    pub fn realistic() -> Self {
        ArchetypeMix {
            entries: vec![
                (Behavior::Honest, 0.70),
                (Behavior::Noisy { error_rate: 0.15 }, 0.20),
                (Behavior::Lazy { pass_rate: 0.25 }, 0.07),
                (Behavior::Random, 0.03),
            ],
        }
    }

    /// A crowd with an injected fraction of colluders all using the same
    /// strategy label.
    #[must_use]
    pub fn with_colluders(honest_share: f64, colluder_share: f64, strategy: &str) -> Self {
        let honest = honest_share.max(0.0);
        let coll = colluder_share.max(0.0);
        ArchetypeMix {
            entries: vec![
                (Behavior::Honest, honest),
                (
                    Behavior::Colluder {
                        strategy_label: Label::new(strategy),
                    },
                    coll,
                ),
            ],
        }
    }

    /// Starts an empty mix for custom construction.
    #[must_use]
    pub fn custom() -> Self {
        ArchetypeMix {
            entries: Vec::new(),
        }
    }

    /// Adds an archetype with a weight.
    #[must_use]
    pub fn with(mut self, behavior: Behavior, weight: f64) -> Self {
        self.entries.push((behavior, weight));
        self
    }

    /// Samples one behaviour.
    ///
    /// # Panics
    ///
    /// Panics when the mix is empty or weights are invalid (experiment
    /// setup errors).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Behavior {
        let weights: Vec<f64> = self.entries.iter().map(|(_, w)| *w).collect();
        let dist = DiscreteDist::new(&weights).expect("archetype mix must have valid weights"); // hc-analyze: allow(P1): documented # Panics contract for empty or invalid mixes
        self.entries[dist.sample(rng)].0.clone()
    }

    /// Number of archetypes in the mix.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no archetypes have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Declarative population specification.
#[derive(Debug, Clone)]
pub struct PopulationBuilder {
    size: usize,
    mix: ArchetypeMix,
    skill_lo: f64,
    skill_hi: f64,
    response: ResponseTimeModel,
    first_id: u64,
}

impl PopulationBuilder {
    /// Starts a builder for `size` players with a realistic mix and skill
    /// uniform in `[0.6, 0.95]`.
    #[must_use]
    pub fn new(size: usize) -> Self {
        PopulationBuilder {
            size,
            mix: ArchetypeMix::realistic(),
            skill_lo: 0.6,
            skill_hi: 0.95,
            response: ResponseTimeModel::default(),
            first_id: 0,
        }
    }

    /// Overrides the archetype mix.
    #[must_use]
    pub fn mix(mut self, mix: ArchetypeMix) -> Self {
        self.mix = mix;
        self
    }

    /// Overrides the skill range (clamped to `[0, 1]`, swapped if
    /// reversed).
    #[must_use]
    pub fn skill_range(mut self, lo: f64, hi: f64) -> Self {
        let lo = lo.clamp(0.0, 1.0);
        let hi = hi.clamp(0.0, 1.0);
        self.skill_lo = lo.min(hi);
        self.skill_hi = lo.max(hi);
        self
    }

    /// Overrides the response-time model.
    #[must_use]
    pub fn response(mut self, model: ResponseTimeModel) -> Self {
        self.response = model;
        self
    }

    /// Sets the first [`PlayerId`] to assign (players get consecutive ids).
    #[must_use]
    pub fn first_id(mut self, id: u64) -> Self {
        self.first_id = id;
        self
    }

    /// Realizes the population.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Population {
        let players = (0..self.size)
            .map(|i| {
                let skill = if self.skill_hi > self.skill_lo {
                    rng.gen_range(self.skill_lo..self.skill_hi)
                } else {
                    self.skill_lo
                };
                PlayerProfile::new(
                    PlayerId::new(self.first_id + i as u64),
                    skill,
                    self.mix.sample(rng),
                    self.response,
                )
            })
            .collect();
        Population { players }
    }
}

/// A realized set of player profiles.
#[derive(Debug, Clone)]
pub struct Population {
    players: Vec<PlayerProfile>,
}

impl Population {
    /// Builds a population directly from explicit profiles (for hand-
    /// crafted experiment setups, e.g. planting specific colluders).
    #[must_use]
    pub fn from_profiles(players: Vec<PlayerProfile>) -> Self {
        Population { players }
    }

    /// Number of players.
    #[must_use]
    pub fn len(&self) -> usize {
        self.players.len()
    }

    /// `true` when the population is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.players.is_empty()
    }

    /// The players, in id order.
    #[must_use]
    pub fn players(&self) -> &[PlayerProfile] {
        &self.players
    }

    /// Mutable access (behaviours carry state, e.g. spam cursors).
    pub fn players_mut(&mut self) -> &mut [PlayerProfile] {
        &mut self.players
    }

    /// Looks up a player by id.
    #[must_use]
    pub fn get(&self, id: PlayerId) -> Option<&PlayerProfile> {
        self.players.iter().find(|p| p.id == id)
    }

    /// Mutable lookup by id.
    pub fn get_mut(&mut self, id: PlayerId) -> Option<&mut PlayerProfile> {
        self.players.iter_mut().find(|p| p.id == id)
    }

    /// Mutable access to two *distinct* players at once (needed to seat a
    /// pair in a session, since behaviours carry per-player state).
    /// Returns `None` when either id is missing or the ids are equal.
    pub fn get_pair_mut(
        &mut self,
        a: PlayerId,
        b: PlayerId,
    ) -> Option<(&mut PlayerProfile, &mut PlayerProfile)> {
        if a == b {
            return None;
        }
        let ia = self.players.iter().position(|p| p.id == a)?;
        let ib = self.players.iter().position(|p| p.id == b)?;
        let (lo, hi) = (ia.min(ib), ia.max(ib));
        let (left, right) = self.players.split_at_mut(hi);
        let (first, second) = (&mut left[lo], &mut right[0]);
        if ia < ib {
            Some((first, second))
        } else {
            Some((second, first))
        }
    }

    /// Count of players per archetype name.
    #[must_use]
    pub fn archetype_counts(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for p in &self.players {
            *counts.entry(p.archetype()).or_insert(0) += 1;
        }
        counts
    }

    /// Fraction of adversarial players.
    #[must_use]
    pub fn adversarial_share(&self) -> f64 {
        if self.players.is_empty() {
            return 0.0;
        }
        self.players.iter().filter(|p| p.is_adversarial()).count() as f64
            / self.players.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn build_is_deterministic_for_a_seed() {
        let builder = PopulationBuilder::new(50);
        let a = builder.build(&mut rand::rngs::StdRng::seed_from_u64(1));
        let b = builder.build(&mut rand::rngs::StdRng::seed_from_u64(1));
        assert_eq!(a.players(), b.players());
    }

    #[test]
    fn ids_are_consecutive_from_first_id() {
        let pop = PopulationBuilder::new(5).first_id(100).build(&mut rng());
        let ids: Vec<u64> = pop.players().iter().map(|p| p.id.raw()).collect();
        assert_eq!(ids, vec![100, 101, 102, 103, 104]);
    }

    #[test]
    fn realistic_mix_shares_are_plausible() {
        let pop = PopulationBuilder::new(2000).build(&mut rng());
        let counts = pop.archetype_counts();
        let honest = *counts.get("honest").unwrap_or(&0) as f64 / 2000.0;
        assert!((honest - 0.70).abs() < 0.05, "honest share {honest}");
        assert_eq!(pop.adversarial_share(), 0.0);
    }

    #[test]
    fn colluder_mix_counts() {
        let mix = ArchetypeMix::with_colluders(0.8, 0.2, "attack");
        let pop = PopulationBuilder::new(1000).mix(mix).build(&mut rng());
        let share = pop.adversarial_share();
        assert!((share - 0.2).abs() < 0.05, "colluder share {share}");
    }

    #[test]
    fn skill_range_is_respected_and_swapped() {
        let pop = PopulationBuilder::new(100)
            .skill_range(0.9, 0.3)
            .build(&mut rng());
        for p in pop.players() {
            assert!((0.3..=0.9).contains(&p.skill));
        }
        // Degenerate range.
        let pop = PopulationBuilder::new(10)
            .skill_range(0.5, 0.5)
            .build(&mut rng());
        assert!(pop.players().iter().all(|p| p.skill == 0.5));
    }

    #[test]
    fn lookup_by_id() {
        let mut pop = PopulationBuilder::new(3).build(&mut rng());
        assert!(pop.get(PlayerId::new(2)).is_some());
        assert!(pop.get(PlayerId::new(9)).is_none());
        assert!(pop.get_mut(PlayerId::new(0)).is_some());
        assert_eq!(pop.len(), 3);
        assert!(!pop.is_empty());
    }

    #[test]
    fn get_pair_mut_handles_orders_and_errors() {
        let mut pop = PopulationBuilder::new(4).build(&mut rng());
        {
            let (a, b) = pop
                .get_pair_mut(PlayerId::new(1), PlayerId::new(3))
                .unwrap();
            assert_eq!(a.id, PlayerId::new(1));
            assert_eq!(b.id, PlayerId::new(3));
        }
        {
            let (a, b) = pop
                .get_pair_mut(PlayerId::new(3), PlayerId::new(1))
                .unwrap();
            assert_eq!(a.id, PlayerId::new(3));
            assert_eq!(b.id, PlayerId::new(1));
        }
        assert!(pop
            .get_pair_mut(PlayerId::new(1), PlayerId::new(1))
            .is_none());
        assert!(pop
            .get_pair_mut(PlayerId::new(1), PlayerId::new(99))
            .is_none());
    }

    #[test]
    fn custom_mix_builds() {
        let mix = ArchetypeMix::custom()
            .with(Behavior::Honest, 0.5)
            .with(Behavior::Random, 0.5);
        assert_eq!(mix.len(), 2);
        assert!(!mix.is_empty());
        let pop = PopulationBuilder::new(200).mix(mix).build(&mut rng());
        let counts = pop.archetype_counts();
        assert!(counts.contains_key("honest"));
        assert!(counts.contains_key("random"));
    }

    #[test]
    fn all_honest_mix() {
        let pop = PopulationBuilder::new(20)
            .mix(ArchetypeMix::all_honest())
            .build(&mut rng());
        assert_eq!(pop.archetype_counts().get("honest"), Some(&20));
    }

    #[test]
    fn empty_population_edge_cases() {
        let pop = PopulationBuilder::new(0).build(&mut rng());
        assert!(pop.is_empty());
        assert_eq!(pop.adversarial_share(), 0.0);
    }
}
