//! Player behaviour policies.
//!
//! Each [`Behavior`] maps what a player *could* know (the ground-truth
//! [`LabelDistribution`] of their stimulus, the global [`Vocabulary`], the
//! taboo list) to what they actually *do*. The archetypes cover the threat
//! and noise models the paper's verification mechanisms exist to absorb:
//!
//! | Archetype | Model of |
//! |---|---|
//! | `Honest` | an attentive player; samples the truth distribution |
//! | `Noisy(e)` | attention lapses; with probability `e` emits a Zipf-random label |
//! | `Lazy(p)` | passes with probability `p` per prompt, honest otherwise |
//! | `Random` | a player mashing keys: uniform vocabulary noise |
//! | `Colluder` | the "always type X" out-of-band agreement attack |
//! | `Spammer` | a bot cycling a tiny fixed label set |
//!
//! The same policy answers verdict prompts (input-agreement) and guess
//! prompts (inversion), with skill-scaled accuracy.

use crate::vocabulary::{LabelDistribution, Vocabulary};
use hc_core::{Answer, Label};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A player's answer policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Behavior {
    /// Always samples the ground-truth distribution.
    Honest,
    /// With probability `error_rate`, emits an unrelated popular label.
    Noisy {
        /// Probability of an attention lapse per answer.
        error_rate: f64,
    },
    /// With probability `pass_rate`, passes; otherwise honest.
    Lazy {
        /// Probability of passing per prompt.
        pass_rate: f64,
    },
    /// Uniform noise over the vocabulary.
    Random,
    /// Always answers the pre-agreed token (collusion attack).
    Colluder {
        /// The out-of-band agreed label.
        strategy_label: Label,
    },
    /// Cycles a small fixed label set (spam bot).
    Spammer {
        /// The labels the bot cycles through.
        labels: Vec<Label>,
        /// Internal cycle position.
        cursor: usize,
    },
}

impl Behavior {
    /// A spammer over the given labels.
    #[must_use]
    pub fn spammer<I: IntoIterator<Item = Label>>(labels: I) -> Behavior {
        Behavior::Spammer {
            labels: labels.into_iter().collect(),
            cursor: 0,
        }
    }

    /// Short archetype name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Behavior::Honest => "honest",
            Behavior::Noisy { .. } => "noisy",
            Behavior::Lazy { .. } => "lazy",
            Behavior::Random => "random",
            Behavior::Colluder { .. } => "colluder",
            Behavior::Spammer { .. } => "spammer",
        }
    }

    /// `true` for behaviours that model deliberate attacks.
    #[must_use]
    pub fn is_adversarial(&self) -> bool {
        matches!(self, Behavior::Colluder { .. } | Behavior::Spammer { .. })
    }

    /// Produces the next free-text answer (or pass) for a stimulus whose
    /// ground truth is `truth`, avoiding `taboo` labels where the policy
    /// cares to (honest players respect the taboo list; attackers don't
    /// bother checking).
    pub fn next_answer<R: Rng + ?Sized>(
        &mut self,
        truth: &LabelDistribution,
        vocab: &Vocabulary,
        taboo: &hc_core::TabooList,
        rng: &mut R,
    ) -> Answer {
        match self {
            Behavior::Honest => honest_answer(truth, taboo, rng),
            Behavior::Noisy { error_rate } => {
                if rng.gen::<f64>() < *error_rate {
                    Answer::Text(vocab.sample(rng))
                } else {
                    honest_answer(truth, taboo, rng)
                }
            }
            Behavior::Lazy { pass_rate } => {
                if rng.gen::<f64>() < *pass_rate {
                    Answer::Pass
                } else {
                    honest_answer(truth, taboo, rng)
                }
            }
            Behavior::Random => Answer::Text(vocab.sample_uniform(rng)),
            Behavior::Colluder { strategy_label } => Answer::Text(strategy_label.clone()),
            Behavior::Spammer { labels, cursor } => {
                if labels.is_empty() {
                    return Answer::Pass;
                }
                let l = labels[*cursor % labels.len()].clone();
                *cursor += 1;
                Answer::Text(l)
            }
        }
    }

    /// Produces a same/different verdict given the evidence strength
    /// `p_same` (the probability a perfectly calibrated observer would
    /// assign to "same") and the player's `skill` in `[0, 1]`.
    ///
    /// Honest-family players answer with the calibrated verdict but flip it
    /// with probability `(1 - skill) / 2`; random/adversarial players
    /// guess.
    pub fn verdict<R: Rng + ?Sized>(&mut self, p_same: f64, skill: f64, rng: &mut R) -> Answer {
        let calibrated = p_same >= 0.5;
        match self {
            Behavior::Honest | Behavior::Noisy { .. } | Behavior::Lazy { .. } => {
                let flip_p = (1.0 - skill.clamp(0.0, 1.0)) / 2.0;
                let decision = if rng.gen::<f64>() < flip_p {
                    !calibrated
                } else {
                    calibrated
                };
                Answer::verdict(decision)
            }
            Behavior::Random | Behavior::Colluder { .. } | Behavior::Spammer { .. } => {
                Answer::verdict(rng.gen::<f64>() < 0.5)
            }
        }
    }

    /// Produces a guess for an inversion round from the hint-implied
    /// candidate distribution. `candidates` is what the hints so far point
    /// at; with probability `skill` the player picks from it, otherwise
    /// they emit vocabulary noise.
    pub fn guess<R: Rng + ?Sized>(
        &mut self,
        candidates: &LabelDistribution,
        vocab: &Vocabulary,
        skill: f64,
        rng: &mut R,
    ) -> Answer {
        match self {
            Behavior::Random => Answer::Text(vocab.sample_uniform(rng)),
            Behavior::Colluder { strategy_label } => Answer::Text(strategy_label.clone()),
            Behavior::Spammer { .. } => {
                self.next_answer(candidates, vocab, &hc_core::TabooList::new(), rng)
            }
            _ => {
                if rng.gen::<f64>() < skill.clamp(0.0, 1.0) {
                    Answer::Text(candidates.sample(rng))
                } else {
                    Answer::Text(vocab.sample(rng))
                }
            }
        }
    }
}

fn honest_answer<R: Rng + ?Sized>(
    truth: &LabelDistribution,
    taboo: &hc_core::TabooList,
    rng: &mut R,
) -> Answer {
    // Honest players visibly see the taboo list and avoid it; if the whole
    // truth support is taboo they pass (nothing left to say).
    for _ in 0..8 {
        let l = truth.sample(rng);
        if !taboo.contains(&l) {
            return Answer::Text(l);
        }
    }
    if truth.labels().iter().all(|l| taboo.contains(l)) {
        Answer::Pass
    } else {
        // Rare unlucky streak: deterministically pick the first non-taboo.
        truth
            .labels()
            .iter()
            .find(|l| !taboo.contains(l))
            .map(|l| Answer::Text(l.clone()))
            .unwrap_or(Answer::Pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::TabooList;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    fn truth() -> LabelDistribution {
        LabelDistribution::new(vec![
            (Label::new("dog"), 0.6),
            (Label::new("grass"), 0.3),
            (Label::new("ball"), 0.1),
        ])
        .unwrap()
    }

    fn vocab() -> Vocabulary {
        Vocabulary::new(100, 1.0)
    }

    #[test]
    fn honest_answers_come_from_truth() {
        let mut b = Behavior::Honest;
        let (t, v) = (truth(), vocab());
        let mut r = rng();
        for _ in 0..100 {
            match b.next_answer(&t, &v, &TabooList::new(), &mut r) {
                Answer::Text(l) => assert!(t.contains(&l)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn honest_respects_taboo() {
        let mut b = Behavior::Honest;
        let (t, v) = (truth(), vocab());
        let taboo = TabooList::from_labels([Label::new("dog")]);
        let mut r = rng();
        for _ in 0..100 {
            if let Answer::Text(l) = b.next_answer(&t, &v, &taboo, &mut r) {
                assert_ne!(l, Label::new("dog"));
            }
        }
    }

    #[test]
    fn honest_passes_when_everything_is_taboo() {
        let mut b = Behavior::Honest;
        let (t, v) = (truth(), vocab());
        let taboo =
            TabooList::from_labels([Label::new("dog"), Label::new("grass"), Label::new("ball")]);
        let mut r = rng();
        assert_eq!(b.next_answer(&t, &v, &taboo, &mut r), Answer::Pass);
    }

    #[test]
    fn noisy_error_rate_shows_up() {
        let mut b = Behavior::Noisy { error_rate: 0.5 };
        let (t, v) = (truth(), vocab());
        let mut r = rng();
        let n = 2000;
        let off_truth = (0..n)
            .filter(|_| match b.next_answer(&t, &v, &TabooList::new(), &mut r) {
                Answer::Text(l) => !t.contains(&l),
                _ => false,
            })
            .count();
        let frac = off_truth as f64 / n as f64;
        // Half the answers are vocab noise; a tiny share of noise draws can
        // collide with truth labels so allow slack.
        assert!((0.35..0.6).contains(&frac), "off-truth frac {frac}");
    }

    #[test]
    fn lazy_passes_at_rate() {
        let mut b = Behavior::Lazy { pass_rate: 0.3 };
        let (t, v) = (truth(), vocab());
        let mut r = rng();
        let n = 2000;
        let passes = (0..n)
            .filter(|_| {
                matches!(
                    b.next_answer(&t, &v, &TabooList::new(), &mut r),
                    Answer::Pass
                )
            })
            .count();
        assert!((passes as f64 / n as f64 - 0.3).abs() < 0.05);
    }

    #[test]
    fn colluder_always_answers_strategy() {
        let mut b = Behavior::Colluder {
            strategy_label: Label::new("zzz"),
        };
        let (t, v) = (truth(), vocab());
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                b.next_answer(&t, &v, &TabooList::new(), &mut r),
                Answer::Text(Label::new("zzz"))
            );
        }
        assert!(b.is_adversarial());
    }

    #[test]
    fn spammer_cycles_labels() {
        let mut b = Behavior::spammer([Label::new("a"), Label::new("b")]);
        let (t, v) = (truth(), vocab());
        let mut r = rng();
        let a1 = b.next_answer(&t, &v, &TabooList::new(), &mut r);
        let a2 = b.next_answer(&t, &v, &TabooList::new(), &mut r);
        let a3 = b.next_answer(&t, &v, &TabooList::new(), &mut r);
        assert_eq!(a1, Answer::Text(Label::new("a")));
        assert_eq!(a2, Answer::Text(Label::new("b")));
        assert_eq!(a3, Answer::Text(Label::new("a")));
        let mut empty = Behavior::spammer([]);
        assert_eq!(
            empty.next_answer(&t, &v, &TabooList::new(), &mut r),
            Answer::Pass
        );
    }

    #[test]
    fn verdict_accuracy_scales_with_skill() {
        let mut b = Behavior::Honest;
        let mut r = rng();
        let n = 4000;
        let correct_hi = (0..n)
            .filter(|_| b.verdict(0.9, 1.0, &mut r) == Answer::verdict(true))
            .count();
        let correct_lo = (0..n)
            .filter(|_| b.verdict(0.9, 0.2, &mut r) == Answer::verdict(true))
            .count();
        assert_eq!(correct_hi, n, "perfect skill never flips");
        let lo_rate = correct_lo as f64 / n as f64;
        assert!(
            (lo_rate - 0.6).abs() < 0.05,
            "skill 0.2 flips 40%: {lo_rate}"
        );
    }

    #[test]
    fn random_verdicts_are_coin_flips() {
        let mut b = Behavior::Random;
        let mut r = rng();
        let n = 4000;
        let same = (0..n)
            .filter(|_| b.verdict(1.0, 1.0, &mut r) == Answer::verdict(true))
            .count();
        assert!((same as f64 / n as f64 - 0.5).abs() < 0.05);
    }

    #[test]
    fn guess_uses_candidates_at_high_skill() {
        let mut b = Behavior::Honest;
        let v = vocab();
        let candidates =
            LabelDistribution::uniform(vec![Label::new("milk"), Label::new("cream")]).unwrap();
        let mut r = rng();
        for _ in 0..50 {
            if let Answer::Text(l) = b.guess(&candidates, &v, 1.0, &mut r) {
                assert!(candidates.contains(&l));
            }
        }
    }

    #[test]
    fn names_cover_archetypes() {
        assert_eq!(Behavior::Honest.name(), "honest");
        assert_eq!(Behavior::Noisy { error_rate: 0.1 }.name(), "noisy");
        assert_eq!(Behavior::Lazy { pass_rate: 0.1 }.name(), "lazy");
        assert_eq!(Behavior::Random.name(), "random");
        assert_eq!(
            Behavior::Colluder {
                strategy_label: Label::new("x")
            }
            .name(),
            "colluder"
        );
        assert_eq!(Behavior::spammer([]).name(), "spammer");
        assert!(!Behavior::Honest.is_adversarial());
    }
}
