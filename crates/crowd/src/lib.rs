//! # hc-crowd — the simulated crowd substrate
//!
//! The deployed systems surveyed by the target paper ran on live web
//! traffic: hundreds of thousands of players with wildly varying skill,
//! vocabulary, patience and honesty. Reproducing the paper's *measurable*
//! results (label quality, throughput, ALP, attack resistance) requires a
//! population whose **statistics** match, not the humans themselves. This
//! crate is that population:
//!
//! * [`vocabulary`] — a Zipf-weighted global label vocabulary and per-task
//!   ground-truth [`LabelDistribution`]s players perceive through.
//! * [`behavior`] — answer policies: honest, noisy, lazy, random,
//!   colluding, spamming. Each maps a ground-truth distribution to the
//!   stream of answers a player of that type would produce.
//! * [`player`] — the per-player bundle: skill, speed, behaviour.
//! * [`population`] — mixes of archetypes ("85% honest, 10% noisy, 5%
//!   colluders") built reproducibly from a seed.
//! * [`engagement`] — session-length and lifetime models; this is where
//!   ALP (average lifetime play) comes from, calibrated to the published
//!   ESP Game numbers (mean lifetime ≈ 91 minutes).
//! * [`response`] — per-answer latency models (think time + typing).
//!
//! Everything is deterministic given an [`RngFactory`](hc_sim::RngFactory)
//! stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod behavior;
pub mod engagement;
pub mod learning;
pub mod player;
pub mod population;
pub mod response;
pub mod vocabulary;

pub use behavior::Behavior;
pub use engagement::{EngagementModel, LifetimePlan};
pub use learning::{SkillDynamics, SkillState};
pub use player::PlayerProfile;
pub use population::{ArchetypeMix, Population, PopulationBuilder};
pub use response::ResponseTimeModel;
pub use vocabulary::{LabelDistribution, Vocabulary};
