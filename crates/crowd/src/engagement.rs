//! Engagement: session lengths and lifetime play.
//!
//! ALP — average lifetime play — is the paper's "enjoyability" metric: the
//! expected total hours one player ever spends in the game. The published
//! ESP Game figure is ≈ 91 minutes, with a heavy right tail (some players
//! spent 50+ hours). [`EngagementModel`] reproduces that shape as:
//!
//! * session length ~ LogNormal (minutes),
//! * sessions per lifetime ~ Geometric (players return until they churn).
//!
//! Expected ALP = mean sessions × mean session length, available in closed
//! form for calibration ([`EngagementModel::expected_alp_hours`]), and
//! experiment F6 sweeps the parameters to show expected contribution
//! scaling linearly in ALP at fixed throughput.

use hc_sim::dist::{Geometric, LogNormal};
use hc_sim::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Session-length and churn parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngagementModel {
    /// Log-space mean of session length (minutes).
    pub session_mu: f64,
    /// Log-space standard deviation of session length.
    pub session_sigma: f64,
    /// Per-session churn probability (geometric parameter).
    pub churn_rate: f64,
}

impl EngagementModel {
    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns an error string when `churn_rate` is outside `(0, 1]` or
    /// the log-normal parameters are invalid.
    pub fn new(session_mu: f64, session_sigma: f64, churn_rate: f64) -> Result<Self, String> {
        LogNormal::new(session_mu, session_sigma).map_err(|e| e.to_string())?;
        Geometric::new(churn_rate).map_err(|e| e.to_string())?;
        Ok(EngagementModel {
            session_mu,
            session_sigma,
            churn_rate,
        })
    }

    /// The calibration used for experiment T1: mean session ≈ 9.1 min and
    /// mean 10 sessions per lifetime ⇒ expected ALP ≈ 91 min, matching the
    /// published ESP Game figure.
    #[must_use]
    pub fn esp_calibrated() -> Self {
        // LogNormal with median 6.5 min, sigma 0.82 => mean ≈ 9.1 min.
        EngagementModel {
            session_mu: 6.5_f64.ln(),
            session_sigma: 0.82,
            churn_rate: 0.1,
        }
    }

    /// Mean session length in minutes.
    #[must_use]
    pub fn mean_session_mins(&self) -> f64 {
        (self.session_mu + 0.5 * self.session_sigma * self.session_sigma).exp()
    }

    /// Mean sessions per lifetime.
    #[must_use]
    pub fn mean_sessions(&self) -> f64 {
        1.0 / self.churn_rate
    }

    /// Closed-form expected ALP in hours.
    #[must_use]
    pub fn expected_alp_hours(&self) -> f64 {
        self.mean_session_mins() * self.mean_sessions() / 60.0
    }

    /// Samples one player's complete lifetime.
    pub fn sample_lifetime<R: Rng + ?Sized>(&self, rng: &mut R) -> LifetimePlan {
        let sessions = Geometric::new(self.churn_rate)
            .expect("validated") // hc-analyze: allow(P1): churn_rate validated by the constructor
            .sample(rng)
            .min(10_000); // tail guard
        let session_dist = LogNormal::new(self.session_mu, self.session_sigma).expect("validated"); // hc-analyze: allow(P1): mu/sigma validated by the constructor
        let session_lengths = (0..sessions)
            .map(|_| SimDuration::from_secs_f64(session_dist.sample(rng) * 60.0))
            .collect();
        if hc_obs::active() {
            hc_obs::counter_now("crowd.lifetimes_sampled", 1);
        }
        LifetimePlan { session_lengths }
    }
}

/// One sampled player lifetime: how long each of their sessions lasts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimePlan {
    /// Length of each session, in play order.
    pub session_lengths: Vec<SimDuration>,
}

impl LifetimePlan {
    /// Number of sessions before churn.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.session_lengths.len()
    }

    /// Total lifetime play.
    #[must_use]
    pub fn total_play(&self) -> SimDuration {
        self.session_lengths
            .iter()
            .fold(SimDuration::ZERO, |acc, d| acc + *d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(31)
    }

    #[test]
    fn constructor_validates() {
        assert!(EngagementModel::new(1.0, 0.5, 0.1).is_ok());
        assert!(EngagementModel::new(1.0, 0.5, 0.0).is_err());
        assert!(EngagementModel::new(1.0, -0.5, 0.1).is_err());
        assert!(EngagementModel::new(f64::NAN, 0.5, 0.1).is_err());
    }

    #[test]
    fn esp_calibration_hits_91_minutes() {
        let m = EngagementModel::esp_calibrated();
        let alp_mins = m.expected_alp_hours() * 60.0;
        assert!((alp_mins - 91.0).abs() < 5.0, "ALP≈{alp_mins}min");
    }

    #[test]
    fn sampled_alp_matches_closed_form() {
        let m = EngagementModel::esp_calibrated();
        let mut r = rng();
        let n = 3000;
        let mut total_hours = 0.0;
        for _ in 0..n {
            total_hours += m.sample_lifetime(&mut r).total_play().as_hours_f64();
        }
        let mean = total_hours / f64::from(n);
        let expected = m.expected_alp_hours();
        assert!(
            (mean - expected).abs() / expected < 0.12,
            "sampled {mean:.3} vs expected {expected:.3}"
        );
    }

    #[test]
    fn lifetimes_have_at_least_one_session() {
        let m = EngagementModel::esp_calibrated();
        let mut r = rng();
        for _ in 0..200 {
            let plan = m.sample_lifetime(&mut r);
            assert!(plan.session_count() >= 1);
            assert!(plan.total_play() > SimDuration::ZERO);
        }
    }

    #[test]
    fn higher_churn_means_shorter_lifetimes() {
        let sticky = EngagementModel::new(2.0, 0.5, 0.05).unwrap();
        let churny = EngagementModel::new(2.0, 0.5, 0.5).unwrap();
        assert!(sticky.expected_alp_hours() > churny.expected_alp_hours());
        assert!((sticky.mean_sessions() - 20.0).abs() < 1e-12);
        assert!((churny.mean_sessions() - 2.0).abs() < 1e-12);
    }
}
