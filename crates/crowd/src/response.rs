//! Per-answer latency.
//!
//! Round and session clocks in the simulation advance by the time players
//! take to think and type. The published ESP Game numbers imply a handful
//! of guesses in well under 150 s per image; a log-normal think time plus
//! linear typing time reproduces that shape.

use hc_core::Label;
use hc_sim::dist::LogNormal;
use hc_sim::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Latency model: `think ~ LogNormal` plus `typing = per_char × len`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseTimeModel {
    /// Log-space mean of think time (seconds).
    pub think_mu: f64,
    /// Log-space standard deviation of think time.
    pub think_sigma: f64,
    /// Seconds per character typed.
    pub per_char_secs: f64,
}

impl Default for ResponseTimeModel {
    /// Median think ≈ 2.2 s, mean ≈ 3 s, ~0.15 s/char — a casual typist.
    fn default() -> Self {
        ResponseTimeModel {
            think_mu: 0.8,
            think_sigma: 0.75,
            per_char_secs: 0.15,
        }
    }
}

impl ResponseTimeModel {
    /// A fast player (half the default latencies).
    #[must_use]
    pub fn fast() -> Self {
        ResponseTimeModel {
            think_mu: 0.8 - std::f64::consts::LN_2,
            think_sigma: 0.6,
            per_char_secs: 0.08,
        }
    }

    /// A slow player (double the default think time).
    #[must_use]
    pub fn slow() -> Self {
        ResponseTimeModel {
            think_mu: 0.8 + std::f64::consts::LN_2,
            think_sigma: 0.9,
            per_char_secs: 0.25,
        }
    }

    /// Samples the latency for producing `label` (pass = empty text).
    pub fn sample<R: Rng + ?Sized>(&self, label: Option<&Label>, rng: &mut R) -> SimDuration {
        let think = LogNormal::new(self.think_mu, self.think_sigma)
            .expect("model parameters validated by construction") // hc-analyze: allow(P1): model parameters validated at construction
            .sample(rng);
        let typing = label.map_or(0.0, |l| l.len() as f64 * self.per_char_secs);
        SimDuration::from_secs_f64((think + typing).max(0.05))
    }

    /// Expected think time in seconds (log-normal mean).
    #[must_use]
    pub fn mean_think_secs(&self) -> f64 {
        (self.think_mu + 0.5 * self.think_sigma * self.think_sigma).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(9)
    }

    #[test]
    fn latency_is_positive_and_reasonable() {
        let m = ResponseTimeModel::default();
        let mut r = rng();
        let mut total = 0.0;
        let n = 5000;
        for _ in 0..n {
            let d = m.sample(Some(&Label::new("dog")), &mut r);
            assert!(d.as_secs_f64() >= 0.05);
            total += d.as_secs_f64();
        }
        let mean = total / f64::from(n);
        let expected = m.mean_think_secs() + 3.0 * 0.15;
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "mean={mean} expected≈{expected}"
        );
    }

    #[test]
    fn typing_time_scales_with_length() {
        let m = ResponseTimeModel {
            think_mu: -10.0, // negligible think time
            think_sigma: 0.0,
            per_char_secs: 1.0,
        };
        let mut r = rng();
        let short = m.sample(Some(&Label::new("ab")), &mut r);
        let long = m.sample(Some(&Label::new("abcdefgh")), &mut r);
        assert!(long.as_secs_f64() > short.as_secs_f64() + 5.0);
        let pass = m.sample(None, &mut r);
        assert!(pass.as_secs_f64() < 0.1);
    }

    #[test]
    fn presets_are_ordered() {
        assert!(
            ResponseTimeModel::fast().mean_think_secs()
                < ResponseTimeModel::default().mean_think_secs()
        );
        assert!(
            ResponseTimeModel::default().mean_think_secs()
                < ResponseTimeModel::slow().mean_think_secs()
        );
    }
}
