//! Property tests over the crowd substrate: behaviours, populations and
//! engagement must satisfy their contracts for *all* parameters.

use hc_core::{Answer, Label, TabooList};
use hc_crowd::{
    ArchetypeMix, Behavior, EngagementModel, LabelDistribution, PopulationBuilder,
    ResponseTimeModel, SkillDynamics, Vocabulary,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn truth() -> LabelDistribution {
    LabelDistribution::new(vec![
        (Label::new("alpha"), 0.5),
        (Label::new("beta"), 0.3),
        (Label::new("gamma"), 0.2),
    ])
    .unwrap()
}

proptest! {
    #[test]
    fn honest_answers_never_violate_taboo(seed in 0u64..500) {
        let mut b = Behavior::Honest;
        let t = truth();
        let vocab = Vocabulary::new(50, 1.0);
        let taboo = TabooList::from_labels([Label::new("alpha")]);
        let mut r = rng(seed);
        for _ in 0..50 {
            if let Answer::Text(l) = b.next_answer(&t, &vocab, &taboo, &mut r) {
                prop_assert!(!taboo.contains(&l));
                prop_assert!(t.contains(&l), "honest answers stay truthful");
            }
        }
    }

    #[test]
    fn colluders_are_perfectly_predictable(seed in 0u64..100, word in "[a-z]{1,8}") {
        let mut b = Behavior::Colluder { strategy_label: Label::new(&word) };
        let t = truth();
        let vocab = Vocabulary::new(50, 1.0);
        let mut r = rng(seed);
        for _ in 0..10 {
            prop_assert_eq!(
                b.next_answer(&t, &vocab, &TabooList::new(), &mut r),
                Answer::Text(Label::new(&word))
            );
        }
    }

    #[test]
    fn verdict_is_always_a_verdict_or_deterministically_shaped(
        seed in 0u64..100,
        p_same in 0.0f64..1.0,
        skill in 0.0f64..1.0,
    ) {
        let mut r = rng(seed);
        for mut b in [
            Behavior::Honest,
            Behavior::Random,
            Behavior::Noisy { error_rate: 0.5 },
        ] {
            let v = b.verdict(p_same, skill, &mut r);
            prop_assert!(matches!(v, Answer::Verdict(_)));
        }
    }

    #[test]
    fn population_sizes_and_ids_are_exact(n in 0usize..200, first in 0u64..1000) {
        let pop = PopulationBuilder::new(n).first_id(first).build(&mut rng(1));
        prop_assert_eq!(pop.len(), n);
        for (i, p) in pop.players().iter().enumerate() {
            prop_assert_eq!(p.id.raw(), first + i as u64);
            prop_assert!((0.0..=1.0).contains(&p.skill));
        }
    }

    #[test]
    fn colluder_share_matches_mix(share in 0.0f64..1.0, seed in 0u64..50) {
        let mix = ArchetypeMix::with_colluders(1.0 - share, share, "x");
        let pop = PopulationBuilder::new(500).mix(mix).build(&mut rng(seed));
        let measured = pop.adversarial_share();
        prop_assert!((measured - share).abs() < 0.08, "share {share} measured {measured}");
    }

    #[test]
    fn engagement_lifetimes_are_positive_and_finite(
        median in 0.5f64..30.0,
        sigma in 0.0f64..1.5,
        churn in 0.01f64..1.0,
        seed in 0u64..50,
    ) {
        let m = EngagementModel::new(median.ln(), sigma, churn).unwrap();
        let mut r = rng(seed);
        let plan = m.sample_lifetime(&mut r);
        prop_assert!(plan.session_count() >= 1);
        prop_assert!(plan.total_play().as_secs_f64() > 0.0);
        prop_assert!(m.expected_alp_hours() > 0.0);
    }

    #[test]
    fn response_latency_is_bounded_below(seed in 0u64..200) {
        let m = ResponseTimeModel::default();
        let mut r = rng(seed);
        let l = m.sample(Some(&Label::new("word")), &mut r);
        prop_assert!(l.as_secs_f64() >= 0.05);
    }

    #[test]
    fn effective_skill_is_always_in_unit_interval(
        base in -0.5f64..1.5,
        rounds in 0u64..100_000,
        minutes in 0.0f64..10_000.0,
    ) {
        let d = SkillDynamics::default();
        let e = d.effective_skill(base.clamp(0.0, 1.0), rounds, minutes);
        prop_assert!((0.0..=1.0).contains(&e));
    }

    #[test]
    fn learning_multiplier_is_monotone_in_rounds(r1 in 0u64..10_000, r2 in 0u64..10_000) {
        let d = SkillDynamics::default();
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(d.learning_multiplier(lo) <= d.learning_multiplier(hi) + 1e-12);
    }

    #[test]
    fn fatigue_multiplier_is_monotone_in_minutes(m1 in 0.0f64..1000.0, m2 in 0.0f64..1000.0) {
        let d = SkillDynamics::default();
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        prop_assert!(d.fatigue_multiplier(lo) >= d.fatigue_multiplier(hi) - 1e-12);
    }
}
