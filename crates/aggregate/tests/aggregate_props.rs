//! Property tests over the aggregation algorithms.

use hc_aggregate::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

fn synthetic(
    seed: u64,
    tasks: usize,
    classes: usize,
    workers: usize,
    accuracy: f64,
    redundancy: usize,
) -> SyntheticWorld {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    SyntheticCrowd::new(tasks, classes, workers, accuracy).generate(redundancy, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dawid_skene_posteriors_are_distributions(
        seed in 0u64..100,
        tasks in 5usize..40,
        classes in 2usize..5,
        accuracy in 0.3f64..1.0,
    ) {
        let world = synthetic(seed, tasks, classes, 10, accuracy, 4);
        let fit = DawidSkene::default().fit(&world.matrix);
        for post in &fit.posteriors {
            let sum: f64 = post.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "posterior sums to {sum}");
            prop_assert!(post.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
        }
        // Priors are a distribution too.
        let prior_sum: f64 = fit.priors.iter().sum();
        prop_assert!((prior_sum - 1.0).abs() < 1e-6);
        // Confusion rows are stochastic.
        for w in &fit.confusion {
            for row in w {
                let s: f64 = row.iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn majority_answers_every_labeled_task(
        seed in 0u64..100,
        tasks in 5usize..40,
    ) {
        let world = synthetic(seed, tasks, 3, 8, 0.7, 3);
        let est = MajorityVote.aggregate(&world.matrix);
        prop_assert_eq!(est.len(), tasks);
        prop_assert!(est.iter().all(|e| e.is_some()), "redundancy 3 labels everything");
    }

    #[test]
    fn threshold_coverage_is_antitone_in_k(seed in 0u64..100, tasks in 5usize..40) {
        let world = synthetic(seed, tasks, 3, 10, 0.7, 5);
        let mut last_coverage = f64::INFINITY;
        for k in 1..=5 {
            let est = AgreementThreshold::new(k).aggregate(&world.matrix);
            let q = score(&est, &world.gold);
            prop_assert!(q.coverage <= last_coverage + 1e-12);
            last_coverage = q.coverage;
        }
    }

    #[test]
    fn score_identities_hold(
        estimates in prop::collection::vec(prop::option::of(0usize..4), 1..60),
    ) {
        let gold: Vec<usize> = (0..estimates.len()).map(|i| i % 4).collect();
        let q = score(&estimates, &gold);
        prop_assert!((q.yield_rate - q.accuracy * q.coverage).abs() < 1e-12);
        prop_assert!(q.correct <= q.answered);
        prop_assert!(q.answered <= q.total);
        prop_assert!((0.0..=1.0).contains(&q.accuracy));
        prop_assert!((0.0..=1.0).contains(&q.coverage));
    }

    #[test]
    fn confusion_matrix_accounts_for_everything(
        estimates in prop::collection::vec(prop::option::of(0usize..3), 1..60),
    ) {
        let gold: Vec<usize> = (0..estimates.len()).map(|i| (i * 7) % 3).collect();
        let m = ConfusionMatrix::from_estimates(&estimates, &gold, 3);
        prop_assert_eq!(
            m.answered() + m.abstained(),
            estimates.len() as u64
        );
        // Pooled accuracy agrees with `score`.
        let q = score(&estimates, &gold);
        prop_assert!((m.accuracy() - q.accuracy).abs() < 1e-12);
    }

    #[test]
    fn perfect_workers_make_every_method_perfect(seed in 0u64..50, tasks in 5usize..30) {
        let world = synthetic(seed, tasks, 4, 8, 1.0, 3);
        for est in [
            MajorityVote.aggregate(&world.matrix),
            AgreementThreshold::new(2).aggregate(&world.matrix),
            DawidSkene::default().aggregate(&world.matrix),
        ] {
            let q = score(&est, &world.gold);
            prop_assert!((q.accuracy - 1.0).abs() < 1e-12, "accuracy {}", q.accuracy);
        }
    }
}
