//! # hc-aggregate — label aggregation for human computation
//!
//! GWAP verification (agreement, repetition) is one point in a design
//! space the broader human-computation literature explores with redundant
//! labeling and statistical aggregation. Experiment T2 compares the
//! platform's agreement mechanism against the standard baselines, all
//! implemented here:
//!
//! * [`MajorityVote`] — plurality over redundant labels.
//! * [`WeightedVote`] — plurality with per-worker weights (e.g. gold-task
//!   accuracy).
//! * [`AgreementThreshold`] — accept only labels with at least `k`
//!   supporting workers (the GWAP repetition rule, restated over a label
//!   matrix).
//! * [`DawidSkene`] — the classic EM estimator of per-worker confusion
//!   matrices and posterior task labels (Dawid & Skene, 1979).
//!
//! Plus [`quality`] scoring against gold labels and a [`synthetic`]
//! workload generator with controllable worker accuracy mixes.
//!
//! ## Example
//!
//! ```
//! use hc_aggregate::prelude::*;
//! use rand::SeedableRng;
//!
//! // 50 tasks, 4 classes, 5 labels per task from a 70%-accurate crowd.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let world = SyntheticCrowd::new(50, 4, 20, 0.7).generate(5, &mut rng);
//!
//! let majority = MajorityVote.aggregate(&world.matrix);
//! let ds = DawidSkene::default().aggregate(&world.matrix);
//! let q_mv = score(&majority, &world.gold);
//! let q_ds = score(&ds, &world.gold);
//! assert!(q_mv.accuracy > 0.7);
//! assert!(q_ds.accuracy >= q_mv.accuracy - 0.1); // DS is competitive
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod confusion;
pub mod data;
pub mod dawid_skene;
pub mod majority;
pub mod quality;
pub mod synthetic;
pub mod threshold;
pub mod weighted;

pub use confusion::ConfusionMatrix;
pub use data::{Assignment, LabelMatrix};
pub use dawid_skene::{DawidSkene, DawidSkeneFit};
pub use majority::MajorityVote;
pub use quality::{score, QualityReport};
pub use synthetic::{SyntheticCrowd, SyntheticWorld};
pub use threshold::AgreementThreshold;
pub use weighted::WeightedVote;

/// An aggregation strategy over a redundant label matrix.
pub trait Aggregator {
    /// Produces one estimated class per task (`None` when the strategy
    /// abstains, e.g. below an agreement threshold).
    fn aggregate(&self, matrix: &data::LabelMatrix) -> Vec<Option<usize>>;

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// Convenience re-exports.
pub mod prelude {
    pub use crate::confusion::ConfusionMatrix;
    pub use crate::data::{Assignment, LabelMatrix};
    pub use crate::dawid_skene::{DawidSkene, DawidSkeneFit};
    pub use crate::majority::MajorityVote;
    pub use crate::quality::{score, QualityReport};
    pub use crate::synthetic::{SyntheticCrowd, SyntheticWorld};
    pub use crate::threshold::AgreementThreshold;
    pub use crate::weighted::WeightedVote;
    pub use crate::Aggregator;
}
