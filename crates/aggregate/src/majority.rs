//! Plurality (majority) voting.

use crate::data::LabelMatrix;
use crate::Aggregator;

/// Plurality vote: each task gets its most-voted class; ties break to the
/// lowest class index (deterministic); unlabeled tasks abstain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MajorityVote;

impl Aggregator for MajorityVote {
    fn aggregate(&self, matrix: &LabelMatrix) -> Vec<Option<usize>> {
        (0..matrix.n_tasks())
            .map(|t| {
                let counts = matrix.class_counts(t);
                let best = counts.iter().copied().max().unwrap_or(0);
                if best == 0 {
                    None
                } else {
                    counts.iter().position(|&c| c == best)
                }
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "majority"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Assignment;

    fn push(m: &mut LabelMatrix, task: usize, worker: usize, class: usize) {
        m.push(Assignment {
            task,
            worker,
            class,
        });
    }

    #[test]
    fn plurality_wins() {
        let mut m = LabelMatrix::new(1, 3);
        push(&mut m, 0, 0, 2);
        push(&mut m, 0, 1, 2);
        push(&mut m, 0, 2, 1);
        assert_eq!(MajorityVote.aggregate(&m), vec![Some(2)]);
    }

    #[test]
    fn ties_break_to_lowest_class() {
        let mut m = LabelMatrix::new(1, 3);
        push(&mut m, 0, 0, 2);
        push(&mut m, 0, 1, 0);
        assert_eq!(MajorityVote.aggregate(&m), vec![Some(0)]);
    }

    #[test]
    fn unlabeled_tasks_abstain() {
        let m = LabelMatrix::new(2, 2);
        assert_eq!(MajorityVote.aggregate(&m), vec![None, None]);
        assert_eq!(MajorityVote.name(), "majority");
    }
}
