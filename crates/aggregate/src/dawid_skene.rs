//! Dawid–Skene EM aggregation.
//!
//! The classic estimator (Dawid & Skene, 1979): alternately estimate
//! posterior task labels from worker confusion matrices (E-step) and
//! re-estimate confusion matrices and class priors from the posteriors
//! (M-step), initialized from majority vote. Recovers reliable answers
//! from noisy redundant labels and identifies bad workers — the strongest
//! classical baseline in experiment T2.

use crate::data::LabelMatrix;
use crate::Aggregator;

/// EM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DawidSkene {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the max posterior change.
    pub tol: f64,
    /// Laplace smoothing added to confusion counts.
    pub smoothing: f64,
    /// Extra pseudo-count on the *diagonal* of every worker's confusion
    /// matrix — a weak honesty prior. Vanilla Dawid–Skene is unidentifiable
    /// on tiny datasets (EM can settle on a class-permuted fixed point even
    /// with unanimous perfect labels); anchoring the diagonal removes that
    /// degeneracy while real adversaries still overwhelm it with data.
    pub diagonal_prior: f64,
}

impl Default for DawidSkene {
    fn default() -> Self {
        DawidSkene {
            max_iters: 50,
            tol: 1e-6,
            smoothing: 0.01,
            diagonal_prior: 0.5,
        }
    }
}

/// The fitted model: posteriors, worker confusion matrices, priors.
#[derive(Debug, Clone)]
pub struct DawidSkeneFit {
    /// `posteriors[task][class]` — P(true class | data).
    pub posteriors: Vec<Vec<f64>>,
    /// `confusion[worker][true][observed]` — row-stochastic confusion.
    pub confusion: Vec<Vec<Vec<f64>>>,
    /// Class priors.
    pub priors: Vec<f64>,
    /// EM iterations executed.
    pub iterations: usize,
}

impl DawidSkeneFit {
    /// MAP class per task (`None` for tasks with no labels at all).
    #[must_use]
    pub fn map_labels(&self, matrix: &LabelMatrix) -> Vec<Option<usize>> {
        self.posteriors
            .iter()
            .enumerate()
            .map(|(t, post)| {
                if matrix.labels_for(t).is_empty() {
                    return None;
                }
                let mut best = 0;
                for c in 1..post.len() {
                    if post[c] > post[best] {
                        best = c;
                    }
                }
                Some(best)
            })
            .collect()
    }

    /// A worker's estimated accuracy: mean diagonal of their confusion
    /// matrix weighted by priors.
    #[must_use]
    pub fn worker_accuracy(&self, worker: usize) -> Option<f64> {
        let conf = self.confusion.get(worker)?;
        let acc: f64 = conf
            .iter()
            .enumerate()
            .map(|(true_c, row)| self.priors[true_c] * row[true_c])
            .sum();
        Some(acc)
    }
}

impl DawidSkene {
    /// Runs EM and returns the full fit.
    #[must_use]
    pub fn fit(&self, matrix: &LabelMatrix) -> DawidSkeneFit {
        let n_tasks = matrix.n_tasks();
        let n_classes = matrix.n_classes();
        let n_workers = matrix.n_workers().max(1);

        // Initialize posteriors from (soft) majority vote.
        let mut posteriors: Vec<Vec<f64>> = (0..n_tasks)
            .map(|t| {
                let counts = matrix.class_counts(t);
                let total: usize = counts.iter().sum();
                if total == 0 {
                    vec![1.0 / n_classes as f64; n_classes]
                } else {
                    counts
                        .iter()
                        .map(|&c| (c as f64 + 0.1) / (total as f64 + 0.1 * n_classes as f64))
                        .collect()
                }
            })
            .collect();

        let mut confusion = vec![vec![vec![0.0; n_classes]; n_classes]; n_workers];
        let mut priors = vec![1.0 / n_classes as f64; n_classes];
        let mut iterations = 0;

        for iter in 0..self.max_iters {
            iterations = iter + 1;
            // ---- M-step: confusion matrices and priors from posteriors.
            for w in &mut confusion {
                for (true_c, row) in w.iter_mut().enumerate() {
                    for (obs_c, x) in row.iter_mut().enumerate() {
                        *x = self.smoothing
                            + if obs_c == true_c {
                                self.diagonal_prior
                            } else {
                                0.0
                            };
                    }
                }
            }
            for a in matrix.iter() {
                let post = &posteriors[a.task];
                for (true_c, &p) in post.iter().enumerate() {
                    confusion[a.worker][true_c][a.class] += p;
                }
            }
            for w in &mut confusion {
                for row in w.iter_mut() {
                    let sum: f64 = row.iter().sum();
                    if sum > 0.0 {
                        row.iter_mut().for_each(|x| *x /= sum);
                    }
                }
            }
            let mut prior_counts = vec![self.smoothing; n_classes];
            for post in &posteriors {
                for (c, &p) in post.iter().enumerate() {
                    prior_counts[c] += p;
                }
            }
            let prior_sum: f64 = prior_counts.iter().sum();
            priors = prior_counts.into_iter().map(|c| c / prior_sum).collect();

            // ---- E-step: posteriors from confusion matrices (log space).
            let mut max_delta = 0.0f64;
            #[allow(clippy::needless_range_loop)] // t indexes two arrays
            for t in 0..n_tasks {
                let labels = matrix.labels_for(t);
                if labels.is_empty() {
                    continue;
                }
                let mut log_post: Vec<f64> = priors.iter().map(|&p| p.max(1e-300).ln()).collect();
                for a in labels {
                    for (true_c, lp) in log_post.iter_mut().enumerate() {
                        *lp += confusion[a.worker][true_c][a.class].max(1e-300).ln();
                    }
                }
                // Normalize via log-sum-exp.
                let max_lp = log_post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mut new_post: Vec<f64> =
                    log_post.iter().map(|&lp| (lp - max_lp).exp()).collect();
                let sum: f64 = new_post.iter().sum();
                new_post.iter_mut().for_each(|p| *p /= sum);
                for c in 0..n_classes {
                    max_delta = max_delta.max((new_post[c] - posteriors[t][c]).abs());
                }
                posteriors[t] = new_post;
            }
            if max_delta < self.tol {
                break;
            }
        }

        if hc_obs::active() {
            hc_obs::counter_now("aggregate.em_fits", 1);
            hc_obs::counter_now("aggregate.em_iterations", iterations as u64);
        }
        DawidSkeneFit {
            posteriors,
            confusion,
            priors,
            iterations,
        }
    }
}

impl Aggregator for DawidSkene {
    fn aggregate(&self, matrix: &LabelMatrix) -> Vec<Option<usize>> {
        self.fit(matrix).map_labels(matrix)
    }

    fn name(&self) -> &'static str {
        "dawid-skene"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Assignment;
    use crate::synthetic::SyntheticCrowd;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn unanimous_data_recovers_exactly() {
        let mut m = LabelMatrix::new(3, 2);
        for t in 0..3 {
            for w in 0..3 {
                m.push(Assignment {
                    task: t,
                    worker: w,
                    class: t % 2,
                });
            }
        }
        let labels = DawidSkene::default().aggregate(&m);
        assert_eq!(labels, vec![Some(0), Some(1), Some(0)]);
    }

    #[test]
    fn empty_tasks_abstain() {
        let mut m = LabelMatrix::new(2, 2);
        m.push(Assignment {
            task: 0,
            worker: 0,
            class: 1,
        });
        let labels = DawidSkene::default().aggregate(&m);
        assert_eq!(labels[0], Some(1));
        assert_eq!(labels[1], None);
    }

    #[test]
    fn outperforms_majority_with_identifiable_bad_workers() {
        // 5 good workers (90%) + 5 adversarial workers (always class 0):
        // DS should learn to discount the adversaries.
        let mut r = rng();
        let world = SyntheticCrowd::new(150, 3, 10, 0.9)
            .with_adversarial_share(0.5)
            .generate(6, &mut r);
        let ds = DawidSkene::default().aggregate(&world.matrix);
        let mv = crate::majority::MajorityVote.aggregate(&world.matrix);
        let q_ds = crate::quality::score(&ds, &world.gold);
        let q_mv = crate::quality::score(&mv, &world.gold);
        assert!(
            q_ds.accuracy >= q_mv.accuracy,
            "DS {:.3} should beat MV {:.3}",
            q_ds.accuracy,
            q_mv.accuracy
        );
        assert!(q_ds.accuracy > 0.85, "DS accuracy {:.3}", q_ds.accuracy);
    }

    #[test]
    fn worker_accuracy_separates_good_from_bad() {
        let mut r = rng();
        let world = SyntheticCrowd::new(200, 3, 10, 0.95)
            .with_adversarial_share(0.3)
            .generate(6, &mut r);
        let fit = DawidSkene::default().fit(&world.matrix);
        // Workers 0..6 are good (95%), workers 7..9 adversarial.
        let good_acc = fit.worker_accuracy(0).unwrap();
        let bad_acc = fit.worker_accuracy(world.matrix.n_workers() - 1).unwrap();
        assert!(
            good_acc > bad_acc + 0.2,
            "good {good_acc:.3} vs bad {bad_acc:.3}"
        );
        assert!(fit.worker_accuracy(9999).is_none());
    }

    #[test]
    fn convergence_terminates_early() {
        let mut m = LabelMatrix::new(5, 2);
        for t in 0..5 {
            for w in 0..4 {
                m.push(Assignment {
                    task: t,
                    worker: w,
                    class: 1,
                });
            }
        }
        let fit = DawidSkene::default().fit(&m);
        assert!(fit.iterations < 50, "converged in {} iters", fit.iterations);
        // Priors lean to class 1 strongly.
        assert!(fit.priors[1] > 0.8);
    }

    #[test]
    fn aggregator_name() {
        assert_eq!(DawidSkene::default().name(), "dawid-skene");
    }
}
