//! Quality scoring against gold labels.

use serde::{Deserialize, Serialize};

/// Accuracy/coverage report for one aggregation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// Fraction of *answered* tasks whose estimate matches gold.
    pub accuracy: f64,
    /// Fraction of tasks that received any estimate.
    pub coverage: f64,
    /// Accuracy × coverage — fraction of all tasks answered correctly.
    pub yield_rate: f64,
    /// Tasks answered.
    pub answered: usize,
    /// Tasks answered correctly.
    pub correct: usize,
    /// Total tasks.
    pub total: usize,
}

impl std::fmt::Display for QualityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acc={:.3} cov={:.3} yield={:.3} ({}/{} answered)",
            self.accuracy, self.coverage, self.yield_rate, self.answered, self.total
        )
    }
}

/// Scores estimates against gold labels.
///
/// # Panics
///
/// Panics when the two slices have different lengths (harness error).
///
/// # Examples
///
/// ```
/// use hc_aggregate::score;
/// let estimates = vec![Some(0), Some(1), None, Some(2)];
/// let gold = vec![0, 0, 1, 2];
/// let q = score(&estimates, &gold);
/// assert_eq!(q.answered, 3);
/// assert_eq!(q.correct, 2);
/// assert!((q.accuracy - 2.0 / 3.0).abs() < 1e-12);
/// assert!((q.coverage - 0.75).abs() < 1e-12);
/// assert!((q.yield_rate - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn score(estimates: &[Option<usize>], gold: &[usize]) -> QualityReport {
    assert_eq!(estimates.len(), gold.len(), "estimates and gold must align");
    let total = gold.len();
    let mut answered = 0;
    let mut correct = 0;
    for (est, &g) in estimates.iter().zip(gold) {
        if let Some(e) = est {
            answered += 1;
            if *e == g {
                correct += 1;
            }
        }
    }
    let accuracy = if answered == 0 {
        0.0
    } else {
        correct as f64 / answered as f64
    };
    let coverage = if total == 0 {
        0.0
    } else {
        answered as f64 / total as f64
    };
    QualityReport {
        accuracy,
        coverage,
        yield_rate: accuracy * coverage,
        answered,
        correct,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_empty_cases() {
        let q = score(&[Some(1), Some(0)], &[1, 0]);
        assert_eq!(q.accuracy, 1.0);
        assert_eq!(q.coverage, 1.0);
        assert_eq!(q.yield_rate, 1.0);

        let q = score(&[None, None], &[0, 1]);
        assert_eq!(q.accuracy, 0.0);
        assert_eq!(q.coverage, 0.0);
        assert_eq!(q.answered, 0);

        let q = score(&[], &[]);
        assert_eq!(q.total, 0);
        assert_eq!(q.coverage, 0.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = score(&[Some(0)], &[0, 1]);
    }

    #[test]
    fn display_formats() {
        let q = score(&[Some(0)], &[0]);
        assert!(q.to_string().contains("acc=1.000"));
    }
}
