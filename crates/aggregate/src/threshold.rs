//! Agreement thresholding — the GWAP repetition rule over a label matrix.

use crate::data::LabelMatrix;
use crate::Aggregator;

/// Accept a task's modal class only when at least `k` workers voted for
/// it; abstain otherwise. This is the matrix restatement of the platform's
/// k-agreement promotion: precision is bought with coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgreementThreshold {
    /// Minimum supporting votes.
    pub k: usize,
}

impl AgreementThreshold {
    /// Creates a threshold rule (`k` is coerced to at least 1).
    #[must_use]
    pub fn new(k: usize) -> Self {
        AgreementThreshold { k: k.max(1) }
    }
}

impl Aggregator for AgreementThreshold {
    fn aggregate(&self, matrix: &LabelMatrix) -> Vec<Option<usize>> {
        (0..matrix.n_tasks())
            .map(|t| {
                let counts = matrix.class_counts(t);
                let best = counts.iter().copied().max().unwrap_or(0);
                if best >= self.k {
                    counts.iter().position(|&c| c == best)
                } else {
                    None
                }
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "agreement-threshold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Assignment;

    #[test]
    fn below_threshold_abstains() {
        let mut m = LabelMatrix::new(2, 2);
        m.push(Assignment {
            task: 0,
            worker: 0,
            class: 1,
        });
        m.push(Assignment {
            task: 1,
            worker: 0,
            class: 0,
        });
        m.push(Assignment {
            task: 1,
            worker: 1,
            class: 0,
        });
        let agg = AgreementThreshold::new(2);
        assert_eq!(agg.aggregate(&m), vec![None, Some(0)]);
    }

    #[test]
    fn split_votes_below_threshold_abstain() {
        let mut m = LabelMatrix::new(1, 2);
        m.push(Assignment {
            task: 0,
            worker: 0,
            class: 0,
        });
        m.push(Assignment {
            task: 0,
            worker: 1,
            class: 1,
        });
        assert_eq!(AgreementThreshold::new(2).aggregate(&m), vec![None]);
    }

    #[test]
    fn k_zero_coerces_to_one() {
        let agg = AgreementThreshold::new(0);
        assert_eq!(agg.k, 1);
        assert_eq!(agg.name(), "agreement-threshold");
    }

    #[test]
    fn higher_k_never_increases_coverage() {
        let mut m = LabelMatrix::new(4, 3);
        let votes = [
            (0, vec![0, 0, 0]),
            (1, vec![1, 1]),
            (2, vec![2]),
            (3, vec![0, 1, 2]),
        ];
        for (t, classes) in votes {
            for (w, c) in classes.into_iter().enumerate() {
                m.push(Assignment {
                    task: t,
                    worker: w,
                    class: c,
                });
            }
        }
        let coverage = |k: usize| {
            AgreementThreshold::new(k)
                .aggregate(&m)
                .iter()
                .filter(|x| x.is_some())
                .count()
        };
        assert!(coverage(1) >= coverage(2));
        assert!(coverage(2) >= coverage(3));
        assert_eq!(coverage(1), 4);
        assert_eq!(coverage(3), 1);
    }
}
