//! Confusion matrices and per-class quality metrics.
//!
//! [`score`](crate::quality::score) reports pooled accuracy/coverage; this
//! module adds the per-class view — a confusion matrix over `(gold,
//! estimated)` pairs with precision/recall/F1 per class and macro
//! averages — used when aggregation quality differs across classes (e.g.
//! an adversary pushing everything toward class 0 hurts class-0 precision
//! specifically).

use serde::{Deserialize, Serialize};

/// A dense `n_classes × n_classes` confusion matrix; rows are gold
/// classes, columns are estimated classes. Abstentions are counted
/// separately.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n_classes: usize,
    /// counts[gold][estimated]
    counts: Vec<Vec<u64>>,
    abstained: u64,
}

impl ConfusionMatrix {
    /// Builds the matrix from estimates and gold labels.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths or a label is out of
    /// `0..n_classes`.
    #[must_use]
    pub fn from_estimates(estimates: &[Option<usize>], gold: &[usize], n_classes: usize) -> Self {
        assert_eq!(estimates.len(), gold.len(), "estimates and gold must align");
        let mut counts = vec![vec![0u64; n_classes]; n_classes];
        let mut abstained = 0;
        for (est, &g) in estimates.iter().zip(gold) {
            assert!(g < n_classes, "gold label out of range");
            match est {
                Some(e) => {
                    assert!(*e < n_classes, "estimated label out of range");
                    counts[g][*e] += 1;
                }
                None => abstained += 1,
            }
        }
        ConfusionMatrix {
            n_classes,
            counts,
            abstained,
        }
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Count of `(gold, estimated)` pairs.
    #[must_use]
    pub fn count(&self, gold: usize, estimated: usize) -> u64 {
        self.counts
            .get(gold)
            .and_then(|row| row.get(estimated))
            .copied()
            .unwrap_or(0)
    }

    /// Tasks with no estimate.
    #[must_use]
    pub fn abstained(&self) -> u64 {
        self.abstained
    }

    /// Total answered tasks.
    #[must_use]
    pub fn answered(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Precision of one class: `TP / (TP + FP)`; `None` when the class was
    /// never predicted.
    #[must_use]
    pub fn precision(&self, class: usize) -> Option<f64> {
        let tp = self.count(class, class);
        let predicted: u64 = (0..self.n_classes).map(|g| self.count(g, class)).sum();
        (predicted > 0).then(|| tp as f64 / predicted as f64)
    }

    /// Recall of one class: `TP / (TP + FN)`; `None` when the class never
    /// occurs in gold (among answered tasks).
    #[must_use]
    pub fn recall(&self, class: usize) -> Option<f64> {
        let tp = self.count(class, class);
        let actual: u64 = (0..self.n_classes).map(|e| self.count(class, e)).sum();
        (actual > 0).then(|| tp as f64 / actual as f64)
    }

    /// F1 of one class; `None` when precision and recall are both
    /// undefined or sum to zero.
    #[must_use]
    pub fn f1(&self, class: usize) -> Option<f64> {
        let p = self.precision(class)?;
        let r = self.recall(class)?;
        if p + r == 0.0 {
            None
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Macro-averaged F1 over classes where F1 is defined (0 when none).
    #[must_use]
    pub fn macro_f1(&self) -> f64 {
        let f1s: Vec<f64> = (0..self.n_classes).filter_map(|c| self.f1(c)).collect();
        if f1s.is_empty() {
            0.0
        } else {
            f1s.iter().sum::<f64>() / f1s.len() as f64
        }
    }

    /// Pooled accuracy over answered tasks (0 when nothing answered).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let answered = self.answered();
        if answered == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n_classes).map(|c| self.count(c, c)).sum();
        correct as f64 / answered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> ConfusionMatrix {
        // gold:      0  0  0  1  1  2  2  2
        // estimate:  0  0  1  1  0  2  2  -
        ConfusionMatrix::from_estimates(
            &[
                Some(0),
                Some(0),
                Some(1),
                Some(1),
                Some(0),
                Some(2),
                Some(2),
                None,
            ],
            &[0, 0, 0, 1, 1, 2, 2, 2],
            3,
        )
    }

    #[test]
    fn counts_and_abstentions() {
        let m = matrix();
        assert_eq!(m.count(0, 0), 2);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 0), 1);
        assert_eq!(m.count(2, 2), 2);
        assert_eq!(m.abstained(), 1);
        assert_eq!(m.answered(), 7);
        assert_eq!(m.n_classes(), 3);
        assert_eq!(m.count(9, 9), 0);
    }

    #[test]
    fn per_class_metrics() {
        let m = matrix();
        // Class 0: predicted 3 times, 2 correct; occurs 3 times, 2 found.
        assert!((m.precision(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        // Class 2: precision 1.0, recall 2/2 among answered.
        assert_eq!(m.precision(2), Some(1.0));
        assert_eq!(m.recall(2), Some(1.0));
    }

    #[test]
    fn undefined_metrics_are_none() {
        let m = ConfusionMatrix::from_estimates(&[Some(0)], &[0], 2);
        assert_eq!(m.precision(1), None, "class 1 never predicted");
        assert_eq!(m.recall(1), None, "class 1 never in gold");
        assert_eq!(m.f1(1), None);
    }

    #[test]
    fn aggregates() {
        let m = matrix();
        assert!((m.accuracy() - 5.0 / 7.0).abs() < 1e-12);
        assert!(m.macro_f1() > 0.6 && m.macro_f1() <= 1.0);
        let empty = ConfusionMatrix::from_estimates(&[None], &[0], 2);
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.macro_f1(), 0.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = ConfusionMatrix::from_estimates(&[Some(0)], &[0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_gold_panics() {
        let _ = ConfusionMatrix::from_estimates(&[Some(0)], &[5], 2);
    }
}
