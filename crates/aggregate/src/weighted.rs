//! Weighted voting.

use crate::data::LabelMatrix;
use crate::Aggregator;

/// Plurality with per-worker weights — typically gold-task accuracies or
/// reputations. Workers without a weight get `default_weight`.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedVote {
    weights: Vec<f64>,
    default_weight: f64,
}

impl WeightedVote {
    /// Creates a weighted vote with `weights[worker]` per worker and
    /// `default_weight` for workers beyond the vector. Negative and
    /// non-finite weights are treated as zero.
    #[must_use]
    pub fn new(weights: Vec<f64>, default_weight: f64) -> Self {
        WeightedVote {
            weights,
            default_weight: sanitize(default_weight),
        }
    }

    fn weight_of(&self, worker: usize) -> f64 {
        self.weights
            .get(worker)
            .copied()
            .map_or(self.default_weight, sanitize)
    }
}

fn sanitize(w: f64) -> f64 {
    if w.is_finite() && w > 0.0 {
        w
    } else {
        0.0
    }
}

impl Aggregator for WeightedVote {
    fn aggregate(&self, matrix: &LabelMatrix) -> Vec<Option<usize>> {
        (0..matrix.n_tasks())
            .map(|t| {
                let mut mass = vec![0.0f64; matrix.n_classes()];
                for a in matrix.labels_for(t) {
                    mass[a.class] += self.weight_of(a.worker);
                }
                let best = mass.iter().copied().fold(0.0f64, f64::max);
                if best <= 0.0 {
                    None
                } else {
                    mass.iter().position(|&m| m == best)
                }
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "weighted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Assignment;

    #[test]
    fn heavier_workers_dominate() {
        let mut m = LabelMatrix::new(1, 2);
        // Two light workers vote class 0; one heavy worker votes class 1.
        m.push(Assignment {
            task: 0,
            worker: 0,
            class: 0,
        });
        m.push(Assignment {
            task: 0,
            worker: 1,
            class: 0,
        });
        m.push(Assignment {
            task: 0,
            worker: 2,
            class: 1,
        });
        let wv = WeightedVote::new(vec![0.3, 0.3, 1.0], 0.5);
        assert_eq!(wv.aggregate(&m), vec![Some(1)]);
    }

    #[test]
    fn missing_weights_use_default() {
        let mut m = LabelMatrix::new(1, 2);
        m.push(Assignment {
            task: 0,
            worker: 5,
            class: 1,
        });
        let wv = WeightedVote::new(vec![], 0.7);
        assert_eq!(wv.aggregate(&m), vec![Some(1)]);
    }

    #[test]
    fn all_zero_weight_abstains() {
        let mut m = LabelMatrix::new(1, 2);
        m.push(Assignment {
            task: 0,
            worker: 0,
            class: 1,
        });
        let wv = WeightedVote::new(vec![0.0], 0.0);
        assert_eq!(wv.aggregate(&m), vec![None]);
    }

    #[test]
    fn bad_weights_sanitize_to_zero() {
        let mut m = LabelMatrix::new(1, 2);
        m.push(Assignment {
            task: 0,
            worker: 0,
            class: 0,
        });
        m.push(Assignment {
            task: 0,
            worker: 1,
            class: 1,
        });
        let wv = WeightedVote::new(vec![f64::NAN, 1.0], -5.0);
        assert_eq!(wv.aggregate(&m), vec![Some(1)]);
        assert_eq!(wv.name(), "weighted");
    }
}
