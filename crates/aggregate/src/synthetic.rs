//! Synthetic redundant-labeling workloads.
//!
//! Experiment T2 needs label matrices with *known* gold labels and a
//! controllable worker quality mix. [`SyntheticCrowd`] generates them:
//! good workers answer correctly with probability `accuracy` (uniform
//! error otherwise); adversarial workers always answer class 0 (the
//! constant-strategy attack the GWAP defenses target).

use crate::data::{Assignment, LabelMatrix};
use rand::Rng;

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticCrowd {
    n_tasks: usize,
    n_classes: usize,
    n_workers: usize,
    accuracy: f64,
    adversarial_share: f64,
}

/// A generated workload: the matrix plus its gold labels.
#[derive(Debug, Clone)]
pub struct SyntheticWorld {
    /// The redundant label matrix.
    pub matrix: LabelMatrix,
    /// Gold class per task.
    pub gold: Vec<usize>,
    /// Which workers are adversarial.
    pub adversarial: Vec<bool>,
}

impl SyntheticCrowd {
    /// Creates a generator with `n_workers` workers of the given
    /// `accuracy` (clamped to `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero.
    #[must_use]
    pub fn new(n_tasks: usize, n_classes: usize, n_workers: usize, accuracy: f64) -> Self {
        assert!(
            n_tasks > 0 && n_classes > 0 && n_workers > 0,
            "dimensions must be positive"
        );
        SyntheticCrowd {
            n_tasks,
            n_classes,
            n_workers,
            accuracy: accuracy.clamp(0.0, 1.0),
            adversarial_share: 0.0,
        }
    }

    /// Marks a trailing fraction of workers as adversarial (always answer
    /// class 0).
    #[must_use]
    pub fn with_adversarial_share(mut self, share: f64) -> Self {
        self.adversarial_share = share.clamp(0.0, 1.0);
        self
    }

    /// Generates a workload with `redundancy` labels per task, assigned to
    /// distinct random workers per task.
    pub fn generate<R: Rng + ?Sized>(&self, redundancy: usize, rng: &mut R) -> SyntheticWorld {
        let adversarial_from =
            self.n_workers - (self.n_workers as f64 * self.adversarial_share).round() as usize;
        let adversarial: Vec<bool> = (0..self.n_workers).map(|w| w >= adversarial_from).collect();
        let gold: Vec<usize> = (0..self.n_tasks)
            .map(|_| rng.gen_range(0..self.n_classes))
            .collect();
        let mut matrix = LabelMatrix::new(self.n_tasks, self.n_classes);
        let redundancy = redundancy.min(self.n_workers);
        for (task, &g) in gold.iter().enumerate() {
            // Sample `redundancy` distinct workers (partial Fisher–Yates).
            let mut pool: Vec<usize> = (0..self.n_workers).collect();
            for slot in 0..redundancy {
                let pick = rng.gen_range(slot..pool.len());
                pool.swap(slot, pick);
                let worker = pool[slot];
                let class = if adversarial[worker] {
                    0
                } else if rng.gen::<f64>() < self.accuracy {
                    g
                } else {
                    // Uniform error over the *other* classes.
                    let mut c = rng.gen_range(0..self.n_classes.max(2) - 1);
                    if c >= g {
                        c += 1;
                    }
                    c.min(self.n_classes - 1)
                };
                matrix.push(Assignment {
                    task,
                    worker,
                    class,
                });
            }
        }
        SyntheticWorld {
            matrix,
            gold,
            adversarial,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    #[test]
    fn shape_is_as_requested() {
        let mut r = rng();
        let world = SyntheticCrowd::new(20, 3, 10, 0.8).generate(5, &mut r);
        assert_eq!(world.matrix.n_tasks(), 20);
        assert_eq!(world.matrix.n_classes(), 3);
        assert_eq!(world.matrix.len(), 100);
        assert_eq!(world.gold.len(), 20);
        assert!((world.matrix.redundancy() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn workers_are_distinct_within_a_task() {
        let mut r = rng();
        let world = SyntheticCrowd::new(10, 2, 6, 0.9).generate(6, &mut r);
        for t in 0..10 {
            let mut workers: Vec<usize> = world
                .matrix
                .labels_for(t)
                .iter()
                .map(|a| a.worker)
                .collect();
            workers.sort_unstable();
            workers.dedup();
            assert_eq!(workers.len(), 6);
        }
    }

    #[test]
    fn accuracy_controls_error_rate() {
        let mut r = rng();
        let world = SyntheticCrowd::new(300, 4, 20, 0.75).generate(5, &mut r);
        let mut correct = 0;
        let mut total = 0;
        for a in world.matrix.iter() {
            total += 1;
            if a.class == world.gold[a.task] {
                correct += 1;
            }
        }
        let rate = correct as f64 / total as f64;
        // Allow for accidental correctness of the uniform-error branch.
        assert!((rate - 0.75).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn adversaries_always_answer_zero() {
        let mut r = rng();
        let world = SyntheticCrowd::new(50, 3, 10, 0.9)
            .with_adversarial_share(0.3)
            .generate(5, &mut r);
        let n_adv = world.adversarial.iter().filter(|&&a| a).count();
        assert_eq!(n_adv, 3);
        for a in world.matrix.iter() {
            if world.adversarial[a.worker] {
                assert_eq!(a.class, 0);
            }
        }
    }

    #[test]
    fn redundancy_caps_at_worker_count() {
        let mut r = rng();
        let world = SyntheticCrowd::new(5, 2, 3, 0.9).generate(10, &mut r);
        assert_eq!(world.matrix.len(), 15); // 3 per task, not 10
    }

    #[test]
    fn binary_classes_error_goes_to_other_class() {
        let mut r = rng();
        let world = SyntheticCrowd::new(100, 2, 10, 0.0).generate(3, &mut r);
        for a in world.matrix.iter() {
            assert_ne!(a.class, world.gold[a.task], "accuracy 0 always errs");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimensions_panic() {
        let _ = SyntheticCrowd::new(0, 2, 3, 0.5);
    }
}
