//! The redundant label matrix.

use serde::{Deserialize, Serialize};

/// One worker's label for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assignment {
    /// Task index in `0..n_tasks`.
    pub task: usize,
    /// Worker index in `0..n_workers`.
    pub worker: usize,
    /// Class index in `0..n_classes`.
    pub class: usize,
}

/// A sparse task × worker label matrix over categorical classes.
///
/// # Examples
///
/// ```
/// use hc_aggregate::{Assignment, LabelMatrix};
///
/// let mut m = LabelMatrix::new(2, 3);
/// m.push(Assignment { task: 0, worker: 0, class: 1 });
/// m.push(Assignment { task: 0, worker: 1, class: 1 });
/// m.push(Assignment { task: 1, worker: 0, class: 2 });
/// assert_eq!(m.n_tasks(), 2);
/// assert_eq!(m.labels_for(0).len(), 2);
/// assert_eq!(m.class_counts(0), vec![0, 2, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelMatrix {
    n_tasks: usize,
    n_classes: usize,
    n_workers: usize,
    /// Per-task assignment lists (task-major for aggregation passes).
    by_task: Vec<Vec<Assignment>>,
    total: usize,
}

impl LabelMatrix {
    /// Creates an empty matrix over `n_tasks` tasks and `n_classes`
    /// classes.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero (setup error).
    #[must_use]
    pub fn new(n_tasks: usize, n_classes: usize) -> Self {
        assert!(n_tasks > 0, "need at least one task");
        assert!(n_classes > 0, "need at least one class");
        LabelMatrix {
            n_tasks,
            n_classes,
            n_workers: 0,
            by_task: vec![Vec::new(); n_tasks],
            total: 0,
        }
    }

    /// Adds one assignment.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range task or class indices.
    pub fn push(&mut self, a: Assignment) {
        assert!(a.task < self.n_tasks, "task index out of range");
        assert!(a.class < self.n_classes, "class index out of range");
        self.n_workers = self.n_workers.max(a.worker + 1);
        self.by_task[a.task].push(a);
        self.total += 1;
    }

    /// Number of tasks.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of distinct workers seen (max index + 1).
    #[must_use]
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Total assignments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` when no assignments exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Assignments for one task.
    #[must_use]
    pub fn labels_for(&self, task: usize) -> &[Assignment] {
        &self.by_task[task]
    }

    /// Per-class vote counts for one task.
    #[must_use]
    pub fn class_counts(&self, task: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for a in &self.by_task[task] {
            counts[a.class] += 1;
        }
        counts
    }

    /// Iterates over all assignments, task-major.
    pub fn iter(&self) -> impl Iterator<Item = &Assignment> {
        self.by_task.iter().flatten()
    }

    /// Mean labels per task (the redundancy factor).
    #[must_use]
    pub fn redundancy(&self) -> f64 {
        self.total as f64 / self.n_tasks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_redundancy() {
        let mut m = LabelMatrix::new(2, 2);
        m.push(Assignment {
            task: 0,
            worker: 0,
            class: 0,
        });
        m.push(Assignment {
            task: 0,
            worker: 1,
            class: 1,
        });
        m.push(Assignment {
            task: 1,
            worker: 2,
            class: 1,
        });
        assert_eq!(m.len(), 3);
        assert_eq!(m.n_workers(), 3);
        assert_eq!(m.class_counts(0), vec![1, 1]);
        assert_eq!(m.class_counts(1), vec![0, 1]);
        assert!((m.redundancy() - 1.5).abs() < 1e-12);
        assert_eq!(m.iter().count(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "task index")]
    fn out_of_range_task_panics() {
        let mut m = LabelMatrix::new(1, 2);
        m.push(Assignment {
            task: 1,
            worker: 0,
            class: 0,
        });
    }

    #[test]
    #[should_panic(expected = "class index")]
    fn out_of_range_class_panics() {
        let mut m = LabelMatrix::new(1, 2);
        m.push(Assignment {
            task: 0,
            worker: 0,
            class: 2,
        });
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_panics() {
        let _ = LabelMatrix::new(0, 2);
    }
}
