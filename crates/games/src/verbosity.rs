//! Verbosity — inversion-problem collection of commonsense facts.
//!
//! The describer ("narrator") holds a secret word and sends templated
//! clues — "it is a kind of ___", "it is used for ___" — while the
//! guesser tries to say the word. A correct guess certifies every clue as
//! a commonsense fact about the secret. Information accumulates: each
//! additional clue narrows the guesser's candidate space, so guess
//! probability rises with hints seen — the dynamic this module models
//! explicitly.

use crate::world::{BaseWorld, WorldConfig};
use hc_core::prelude::*;
use hc_crowd::{LabelDistribution, Population};
use rand::Rng;

/// Pause between rounds.
const INTER_ROUND_GAP: SimDuration = SimDuration::from_secs(2);

/// Maximum hints the narrator sends per round.
const MAX_HINTS: usize = 6;

/// Guesses allowed per hint received.
const GUESSES_PER_HINT: usize = 2;

/// The sentence templates the deployed Verbosity offered its narrators —
/// each clue is a template slot filled with an object word, so the
/// harvested facts come out *typed* ("milk — kind-of → drink").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Relation {
    /// "it is a kind of ___"
    KindOf,
    /// "it is used for ___"
    UsedFor,
    /// "it contains ___"
    Contains,
    /// "it looks like ___"
    LooksLike,
    /// "it is the opposite of ___"
    OppositeOf,
    /// "it is found at/in ___"
    FoundAt,
}

impl Relation {
    /// All templates, in the deployed game's menu order.
    pub const ALL: [Relation; 6] = [
        Relation::KindOf,
        Relation::UsedFor,
        Relation::Contains,
        Relation::LooksLike,
        Relation::OppositeOf,
        Relation::FoundAt,
    ];

    /// The token that prefixes clue labels ("kindof w42").
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Relation::KindOf => "kindof",
            Relation::UsedFor => "usedfor",
            // Tokens must survive label normalization (which strips a
            // trailing "-s"), so "contains" is spelled without it.
            Relation::Contains => "contain",
            Relation::LooksLike => "lookslike",
            Relation::OppositeOf => "oppositeof",
            Relation::FoundAt => "foundat",
        }
    }

    /// Parses a token back into a relation.
    #[must_use]
    pub fn from_token(token: &str) -> Option<Relation> {
        Relation::ALL.iter().copied().find(|r| r.token() == token)
    }

    /// Human-readable sentence template.
    #[must_use]
    pub fn template(self) -> &'static str {
        match self {
            Relation::KindOf => "it is a kind of ___",
            Relation::UsedFor => "it is used for ___",
            Relation::Contains => "it contains ___",
            Relation::LooksLike => "it looks like ___",
            Relation::OppositeOf => "it is the opposite of ___",
            Relation::FoundAt => "it is found at ___",
        }
    }
}

/// Builds the clue label encoding `(relation, object)`.
#[must_use]
pub fn fact_label(relation: Relation, object: &Label) -> Label {
    Label::new(&format!("{} {}", relation.token(), object.as_str()))
}

/// Parses a clue label back into `(relation, object)`; `None` when the
/// label does not carry a template prefix (free-form clue).
#[must_use]
pub fn parse_fact(clue: &Label) -> Option<(Relation, Label)> {
    let mut parts = clue.as_str().splitn(2, ' ');
    let relation = Relation::from_token(parts.next()?)?;
    let object = parts.next()?;
    if object.is_empty() {
        return None;
    }
    Some((relation, Label::new(object)))
}

/// The Verbosity world: each task has a secret word and a pool of true
/// *typed* facts about it (template + object).
#[derive(Debug, Clone)]
pub struct VerbosityWorld {
    /// Per-task secret words.
    secrets: Vec<Label>,
    /// Object words underlying the facts (shared Zipf vocabulary).
    objects: BaseWorld,
    /// Per-task typed-fact distributions (what a narrator can truthfully
    /// say, with weights mirroring the objects' salience).
    facts: Vec<LabelDistribution>,
}

impl VerbosityWorld {
    /// Generates a world: secrets are distinct words; each secret's facts
    /// are its stimulus-truth objects wrapped in deterministic sentence
    /// templates.
    pub fn generate<R: Rng + ?Sized>(config: &WorldConfig, rng: &mut R) -> Self {
        let objects = BaseWorld::generate(config, rng);
        let secrets: Vec<Label> = (0..config.stimuli)
            .map(|i| Label::new(&format!("secret{i}")))
            .collect();
        let facts = objects
            .truths
            .iter()
            .map(|truth| {
                let pairs: Vec<(Label, f64)> = truth
                    .labels()
                    .iter()
                    .map(|obj| {
                        let relation = Relation::ALL[rng.gen_range(0..Relation::ALL.len())];
                        (fact_label(relation, obj), truth.pmf_of(obj))
                    })
                    .collect();
                LabelDistribution::new(pairs).expect("truth weights are valid") // hc-analyze: allow(P1): pmf values are valid non-negative weights
            })
            .collect();
        VerbosityWorld {
            secrets,
            objects,
            facts,
        }
    }

    /// Number of secrets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.secrets.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.secrets.is_empty()
    }

    /// Registers every secret as a platform task.
    pub fn register_tasks(&self, platform: &mut Platform) -> Vec<TaskId> {
        (0..self.secrets.len())
            .map(|i| platform.add_task(Stimulus::TextSnippet(format!("secret-{i}"))))
            .collect()
    }

    /// The secret behind a task.
    #[must_use]
    pub fn secret_for_task(&self, task: TaskId) -> Option<&Label> {
        self.secrets.get(task.raw() as usize)
    }

    /// The true typed facts a narrator can state about a task's secret.
    #[must_use]
    pub fn facts_for_task(&self, task: TaskId) -> Option<&LabelDistribution> {
        self.facts.get(task.raw() as usize)
    }

    /// Whether `(secret, clue)` is a true fact in this world.
    #[must_use]
    pub fn is_true_fact(&self, task: TaskId, clue: &Label) -> bool {
        self.facts_for_task(task).is_some_and(|f| f.contains(clue))
    }

    /// The shared vocabulary.
    #[must_use]
    pub fn vocabulary(&self) -> &hc_crowd::Vocabulary {
        &self.objects.vocabulary
    }

    /// The guesser's candidate distribution after `hints_seen` true hints:
    /// the secret's weight grows `1 - decay^hints`, the rest is spread
    /// over `n_distractors` random-but-fixed distractor words.
    #[must_use]
    pub fn guess_candidates(
        &self,
        task: TaskId,
        hints_seen: usize,
        n_distractors: usize,
    ) -> Option<LabelDistribution> {
        let secret = self.secret_for_task(task)?;
        let p_secret = 1.0 - 0.45_f64.powi(hints_seen as i32);
        let p_secret = p_secret.clamp(0.02, 0.98);
        let mut pairs = vec![(secret.clone(), p_secret)];
        let n = n_distractors.max(1);
        for d in 0..n {
            // Deterministic distractors per task keep candidates stable.
            pairs.push((
                Label::new(&format!("distract{}x{d}", task.raw())),
                (1.0 - p_secret) / n as f64,
            ));
        }
        LabelDistribution::new(pairs).ok()
    }
}

/// Drives one Verbosity session: the *left* player narrates, the *right*
/// player guesses (callers alternate roles between sessions, as the
/// deployed game alternates between rounds).
#[allow(clippy::too_many_arguments)]
pub fn play_verbosity_session<R: Rng + ?Sized>(
    platform: &mut Platform,
    world: &VerbosityWorld,
    population: &mut Population,
    narrator: PlayerId,
    guesser: PlayerId,
    session_id: SessionId,
    start: SimTime,
    rng: &mut R,
) -> SessionTranscript {
    let cfg = platform.config().session;
    let mut session = Session::new(session_id, [narrator, guesser], start, cfg);
    let mut now = start;
    let mut streaks = [0u32; 2];

    while session.can_play_more(now) {
        let Some(task) = platform.next_task_for(&[narrator, guesser], rng) else {
            break;
        };
        platform.record_served(task, &[narrator, guesser]);
        let (Some(secret), Some(facts)) = (
            world.secret_for_task(task).cloned(),
            world.facts_for_task(task),
        ) else {
            break;
        };
        let mut round = InversionRound::new(task, secret.clone(), cfg.round_time_limit);
        let deadline = now + cfg.round_time_limit;
        let (pn, pg) = population
            .get_pair_mut(narrator, guesser)
            .expect("players exist and are distinct"); // hc-analyze: allow(P1): callers pass two distinct registered ids
        let empty_taboo = TabooList::new();
        let mut cursor = now;
        let mut hints_sent = 0usize;
        let mut end = deadline;
        let mut matched = false;

        'round: while hints_sent < MAX_HINTS {
            // Narrator sends one hint.
            let hint = pn
                .behavior
                .next_answer(facts, world.vocabulary(), &empty_taboo, rng);
            let latency = pn.response.sample(
                match &hint {
                    Answer::Text(l) => Some(l),
                    _ => None,
                },
                rng,
            );
            cursor += latency;
            if cursor > deadline {
                break 'round;
            }
            match round.submit(Seat::Left, hint, cursor) {
                SubmitOutcome::BothPassed => {
                    end = cursor;
                    break 'round;
                }
                SubmitOutcome::RoundOver => {
                    break 'round;
                }
                _ => {}
            }
            hints_sent += 1;

            // Guesser responds with a few attempts informed by the hints.
            let Some(candidates) = world.guess_candidates(task, hints_sent, 8) else {
                break 'round;
            };
            for _ in 0..GUESSES_PER_HINT {
                let guess = pg
                    .behavior
                    .guess(&candidates, world.vocabulary(), pg.skill, rng);
                let latency = pg.response.sample(
                    match &guess {
                        Answer::Text(l) => Some(l),
                        _ => None,
                    },
                    rng,
                );
                cursor += latency;
                if cursor > deadline {
                    break 'round;
                }
                match round.submit(Seat::Right, guess, cursor) {
                    SubmitOutcome::Matched(_) => {
                        matched = true;
                        end = cursor;
                        break 'round;
                    }
                    SubmitOutcome::BothPassed => {
                        end = cursor;
                        break 'round;
                    }
                    SubmitOutcome::RoundOver => {
                        break 'round;
                    }
                    _ => {}
                }
            }
        }

        let result = round.finish(end.min(deadline));
        let facts_out = result.validated_facts();
        let n_facts = facts_out.len() as u32;
        for (_, clue) in facts_out {
            let _ = platform.ingest_agreement(task, clue, narrator, guesser);
        }
        let duration = result.duration;
        let rule = platform.score_rule();
        let points = [
            rule.round_score(matched, duration.as_secs_f64(), streaks[0]),
            rule.round_score(matched, duration.as_secs_f64(), streaks[1]),
        ];
        for s in &mut streaks {
            *s = if matched { *s + 1 } else { 0 };
        }
        session.record_round(RoundRecord {
            template: TemplateKind::InversionProblem,
            task,
            matched,
            candidate_outputs: n_facts,
            duration,
            points,
        });
        now = end.min(deadline) + INTER_ROUND_GAP;
    }

    let transcript = session.finish(now);
    platform.record_session(&transcript);
    if hc_obs::active() {
        hc_obs::span(
            "games",
            "verbosity.session",
            start.ticks(),
            transcript.ended.ticks(),
            &[
                ("rounds", transcript.rounds().into()),
                ("matched", transcript.matched_count().into()),
            ],
        );
    }
    transcript
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_crowd::{ArchetypeMix, PopulationBuilder};
    use rand::SeedableRng;

    fn setup(skill: f64) -> (Platform, VerbosityWorld, Population, rand::rngs::StdRng) {
        let mut r = rand::rngs::StdRng::seed_from_u64(707);
        let world = VerbosityWorld::generate(&WorldConfig::small(), &mut r);
        let mut platform = Platform::new(PlatformConfig {
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        })
        .unwrap();
        world.register_tasks(&mut platform);
        let pop = PopulationBuilder::new(2)
            .mix(ArchetypeMix::all_honest())
            .skill_range(skill, skill + 0.01)
            .build(&mut r);
        platform.register_player();
        platform.register_player();
        (platform, world, pop, r)
    }

    #[test]
    fn skilled_guessers_recover_secrets_and_validate_facts() {
        let (mut platform, world, mut pop, mut r) = setup(0.85);
        let t = play_verbosity_session(
            &mut platform,
            &world,
            &mut pop,
            PlayerId::new(0),
            PlayerId::new(1),
            SessionId::new(0),
            SimTime::ZERO,
            &mut r,
        );
        assert!(t.rounds() > 0);
        assert!(t.match_rate() > 0.4, "match rate {}", t.match_rate());
        let verified = platform.verified_labels();
        assert!(!verified.is_empty(), "no facts validated");
        // Honest narrators only state true facts.
        let correct = verified
            .iter()
            .filter(|v| world.is_true_fact(v.task, &v.label))
            .count();
        assert_eq!(correct, verified.len());
    }

    #[test]
    fn unskilled_guessers_do_worse() {
        let run = |skill: f64| {
            let (mut platform, world, mut pop, mut r) = setup(skill);
            let mut matched = 0;
            let mut rounds = 0;
            for s in 0..6 {
                let t = play_verbosity_session(
                    &mut platform,
                    &world,
                    &mut pop,
                    PlayerId::new(0),
                    PlayerId::new(1),
                    SessionId::new(s),
                    SimTime::from_secs(s * 1000),
                    &mut r,
                );
                matched += t.matched_count();
                rounds += t.rounds();
            }
            matched as f64 / rounds.max(1) as f64
        };
        let high = run(0.95);
        let low = run(0.15);
        assert!(high > low, "skill must help: high {high} low {low}");
    }

    #[test]
    fn candidate_distribution_sharpens_with_hints() {
        let mut r = rand::rngs::StdRng::seed_from_u64(3);
        let world = VerbosityWorld::generate(&WorldConfig::small(), &mut r);
        let task = TaskId::new(0);
        let secret = world.secret_for_task(task).unwrap().clone();
        let p1 = world.guess_candidates(task, 1, 8).unwrap().pmf_of(&secret);
        let p4 = world.guess_candidates(task, 4, 8).unwrap().pmf_of(&secret);
        assert!(p4 > p1, "more hints must concentrate mass: {p1} -> {p4}");
        assert!(p1 > 0.0 && p4 < 1.0);
        assert!(world.guess_candidates(TaskId::new(9999), 1, 8).is_none());
    }

    #[test]
    fn secrets_never_leak_into_validated_facts() {
        let (mut platform, world, mut pop, mut r) = setup(0.9);
        for s in 0..4 {
            play_verbosity_session(
                &mut platform,
                &world,
                &mut pop,
                PlayerId::new(0),
                PlayerId::new(1),
                SessionId::new(s),
                SimTime::from_secs(s * 1000),
                &mut r,
            );
        }
        for v in platform.verified_labels() {
            let secret = world.secret_for_task(v.task).unwrap();
            assert_ne!(&v.label, secret, "secret leaked as its own fact");
        }
    }

    #[test]
    fn world_accessors() {
        let mut r = rand::rngs::StdRng::seed_from_u64(4);
        let world = VerbosityWorld::generate(&WorldConfig::small(), &mut r);
        assert_eq!(world.len(), 50);
        assert!(!world.is_empty());
        assert!(world.secret_for_task(TaskId::new(0)).is_some());
        assert!(world.secret_for_task(TaskId::new(999)).is_none());
        assert!(world.facts_for_task(TaskId::new(0)).is_some());
    }

    #[test]
    fn fact_labels_round_trip_through_parsing() {
        for relation in Relation::ALL {
            let obj = Label::new("warm milk");
            let fact = fact_label(relation, &obj);
            let (r, o) = parse_fact(&fact).expect("parses");
            assert_eq!(r, relation);
            assert_eq!(o, obj);
            assert!(!relation.template().is_empty());
        }
        assert_eq!(Relation::from_token("kindof"), Some(Relation::KindOf));
        assert_eq!(Relation::from_token("nonsense"), None);
        assert_eq!(parse_fact(&Label::new("freeform clue words")), None);
        assert_eq!(parse_fact(&Label::new("kindof")), None);
    }

    #[test]
    fn world_facts_are_all_typed_and_parseable() {
        let mut r = rand::rngs::StdRng::seed_from_u64(5);
        let world = VerbosityWorld::generate(&WorldConfig::small(), &mut r);
        for i in 0..world.len() {
            let facts = world.facts_for_task(TaskId::new(i as u64)).unwrap();
            for clue in facts.labels() {
                let (_, obj) =
                    parse_fact(clue).unwrap_or_else(|| panic!("untyped world fact {clue}"));
                assert!(!obj.is_empty());
            }
        }
    }

    #[test]
    fn validated_facts_stay_typed_through_the_pipeline() {
        let (mut platform, world, mut pop, mut r) = setup(0.9);
        for s in 0..4 {
            play_verbosity_session(
                &mut platform,
                &world,
                &mut pop,
                PlayerId::new(0),
                PlayerId::new(1),
                SessionId::new(s),
                SimTime::from_secs(s * 1000),
                &mut r,
            );
        }
        let verified = platform.verified_labels();
        assert!(!verified.is_empty());
        // Honest narrators emit template clues, so every verified fact
        // parses back into (relation, object).
        for v in verified {
            assert!(
                parse_fact(&v.label).is_some(),
                "verified fact lost its template: {}",
                v.label
            );
        }
    }
}
